"""Crash-isolated supervised worker pool for block-parallel runs.

The PR 3 ``--jobs N`` path handed blocks to a bare
``ProcessPoolExecutor``: one segfaulting, OOM-killed, or
``os._exit``-ing worker raised ``BrokenProcessPool`` on every pending
future and aborted the whole batch, losing all in-flight work and
bypassing the fallback/degradation machinery entirely.  This module
treats worker death as a recoverable, observable event instead:

* **crash isolation** -- each worker is its own
  :class:`multiprocessing.Process` speaking a small message protocol
  over a pipe.  A dying worker takes down exactly one block attempt,
  never the batch.
* **heartbeats** -- a worker announces ``start`` when it picks up a
  task and ``attempt`` at every fallback-chain entry, so the
  supervisor knows which block (and which builder) was live when a
  process died, and can detect a hung worker by its silence
  (``task_timeout``).
* **retry with backoff** -- a crashed or poisoned block is re-enqueued
  with exponential backoff plus deterministic seeded jitter
  (:class:`RetryPolicy`), up to a bounded retry budget.
* **quarantine** -- a block that exhausts its budget is quarantined:
  it degrades to its original order (always correct), a minimized
  reproducer ``.s`` file is written (reusing the fuzz harness's
  delta-debugging loop), and the journal records a ``quarantined``
  line so ``--resume`` replays the verdict instead of re-triggering
  the crash.
* **circuit breaker** -- repeated crashes/timeouts attributed to one
  builder open that builder's breaker (:class:`CircuitBreaker`):
  subsequent blocks route straight to the next chain entry until a
  half-open probe succeeds.

Healthy blocks are unaffected: their outcomes are computed by the same
worker-side code as before and consumed in program order, so journal
lines, callbacks, and aggregates stay byte-identical to a serial run.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as mp_wait
from typing import Callable, Sequence

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.cache import PairwiseCache
from repro.dag.stats import BlockDagStats, dag_stats
from repro.errors import ReproError
from repro.machine.model import MachineModel
from repro.obs.metrics import (
    MetricsRegistry,
    record_breaker_transition,
    record_cache,
    record_quarantine,
    record_retry,
    record_worker_crash,
    record_worker_restart,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runner.fallback import (
    Attempt,
    BlockOutcome,
    resolve_chain,
    schedule_block_resilient,
)
from repro.runner.watchdog import Budget
from repro.verify.checker import degraded_timing

# -- worker-side execution -------------------------------------------------
#
# Worker processes rebuild their chain (and their own pairwise cache)
# from plain picklable inputs: the section 6 priority and injected
# chain factories are closures, which is why ``jobs > 1`` refuses
# them.  Workers ship back ``(record, counters, block_stats, obs)`` --
# everything JSON/dataclass-flat -- and the parent reassembles
# outcomes (and the merged trace/metrics) in program order.  These two
# functions also serve the legacy (unsupervised) pool in
# :mod:`repro.runner.batch`.

_WORKER_STATE: dict = {}


def _apply_mem_ceiling(mem_limit_mb: int | None) -> None:
    """Arm the opt-in per-worker address-space ceiling.

    With ``RLIMIT_AS`` set, a runaway allocation fails *inside* the
    worker as a ``MemoryError`` (attributed to its block and builder,
    crash kind ``"oom"``) instead of growing until the kernel OOM
    killer SIGKILLs an arbitrary process.  Platforms without the
    ``resource`` module (or that refuse the limit) run without a
    ceiling -- the feature is opt-in and advisory, never required for
    correctness.
    """
    if not mem_limit_mb:
        return
    try:
        import resource as _resource
        limit = int(mem_limit_mb) * 1024 * 1024
        _resource.setrlimit(_resource.RLIMIT_AS, (limit, limit))
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass


def _init_worker(machine: MachineModel, chain_names: tuple[str, ...],
                 budget: Budget | None, heuristic_driver: str,
                 verify: bool, use_cache: bool,
                 trace: bool = False, metrics: bool = False,
                 mem_limit_mb: int | None = None,
                 columnar: bool = False) -> None:
    """Per-process setup: resolve the chain once, not per block."""
    _apply_mem_ceiling(mem_limit_mb)
    cache = PairwiseCache() if use_cache else None
    _WORKER_STATE["machine"] = machine
    _WORKER_STATE["chain"] = resolve_chain(chain_names, machine,
                                           cache=cache,
                                           columnar=columnar)
    _WORKER_STATE["budget"] = budget
    _WORKER_STATE["driver"] = heuristic_driver
    _WORKER_STATE["verify"] = verify
    _WORKER_STATE["cache"] = cache
    _WORKER_STATE["trace"] = trace
    _WORKER_STATE["metrics"] = metrics
    _WORKER_STATE["columnar"] = columnar


def _run_block(block: BasicBlock,
               skip_builders: Sequence[str] = (),
               on_attempt: Callable[[str], None] | None = None) -> tuple[
        dict, tuple[int, ...] | None, BlockDagStats | None,
        tuple[list[dict], list[dict]] | None]:
    """Schedule one block in a worker process.

    Returns the journal record plus the flattened statistics the
    parent folds into the :class:`~repro.runner.batch.BatchResult` (a
    replayed :class:`~repro.runner.fallback.BlockOutcome` cannot carry
    the live DAG across the process boundary, so the counters travel
    separately), plus -- when observability is on -- the block's trace
    entries and metrics dump for the parent to absorb/merge in program
    order.
    """
    cache = _WORKER_STATE["cache"]
    tracer = (Tracer(worker=os.getpid()) if _WORKER_STATE["trace"]
              else None)
    registry = MetricsRegistry() if _WORKER_STATE["metrics"] else None
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    outcome = schedule_block_resilient(
        block, _WORKER_STATE["machine"], _WORKER_STATE["chain"],
        budget=_WORKER_STATE["budget"],
        heuristic_driver=_WORKER_STATE["driver"],
        verify=_WORKER_STATE["verify"], cache=cache,
        tracer=tracer, metrics=registry,
        skip_builders=skip_builders, on_attempt=on_attempt,
        columnar=_WORKER_STATE.get("columnar", False))
    if registry is not None and cache is not None:
        record_cache(registry, cache.hits - hits0,
                     cache.misses - misses0)
    counters = None
    block_stats = None
    if outcome.dag_stats_outcome is not None:
        s = outcome.dag_stats_outcome.stats
        counters = (s.comparisons, s.table_probes, s.alias_checks,
                    s.arcs_added, s.arcs_merged, s.arcs_suppressed,
                    s.bitmap_ops)
        block_stats = dag_stats(outcome.dag_stats_outcome.dag)
    obs = None
    if tracer is not None or registry is not None:
        obs = (tracer.entries if tracer is not None else [],
               registry.dump() if registry is not None else [])
    return outcome.to_record(volatile=True), counters, block_stats, obs


def _worker_main(conn: Connection, init_args: tuple) -> None:
    """Supervised worker loop: recv task, heartbeat, compute, reply.

    Chaos directives ride on the task message and are executed here --
    ``exit``/``kill`` die *after* the ``start`` heartbeat so the
    supervisor's attribution is exercised exactly like a real
    mid-block crash.
    """
    _init_worker(*init_args)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            conn.close()
            return
        _, index, block, attempt, skip, inject = message
        try:
            conn.send(("start", index, attempt))
            if inject is not None:
                kind = inject[0]
                if kind == "delay":
                    time.sleep(inject[1])
                elif kind == "exit":
                    os._exit(inject[1])
                elif kind == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                elif kind == "corrupt":
                    block = None
                elif kind == "alloc":
                    # Exercises the memory ceiling: under RLIMIT_AS
                    # this raises MemoryError (attributed as an "oom"
                    # crash); without a ceiling it is a real -- brief
                    # -- allocation.
                    _hog = bytearray(inject[1])
                    del _hog
            if block is None or not isinstance(block, BasicBlock):
                conn.send(("error", index,
                           "corrupted task payload: expected a "
                           "BasicBlock"))
                continue
            result = _run_block(
                block, skip_builders=skip,
                on_attempt=lambda name: conn.send(
                    ("attempt", index, name)))
            conn.send(("done", index) + result)
        except (EOFError, OSError, BrokenPipeError):
            return
        except BaseException as exc:  # noqa: BLE001 - isolation net
            try:
                conn.send(("error", index,
                           f"{type(exc).__name__}: {exc}"))
            except (OSError, BrokenPipeError):
                return


# -- retry and breaker policies --------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/retry budget for crashed or poisoned blocks.

    Attributes:
        max_retries: failed attempts a block may accumulate before it
            is quarantined (the first attempt is free: ``max_retries=3``
            allows 4 runs total).
        base_delay: backoff before the first retry, in seconds.
        max_delay: backoff ceiling, in seconds.
        jitter: maximum extra fraction added to each delay (0.5 =
            up to +50%).  The jitter amount is drawn from a generator
            seeded per (block, attempt), so the *chosen* delays are
            reproducible even though their wall-clock effect is not.
        seed: jitter seed.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, index: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` of block ``index``."""
        base = min(self.max_delay,
                   self.base_delay * (2 ** max(0, attempt - 1)))
        rng = random.Random(f"repro-retry:{self.seed}:{index}:{attempt}")
        return base * (1.0 + rng.uniform(0.0, self.jitter))


#: circuit breaker states
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: numeric encoding of breaker states for the state gauge
_BREAKER_STATE_CODE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1,
                       BREAKER_OPEN: 2}


class CircuitBreaker:
    """Per-builder circuit breaker layered on the fallback chain.

    ``threshold`` consecutive crash/timeout failures in one builder
    open its breaker: subsequent blocks skip that chain entry (a
    recorded ``breaker-open`` attempt) and route straight to the next
    one, instead of burning a full watchdog budget per block on a
    builder that is known to be misbehaving.  After ``cooldown``
    skipped blocks the breaker goes half-open and lets exactly one
    probe attempt through: success closes it, failure re-opens it for
    another cooldown.

    Breaker routing is outcome-changing by design (a skipped builder
    is an attempt that never ran), so it is opt-in everywhere; with
    ``jobs > 1`` the open/close timing additionally depends on
    completion order and is therefore load-sensitive.
    """

    def __init__(self, threshold: int = 3, cooldown: int = 8,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if threshold < 1:
            raise ReproError(
                f"breaker threshold must be >= 1, got {threshold}")
        if cooldown < 1:
            raise ReproError(
                f"breaker cooldown must be >= 1, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics
        self._state: dict[str, str] = {}
        self._consecutive: dict[str, int] = {}
        self._cooldown_left: dict[str, int] = {}
        self._probing: set[str] = set()
        #: (builder, to_state) transition log, in order
        self.transitions: list[tuple[str, str]] = []

    def state(self, builder: str) -> str:
        """The builder's current state name."""
        return self._state.get(builder, BREAKER_CLOSED)

    def _transition(self, builder: str, to_state: str) -> None:
        self._state[builder] = to_state
        self.transitions.append((builder, to_state))
        self.tracer.event("breaker", builder=builder, state=to_state)
        record_breaker_transition(self.metrics, builder, to_state,
                                  _BREAKER_STATE_CODE[to_state])

    def allow(self, builder: str) -> bool:
        """May the next block try this builder?  (Mutates state: an
        open breaker counts the skip against its cooldown, and the
        call that ends the cooldown *is* the half-open probe.)"""
        state = self.state(builder)
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_OPEN:
            left = self._cooldown_left.get(builder, self.cooldown) - 1
            self._cooldown_left[builder] = left
            if left > 0:
                return False
            self._transition(builder, BREAKER_HALF_OPEN)
            self._probing.add(builder)
            return True
        # half-open: one probe in flight at a time
        if builder in self._probing:
            return False
        self._probing.add(builder)
        return True

    def record_failure(self, builder: str) -> None:
        """A crash or watchdog timeout attributed to this builder."""
        self._probing.discard(builder)
        if self.state(builder) == BREAKER_HALF_OPEN:
            self._cooldown_left[builder] = self.cooldown
            self._transition(builder, BREAKER_OPEN)
            return
        count = self._consecutive.get(builder, 0) + 1
        self._consecutive[builder] = count
        if self.state(builder) == BREAKER_CLOSED \
                and count >= self.threshold:
            self._cooldown_left[builder] = self.cooldown
            self._transition(builder, BREAKER_OPEN)

    def record_success(self, builder: str) -> None:
        """An accepted attempt on this builder."""
        self._probing.discard(builder)
        self._consecutive[builder] = 0
        if self.state(builder) == BREAKER_HALF_OPEN:
            self._transition(builder, BREAKER_CLOSED)

    def observe_attempts(self, attempts: Sequence[Attempt]) -> None:
        """Feed a completed outcome's attempt records into the breaker
        (how the supervisor applies worker-side verdicts parent-side)."""
        for attempt in attempts:
            if attempt.builder in ("original-order", "worker"):
                continue
            if attempt.stage == "timeout":
                self.record_failure(attempt.builder)
            elif attempt.stage == "ok":
                self.record_success(attempt.builder)


# -- quarantine ------------------------------------------------------------


def write_quarantine_reproducer(block: BasicBlock,
                                machine: MachineModel,
                                case: str, reason: str,
                                out_dir: str) -> str:
    """Write a (minimized, when possible) reproducer ``.s`` file.

    The in-process differential oracle
    (:func:`repro.runner.fuzz.check_block`) is tried first: if the
    block also fails in-process, the failure is minimized with the
    fuzz harness's delta-debugging loop before writing.  A block that
    only dies under process isolation (a real segfault/OOM, or chaos
    injection) is written whole, with the crash history in the header.
    """
    from repro.runner.fuzz import check_block, minimize_block
    minimized = block
    description = None
    try:
        description = check_block(block, machine)
    except Exception:  # noqa: BLE001 - oracle is best-effort here
        description = None
    if description is not None:
        minimized = minimize_block(
            block, lambda b: check_block(b, machine) is not None)
        description = check_block(minimized, machine) or description
    else:
        description = (f"{reason} (not reproducible in-process; "
                       f"crash requires worker isolation)")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"quarantine-{case}.s")
    lines = [
        "! repro quarantine reproducer",
        f"! case: {case}",
        f"! failure: {description}",
        f"! minimized: {len(block.instructions)} -> "
        f"{len(minimized.instructions)} instructions",
    ]
    lines.extend(f"\t{ins.render()}" for ins in minimized.instructions)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def quarantine_outcome(block: BasicBlock, machine: MachineModel,
                       failures: Sequence[tuple[str, str]],
                       reproducer: str | None) -> BlockOutcome:
    """The degraded, journaled verdict for a quarantined block."""
    attempts = [Attempt("worker", kind, error) for kind, error in failures]
    attempts.append(Attempt("original-order", "quarantined"))
    makespan = degraded_timing(block, machine)
    return BlockOutcome(
        index=block.index, label=block.label, builder=None,
        order=list(range(len(block.instructions))),
        makespan=makespan, original_makespan=makespan,
        attempts=attempts, quarantined=True, reproducer=reproducer)


# -- the supervised pool ---------------------------------------------------


@dataclass
class SupervisorStats:
    """What the supervisor observed (volatile -- never affects
    outcomes of healthy blocks).

    Attributes:
        crashes: worker deaths attributed to a running task.
        crash_kinds: crash count by kind ("exit N", "signal N",
            "hang", "task-error").
        restarts: replacement workers spawned.
        retries: block re-enqueues after a failure.
        quarantined: blocks that exhausted their retry budget.
    """

    crashes: int = 0
    crash_kinds: dict[str, int] = field(default_factory=dict)
    restarts: int = 0
    retries: int = 0
    quarantined: int = 0


class _Worker:
    """One supervised worker process and its bookkeeping."""

    __slots__ = ("process", "conn", "task", "dispatched_at",
                 "attempt_builder", "hang_killed")

    def __init__(self, process: multiprocessing.Process,
                 conn: Connection) -> None:
        self.process = process
        self.conn = conn
        self.task: tuple[int, int] | None = None  # (index, attempt)
        self.dispatched_at: float = 0.0
        self.attempt_builder: str | None = None
        self.hang_killed = False


class SupervisedPool:
    """Crash-isolated worker pool with retry, quarantine, and breaker.

    The pool is driven from :func:`repro.runner.batch.run_batch`'s
    program-order consumption loop: :meth:`result` pumps the event
    loop (dispatching queued tasks, draining worker messages, handling
    crashes, hangs, backoff expiries) until the requested block's
    verdict is available.  Completion order never leaks into results:
    the caller asks for blocks in program order and gets byte-stable
    outcomes for every healthy block.

    Args:
        blocks: the un-journaled blocks to schedule.
        machine: timing model (also used parent-side for the
            quarantine verdict's degraded makespan).
        chain_names: builder chain for the workers.
        budget: per-attempt watchdog limits, forwarded to workers.
        heuristic_driver / verify / use_cache / trace / metrics_on:
            worker configuration, exactly as the legacy pool forwarded
            it.
        jobs: worker process count (capped at ``len(blocks)``).
        retry: crash retry/backoff policy (default
            :class:`RetryPolicy`).
        chaos: optional chaos plan -- any object with a
            ``plan(index, attempt)`` method returning None or an
            injection directive tuple
            (:class:`repro.runner.chaos.ChaosConfig`).
        task_timeout: seconds of silence after dispatch before a
            worker is presumed hung and SIGKILLed (None = wait
            forever, like the legacy pool).
        quarantine_dir: directory for reproducer ``.s`` files (None =
            quarantine without writing a file).
        breaker: optional parent-side :class:`CircuitBreaker`.
        tracer: parent tracer for supervision events (restarts,
            retries, quarantines); worker block traces are returned
            through :meth:`result` for program-order absorption.
        metrics: parent registry for supervision counters.
        mem_limit_mb: opt-in per-worker address-space ceiling in MiB
            (``RLIMIT_AS`` in the worker bootstrap).  A worker whose
            allocation exceeds it fails with a ``MemoryError``
            attributed to its block and builder (crash kind
            ``"oom"``), instead of an anonymous kernel SIGKILL.
        columnar: forward the structure-of-arrays fast-path flag to
            the workers (byte-identical outcomes; see
            :func:`~repro.runner.batch.run_batch`).
    """

    def __init__(self, blocks: Sequence[BasicBlock],
                 machine: MachineModel,
                 chain_names: tuple[str, ...],
                 budget: Budget | None,
                 heuristic_driver: str,
                 verify: bool,
                 use_cache: bool,
                 trace: bool,
                 metrics_on: bool,
                 jobs: int,
                 retry: RetryPolicy | None = None,
                 chaos: object | None = None,
                 task_timeout: float | None = None,
                 quarantine_dir: str | None = None,
                 breaker: CircuitBreaker | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 mem_limit_mb: int | None = None,
                 columnar: bool = False) -> None:
        self._machine = machine
        self._chain_names = chain_names
        self._init_args = (machine, chain_names, budget,
                           heuristic_driver, verify, use_cache,
                           trace, metrics_on, mem_limit_mb, columnar)
        self._retry = retry or RetryPolicy()
        self._chaos = chaos
        self._task_timeout = task_timeout
        self._quarantine_dir = quarantine_dir
        self._breaker = breaker
        self._tracer = tracer or NULL_TRACER
        self._metrics = metrics
        self._blocks = {b.index: b for b in blocks}
        #: (ready_at, index, attempt) -- attempt = prior failures
        self._queue: list[tuple[float, int, int]] = [
            (0.0, b.index, 0) for b in blocks]
        self._results: dict[int, tuple] = {}
        self._failures: dict[int, list[tuple[str, str]]] = {}
        self._workers: list[_Worker] = []
        self._jobs = max(1, min(jobs, len(self._blocks) or 1))
        self._mp = multiprocessing.get_context()
        self.stats = SupervisorStats()
        for _ in range(self._jobs):
            self._spawn()

    def __contains__(self, index: int) -> bool:
        return index in self._blocks

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> None:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main, args=(child_conn, self._init_args),
            daemon=True, name="repro-supervised-worker")
        process.start()
        child_conn.close()
        self._workers.append(_Worker(process, parent_conn))

    def shutdown(self, kill: bool = False) -> None:
        """Stop every worker (politely unless ``kill``)."""
        for worker in self._workers:
            if not kill and worker.process.is_alive():
                try:
                    worker.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        for worker in self._workers:
            if kill and worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
            worker.conn.close()
        self._workers.clear()

    # -- the event loop ----------------------------------------------------

    def result(self, index: int) -> tuple:
        """Block until block ``index`` has a verdict; return it.

        Returns either ``("done", record, counters, block_stats, obs)``
        (healthy, computed worker-side) or ``("quarantined", outcome)``
        (parent-side degraded verdict).
        """
        while index not in self._results:
            if not self._outstanding():
                raise ReproError(
                    f"supervised pool lost track of block {index} "
                    f"(no queued or running work remains)")
            self._pump()
        return self._results.pop(index)

    def _outstanding(self) -> bool:
        return bool(self._queue) or any(
            w.task is not None for w in self._workers)

    def _pump(self) -> None:
        self._dispatch()
        objects = []
        for worker in self._workers:
            objects.append(worker.conn)
            objects.append(worker.process.sentinel)
        mp_wait(objects, timeout=self._wait_timeout())
        for worker in list(self._workers):
            conn_broken = self._drain(worker)
            if conn_broken or not worker.process.is_alive():
                self._reap(worker)
        self._check_hangs()

    def _drain(self, worker: _Worker) -> bool:
        """Process every buffered message; True if the pipe broke."""
        while True:
            try:
                if not worker.conn.poll():
                    return False
                message = worker.conn.recv()
            except (EOFError, OSError):
                return True
            self._handle_message(worker, message)

    def _dispatch(self) -> None:
        now = time.monotonic()
        idle = [w for w in self._workers
                if w.task is None and w.process.is_alive()]
        self._queue.sort()
        while idle and self._queue and self._queue[0][0] <= now:
            ready_at, index, attempt = self._queue.pop(0)
            worker = idle.pop(0)
            block = self._blocks[index]
            inject = (self._chaos.plan(index, attempt)
                      if self._chaos is not None else None)
            skip: tuple[str, ...] = ()
            if self._breaker is not None:
                skip = tuple(name for name in self._chain_names
                             if not self._breaker.allow(name))
            payload = None if (inject is not None
                               and inject[0] == "corrupt") else block
            try:
                worker.conn.send(("task", index, payload, attempt,
                                  skip, inject))
            except (OSError, BrokenPipeError):
                # Worker died between tasks; the reaper will requeue.
                self._queue.append((ready_at, index, attempt))
                continue
            worker.task = (index, attempt)
            worker.dispatched_at = now
            worker.attempt_builder = None

    def _wait_timeout(self) -> float | None:
        now = time.monotonic()
        timeouts: list[float] = []
        if self._queue and any(w.task is None for w in self._workers):
            timeouts.append(max(0.0, min(t for t, _, _ in self._queue)
                                 - now))
        if self._task_timeout is not None:
            for worker in self._workers:
                if worker.task is not None:
                    deadline = worker.dispatched_at + self._task_timeout
                    timeouts.append(max(0.0, deadline - now))
        if not timeouts:
            return None
        # Never spin: a zero timeout only when something is due now.
        return min(timeouts)

    def _handle_message(self, worker: _Worker, message: tuple) -> None:
        kind = message[0]
        if kind == "start":
            return  # liveness heartbeat; attribution is via .task
        if kind == "attempt":
            _, index, builder = message
            if worker.task is not None and worker.task[0] == index:
                worker.attempt_builder = builder
            return
        if kind == "done":
            _, index, record, counters, block_stats, obs = message
            if self._breaker is not None:
                self._breaker.observe_attempts(
                    [Attempt.from_record(a)
                     for a in record.get("attempts", [])])
            self._results[index] = ("done", record, counters,
                                    block_stats, obs)
            worker.task = None
            worker.attempt_builder = None
            return
        if kind == "error":
            _, index, error = message
            if worker.task is not None and worker.task[0] == index:
                attempt = worker.task[1]
                builder = worker.attempt_builder
                worker.task = None
                worker.attempt_builder = None
                # A MemoryError under the opt-in RLIMIT_AS ceiling is
                # an OOM death with exact attribution -- distinct from
                # both an anonymous SIGKILL and a generic task error.
                failure_kind = ("oom" if error.startswith("MemoryError")
                                else "task-error")
                if failure_kind == "oom" and builder is not None \
                        and self._breaker is not None:
                    self._breaker.record_failure(builder)
                self._task_failed(index, attempt, failure_kind, error,
                                  builder=builder)
            return
        raise ReproError(
            f"unknown supervised-worker message {kind!r}")

    def _reap(self, worker: _Worker) -> None:
        """A worker process died: attribute, requeue/quarantine,
        restart."""
        # A completed result may still sit in the pipe (the worker
        # died -- or was hang-killed -- just after sending it); honor
        # it before attributing a crash.
        self._drain(worker)
        worker.process.join(timeout=2.0)
        exitcode = worker.process.exitcode
        if worker.hang_killed:
            kind = "hang"
        elif exitcode is not None and exitcode < 0:
            kind = f"signal {-exitcode}"
        else:
            kind = f"exit {exitcode}"
        self._workers.remove(worker)
        worker.conn.close()
        if worker.task is not None:
            index, attempt = worker.task
            builder = worker.attempt_builder
            error = (f"worker died ({kind}) while scheduling block "
                     f"{index}"
                     + (f" in builder {builder}" if builder else ""))
            self.stats.crashes += 1
            self.stats.crash_kinds[kind] = \
                self.stats.crash_kinds.get(kind, 0) + 1
            self._tracer.event("worker-crash", index=index, kind=kind,
                               builder=builder, attempt=attempt)
            record_worker_crash(self._metrics, kind)
            if builder is not None and self._breaker is not None:
                self._breaker.record_failure(builder)
            self._task_failed(index, attempt, kind, error,
                              builder=builder)
        if self._outstanding():
            self._spawn()
            self.stats.restarts += 1
            self._tracer.event("worker-restart")
            record_worker_restart(self._metrics)

    def _task_failed(self, index: int, attempt: int, kind: str,
                     error: str, builder: str | None) -> None:
        failures = self._failures.setdefault(index, [])
        failures.append((kind if kind in ("task-error", "oom")
                         else "crash", error))
        if kind in ("task-error", "oom"):
            # In-worker failures: the process survived, so _reap never
            # saw them -- account for them here.
            self.stats.crashes += 1
            self.stats.crash_kinds[kind] = \
                self.stats.crash_kinds.get(kind, 0) + 1
            self._tracer.event("task-error", index=index, kind=kind,
                               error=error)
            record_worker_crash(self._metrics, kind)
        retries = attempt + 1
        if retries > self._retry.max_retries:
            self._quarantine(index)
            return
        delay = self._retry.delay(index, retries)
        self.stats.retries += 1
        self._tracer.event("retry", index=index, attempt=retries,
                           delay=round(delay, 4))
        record_retry(self._metrics)
        self._queue.append((time.monotonic() + delay, index, retries))

    def _quarantine(self, index: int) -> None:
        block = self._blocks[index]
        failures = self._failures.get(index, [])
        reason = failures[-1][1] if failures else "unknown failure"
        reproducer = None
        if self._quarantine_dir is not None:
            reproducer = write_quarantine_reproducer(
                block, self._machine, str(index), reason,
                self._quarantine_dir)
        outcome = quarantine_outcome(block, self._machine, failures,
                                     reproducer)
        self.stats.quarantined += 1
        self._tracer.event("quarantined", index=index,
                           attempts=len(failures),
                           reproducer=reproducer)
        record_quarantine(self._metrics)
        self._results[index] = ("quarantined", outcome)

    def _check_hangs(self) -> None:
        if self._task_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.task is None or not worker.process.is_alive():
                continue
            if now - worker.dispatched_at > self._task_timeout:
                worker.hang_killed = True
                worker.process.kill()
                worker.process.join(timeout=2.0)
                self._reap(worker)
