"""Reproducible performance benchmark for the hot scheduling path.

``python -m repro bench`` measures the three layers this package
optimizes and writes one JSON document (``BENCH_pr3.json`` by default)
so regressions are diffable run over run:

* **builders** -- per-construction-algorithm wall time plus the
  machine-independent work counters of Tables 4/5 (comparisons, table
  probes, alias checks, bitmap operations, reachability words
  touched).  The counters are exactly reproducible; wall times are
  reported as the minimum over ``repeats`` runs.
* **heuristics** -- the intermediate-pass drivers (reverse walk vs.
  level algorithm, the paper's conclusion-4 comparison) and the
  incremental frontier repair of
  :mod:`repro.heuristics.incremental` against a full re-pass.
* **batch** -- the section 6 resilient pipeline end to end (verify
  on), three ways: baseline, with the shared
  :class:`~repro.dag.builders.cache.PairwiseCache`, and
  cached + block-parallel (``jobs``).  The three variants must produce
  byte-identical block records; the headline ``reduction_fraction``
  is the wall-clock saving of the best optimized variant.

The workload is deterministic: straight-line kernel bodies repeated
``copies`` times and windowed into fixed-size blocks, the
repeated-inner-loop population that dominates the paper's scientific
benchmarks (and makes dependence caching measurable).
"""

from __future__ import annotations

import json
import time
from typing import Callable

from repro.asm import parse_asm
from repro.cfg import apply_window, partition_blocks
from repro.dag.builders import PairwiseCache
from repro.dag.builders.base import BuildStats
from repro.errors import ReproError
from repro.heuristics.incremental import annotate, update_after_arc
from repro.heuristics.passes import backward_pass, backward_pass_levels
from repro.machine.model import MachineModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.runner.batch import run_batch
from repro.runner.fallback import BUILDER_CLASSES
from repro.workloads.kernels import straightline_source

#: schema version of the emitted JSON (2: added batch.metrics -- the
#: observability snapshot with cache hit/miss totals)
BENCH_VERSION = 2

#: kernels whose straight-line bodies make up the workload
BENCH_KERNELS = ("daxpy", "livermore1", "dot_product", "superscalar_mix")

_WORK_COUNTERS = ("comparisons", "table_probes", "alias_checks",
                  "arcs_added", "arcs_merged", "arcs_suppressed",
                  "bitmap_ops")


def bench_blocks(copies: int):
    """The benchmark's block population (deterministic).

    Each kernel's straight-line body is repeated ``copies`` times and
    windowed at exactly its own body length, so every kernel
    contributes ``copies`` textually identical blocks -- the unrolled
    inner-loop population where dependence caching pays.  Blocks are
    renumbered globally so journal/batch indices stay unique.
    """
    from repro.cfg.basic_block import BasicBlock
    from repro.workloads.kernels import straightline_body
    blocks: list[BasicBlock] = []
    for name in BENCH_KERNELS:
        body_len = len(straightline_body(name))
        program = parse_asm(straightline_source(name, copies),
                            name=name)
        for block in apply_window(partition_blocks(program), body_len):
            if block.instructions:
                blocks.append(BasicBlock(len(blocks),
                                         block.instructions,
                                         block.label))
    return blocks


def _best_of(repeats: int, fn: Callable[[], object]) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, with the last result."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _bench_builders(blocks, machine: MachineModel, repeats: int) -> dict:
    """Per-builder construction time and work counters (no cache)."""
    rows: dict[str, dict] = {}
    for name in sorted(BUILDER_CLASSES):
        cls = BUILDER_CLASSES[name]

        def build_all() -> tuple[BuildStats, int]:
            total = BuildStats()
            words = 0
            for block in blocks:
                builder = cls(machine)
                total.merge(builder.build(block).stats)
                rmap = getattr(builder, "reachability", None)
                if rmap is not None:
                    words += rmap.words_touched
            return total, words

        elapsed, (total, words) = _best_of(repeats, build_all)
        row = {"time_s": round(elapsed, 6)}
        row.update({c: getattr(total, c) for c in _WORK_COUNTERS})
        row["bitmap_words_touched"] = words
        rows[name] = row
    return rows


def _bench_heuristics(blocks, machine: MachineModel,
                      repeats: int) -> dict:
    """Intermediate-pass drivers and the incremental repair."""
    builder_cls = BUILDER_CLASSES["table-forward"]
    dags = [builder_cls(machine).build(b).dag for b in blocks]

    def walk() -> None:
        for dag in dags:
            backward_pass(dag, require_est=True)

    def levels() -> None:
        for dag in dags:
            backward_pass_levels(dag, require_est=True)

    reverse_s, _ = _best_of(repeats, walk)
    levels_s, _ = _best_of(repeats, levels)

    # Incremental repair: re-assert one existing arc per DAG (a merge,
    # so the structure is unchanged) and repair the frontier, against
    # re-running both full passes -- the per-arc cost that
    # apply_inherited_incremental pays versus what it replaced.
    targets = []
    for dag in dags:
        annotate(dag)
        for node in dag.real_nodes():
            if node.out_arcs:
                arc = node.out_arcs[0]
                if not arc.child.is_dummy:
                    targets.append((dag, node, arc.child))
                    break

    def incremental() -> None:
        for dag, parent, child in targets:
            update_after_arc(dag, parent, child)

    def full_repass() -> None:
        for dag, _, _ in targets:
            annotate(dag)

    incremental_s, _ = _best_of(repeats, incremental)
    full_s, _ = _best_of(repeats, full_repass)
    return {
        "reverse_walk_s": round(reverse_s, 6),
        "levels_s": round(levels_s, 6),
        "incremental": {
            "arcs_repaired": len(targets),
            "incremental_s": round(incremental_s, 6),
            "full_repass_s": round(full_s, 6),
        },
    }


def _records(result) -> list[str]:
    return [json.dumps(o.to_record(), sort_keys=True)
            for o in result.outcomes]


def _bench_batch(blocks, machine: MachineModel, repeats: int,
                 jobs: int, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> dict:
    """The section 6 pipeline three ways; schedules must be identical."""
    baseline_s, baseline = _best_of(
        repeats, lambda: run_batch(blocks, machine, verify=True))
    cached_s, cached = _best_of(
        repeats, lambda: run_batch(blocks, machine, verify=True,
                                   cache=PairwiseCache()))
    # One cache per run (cold start included) keeps the measurement
    # honest; cache_info reports the last run's hit/miss split.  The
    # probe run also carries the observability instruments (off the
    # timed runs, so tracing cannot skew the measurements).
    if metrics is None:
        metrics = MetricsRegistry()
    probe = PairwiseCache()
    run_for_info = run_batch(blocks, machine, verify=True, cache=probe,
                             tracer=tracer, metrics=metrics)
    parallel_s = None
    parallel = None
    if jobs > 1:
        parallel_s, parallel = _best_of(
            repeats, lambda: run_batch(blocks, machine, verify=True,
                                       jobs=jobs,
                                       cache=PairwiseCache()))
    base_records = _records(baseline)
    identical = base_records == _records(cached) \
        and base_records == _records(run_for_info) \
        and (parallel is None or base_records == _records(parallel))
    if not identical:
        raise ReproError(
            "bench invariant violated: cached/parallel runs produced "
            "different block records than the baseline")
    best_optimized = min(x for x in (cached_s, parallel_s)
                         if x is not None)
    counters = {c: getattr(baseline.build_stats, c)
                for c in _WORK_COUNTERS}
    return {
        "n_blocks": baseline.n_blocks,
        "n_instructions": baseline.n_instructions,
        "total_makespan": baseline.total_makespan,
        "total_original_makespan": baseline.total_original_makespan,
        "wasted_work": baseline.wasted_work,
        "build_counters": counters,
        "baseline_s": round(baseline_s, 6),
        "cached_s": round(cached_s, 6),
        "parallel_s": (round(parallel_s, 6)
                       if parallel_s is not None else None),
        "jobs": jobs,
        "schedules_identical": True,
        "reduction_fraction": round(1.0 - best_optimized / baseline_s, 4)
        if baseline_s > 0 else 0.0,
        "cache": probe.info(),
        "metrics": metrics.snapshot(),
    }


def run_bench(machine: MachineModel, machine_name: str = "generic",
              copies: int = 32, repeats: int = 3, jobs: int = 2,
              quick: bool = False, tracer: Tracer | None = None,
              metrics: MetricsRegistry | None = None) -> dict:
    """Run the full benchmark and return the JSON-ready document.

    Args:
        machine: timing model instance.
        machine_name: its CLI name, recorded in the document.
        copies: straight-line body repetitions per kernel.
        repeats: timing runs per measurement (minimum is reported).
        jobs: worker processes for the parallel batch variant
            (``<= 1`` skips it).
        quick: shrink the workload and repeats for CI smoke runs.
        tracer: optional :class:`~repro.obs.trace.Tracer`, attached to
            the batch probe run only (never a timed run).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            for the probe run; a private one is created when omitted,
            and its snapshot lands in ``doc["batch"]["metrics"]``
            either way (this is where the cache hit/miss totals the
            version-1 schema omitted now live).
    """
    if quick:
        copies = min(copies, 8)
        repeats = min(repeats, 2)
    blocks = bench_blocks(copies)
    doc = {
        "version": BENCH_VERSION,
        "machine": machine_name,
        "quick": quick,
        "workload": {
            "kernels": list(BENCH_KERNELS),
            "copies": copies,
            "window": "per-kernel body length",
            "n_blocks": len(blocks),
            "n_instructions": sum(len(b.instructions) for b in blocks),
        },
        "builders": _bench_builders(blocks, machine, repeats),
        "heuristics": _bench_heuristics(blocks, machine, repeats),
        "batch": _bench_batch(blocks, machine, repeats, jobs,
                              tracer=tracer, metrics=metrics),
        "timing_note": (
            "counters are exactly reproducible; *_s fields are wall "
            "times (minimum over repeats) and vary with the host"),
    }
    return doc


def write_bench(doc: dict, path: str) -> None:
    """Write the benchmark document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")
