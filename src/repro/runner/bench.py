"""Reproducible performance benchmark for the hot scheduling path.

``python -m repro bench`` measures the three layers this package
optimizes and writes one JSON document (``--out``, default
:data:`DEFAULT_BENCH_PATH`) so regressions are diffable run over run:

* **builders** -- per-construction-algorithm wall time plus the
  machine-independent work counters of Tables 4/5 (comparisons, table
  probes, alias checks, bitmap operations, reachability words
  touched).  The counters are exactly reproducible; wall times are
  reported as the minimum over ``repeats`` runs.
* **heuristics** -- the intermediate-pass drivers (reverse walk vs.
  level algorithm, the paper's conclusion-4 comparison) and the
  incremental frontier repair of
  :mod:`repro.heuristics.incremental` against a full re-pass.
* **batch** -- the section 6 resilient pipeline end to end (verify
  on), three ways: baseline, with the shared
  :class:`~repro.dag.builders.cache.PairwiseCache`, and
  cached + block-parallel (``jobs``).  The three variants must produce
  byte-identical block records; the headline ``reduction_fraction``
  is the wall-clock saving of the best optimized variant.

The workload is deterministic: straight-line kernel bodies repeated
``copies`` times and windowed into fixed-size blocks, the
repeated-inner-loop population that dominates the paper's scientific
benchmarks (and makes dependence caching measurable).

:func:`compare_bench` is the trajectory gate over two such documents
(``repro bench --compare OLD.json [NEW.json]``): deterministic work
counters must match *exactly* -- they are machine-independent, so any
drift is a real behavior change -- while wall-clock fields only gate
on a configurable ratio (they are host- and load-dependent noise).
CI runs it over the committed ``BENCH_*.json`` trajectory so a future
change cannot silently regress the paper's cost story.
"""

from __future__ import annotations

import json
import time
from typing import Callable

from repro.asm import parse_asm
from repro.cfg import apply_window, partition_blocks
from repro.dag.builders import PairwiseCache, TableForwardBuilder
from repro.dag.builders.base import BuildStats
from repro.errors import ReproError
from repro.heuristics.incremental import annotate, update_after_arc
from repro.heuristics.passes import backward_pass, backward_pass_levels
from repro.machine.model import MachineModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.runner.batch import run_batch
from repro.runner.fallback import BUILDER_CLASSES
from repro.workloads.kernels import straightline_source

#: schema version of the emitted JSON (2: added batch.metrics -- the
#: observability snapshot with cache hit/miss totals; 3: added the
#: fpppp-scale section and the optional columnar batch variant)
BENCH_VERSION = 3

#: the paper's largest block: fpppp tops Table 3 at ~11,750
#: instructions in a single basic block
FPPPP_TARGET = 11_750

#: default output document path (versioned so schema bumps do not
#: silently overwrite an older trajectory point)
DEFAULT_BENCH_PATH = f"BENCH_v{BENCH_VERSION}.json"

#: default wall-clock regression gate: new may take at most this
#: multiple of old (counters gate exactly; wall clocks are noisy)
DEFAULT_WALL_RATIO = 2.0

#: wall measurements shorter than this are not gated at all -- at
#: sub-10ms scale, scheduler jitter swamps any real regression
MIN_GATED_WALL_S = 0.01

#: kernels whose straight-line bodies make up the workload
BENCH_KERNELS = ("daxpy", "livermore1", "dot_product", "superscalar_mix")

_WORK_COUNTERS = ("comparisons", "table_probes", "alias_checks",
                  "arcs_added", "arcs_merged", "arcs_suppressed",
                  "bitmap_ops")


def bench_blocks(copies: int):
    """The benchmark's block population (deterministic).

    Each kernel's straight-line body is repeated ``copies`` times and
    windowed at exactly its own body length, so every kernel
    contributes ``copies`` textually identical blocks -- the unrolled
    inner-loop population where dependence caching pays.  Blocks are
    renumbered globally so journal/batch indices stay unique.
    """
    from repro.cfg.basic_block import BasicBlock
    from repro.workloads.kernels import straightline_body
    blocks: list[BasicBlock] = []
    for name in BENCH_KERNELS:
        body_len = len(straightline_body(name))
        program = parse_asm(straightline_source(name, copies),
                            name=name)
        for block in apply_window(partition_blocks(program), body_len):
            if block.instructions:
                blocks.append(BasicBlock(len(blocks),
                                         block.instructions,
                                         block.label))
    return blocks


def fpppp_block(target: int = FPPPP_TARGET):
    """One giant branch-free block of at least ``target`` instructions.

    Kernel bodies are cycled and concatenated into a single basic
    block -- the Table 3 fpppp shape (max block ~11,750 instructions)
    that separates the ``n**2`` builder's quadratic blow-up from the
    table-driven builders' near-linear growth.
    """
    from repro.workloads.kernels import straightline_body
    lines: list[str] = []
    i = 0
    while len(lines) < target:
        lines.extend(straightline_body(BENCH_KERNELS[i % len(BENCH_KERNELS)]))
        i += 1
    blocks = partition_blocks(parse_asm("\n".join(lines) + "\n",
                                        name="fpppp-scale"))
    if len(blocks) != 1:  # pragma: no cover - defensive
        raise ReproError(
            f"fpppp workload expected one block, got {len(blocks)}")
    return blocks[0]


def _arc_tuples(dag) -> list[tuple]:
    return [(a.parent.id, a.child.id, a.dep.name, a.delay,
             str(a.resource)) for a in dag.arcs()]


def _bench_fpppp(machine: MachineModel, repeats: int,
                 quick: bool) -> dict:
    """Table-building throughput at the paper's largest block size.

    Times the object table-forward builder against the columnar packed
    kernel on one fpppp-scale block, gates on byte identity (arcs,
    work counters, heuristic annotations, and the accepted schedule),
    and traces the ``n**2`` builder's quadratic blow-up at sub-scale
    sizes -- running it at full scale is exactly the cost the paper's
    table-driven construction exists to avoid, so the full-size cost
    is reported as a predicted comparison count instead.
    """
    from repro.dag.columnar import HAVE_NUMPY
    if not HAVE_NUMPY:
        return {"available": False, "reason": "numpy not installed"}
    from repro.dag.columnar.builders import ColumnarTableForwardBuilder
    from repro.dag.columnar.passes import columnar_backward_pass
    from repro.pipeline import SECTION6_PRIORITY
    from repro.scheduling.list_scheduler import schedule_forward

    target = FPPPP_TARGET // 8 if quick else FPPPP_TARGET
    block = fpppp_block(target)
    n = len(block.instructions)

    object_s, outcome = _best_of(
        repeats, lambda: TableForwardBuilder(machine).build(block))
    columnar = ColumnarTableForwardBuilder(machine)
    packed_s, (cdag, cstats) = _best_of(
        repeats, lambda: columnar.build_packed(block))

    # Identity gate: the packed path must reproduce the object build
    # byte for byte -- arcs in order, counters, annotations, schedule.
    mdag = cdag.to_dag()
    if _arc_tuples(outcome.dag) != _arc_tuples(mdag):
        raise ReproError(
            "fpppp bench invariant violated: columnar arcs differ "
            "from the object builder's")
    if outcome.stats.__dict__ != cstats.__dict__:
        raise ReproError(
            "fpppp bench invariant violated: columnar work counters "
            "differ from the object builder's")
    backward_pass(outcome.dag, require_est=False)
    columnar_backward_pass(mdag, require_est=False)
    sched = schedule_forward(outcome.dag, machine, SECTION6_PRIORITY)
    csched = schedule_forward(mdag, machine, SECTION6_PRIORITY)
    if ([node.id for node in sched.order]
            != [node.id for node in csched.order]
            or sched.timing.makespan != csched.timing.makespan):
        raise ReproError(
            "fpppp bench invariant violated: columnar schedule "
            "differs from the object path's")

    # The n**2 blow-up curve, measured where it is still affordable.
    n2_cls = BUILDER_CLASSES["n2"]
    curve = []
    for size in (max(2, n // 32), max(2, n // 16), max(2, n // 8)):
        sub = fpppp_block(size)
        sub_s, sub_out = _best_of(
            1, lambda sub=sub: n2_cls(machine).build(sub))
        curve.append({"n": len(sub.instructions),
                      "time_s": round(sub_s, 6),
                      "comparisons": sub_out.stats.comparisons})
    return {
        "available": True,
        "n_instructions": n,
        "target": target,
        "object_build_s": round(object_s, 6),
        "columnar_build_s": round(packed_s, 6),
        "throughput_multiple": round(object_s / packed_s, 2)
        if packed_s > 0 else None,
        "arcs": outcome.dag.n_arcs,
        "table_probes": cstats.table_probes,
        "alias_checks": cstats.alias_checks,
        "makespan": sched.timing.makespan,
        "schedule_identical": True,
        "n2_curve": curve,
        "predicted_full_n2_comparisons": n * (n - 1) // 2,
    }


def _best_of(repeats: int, fn: Callable[[], object]) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, with the last result."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _bench_builders(blocks, machine: MachineModel, repeats: int) -> dict:
    """Per-builder construction time and work counters (no cache)."""
    rows: dict[str, dict] = {}
    for name in sorted(BUILDER_CLASSES):
        cls = BUILDER_CLASSES[name]

        def build_all() -> tuple[BuildStats, int]:
            total = BuildStats()
            words = 0
            for block in blocks:
                builder = cls(machine)
                total.merge(builder.build(block).stats)
                rmap = getattr(builder, "reachability", None)
                if rmap is not None:
                    words += rmap.words_touched
            return total, words

        elapsed, (total, words) = _best_of(repeats, build_all)
        row = {"time_s": round(elapsed, 6)}
        row.update({c: getattr(total, c) for c in _WORK_COUNTERS})
        row["bitmap_words_touched"] = words
        rows[name] = row
    return rows


def _bench_heuristics(blocks, machine: MachineModel,
                      repeats: int) -> dict:
    """Intermediate-pass drivers and the incremental repair."""
    builder_cls = BUILDER_CLASSES["table-forward"]
    dags = [builder_cls(machine).build(b).dag for b in blocks]

    def walk() -> None:
        for dag in dags:
            backward_pass(dag, require_est=True)

    def levels() -> None:
        for dag in dags:
            backward_pass_levels(dag, require_est=True)

    reverse_s, _ = _best_of(repeats, walk)
    levels_s, _ = _best_of(repeats, levels)

    # Incremental repair: re-assert one existing arc per DAG (a merge,
    # so the structure is unchanged) and repair the frontier, against
    # re-running both full passes -- the per-arc cost that
    # apply_inherited_incremental pays versus what it replaced.
    targets = []
    for dag in dags:
        annotate(dag)
        for node in dag.real_nodes():
            if node.out_arcs:
                arc = node.out_arcs[0]
                if not arc.child.is_dummy:
                    targets.append((dag, node, arc.child))
                    break

    def incremental() -> None:
        for dag, parent, child in targets:
            update_after_arc(dag, parent, child)

    def full_repass() -> None:
        for dag, _, _ in targets:
            annotate(dag)

    incremental_s, _ = _best_of(repeats, incremental)
    full_s, _ = _best_of(repeats, full_repass)
    return {
        "reverse_walk_s": round(reverse_s, 6),
        "levels_s": round(levels_s, 6),
        "incremental": {
            "arcs_repaired": len(targets),
            "incremental_s": round(incremental_s, 6),
            "full_repass_s": round(full_s, 6),
        },
    }


def _records(result) -> list[str]:
    return [json.dumps(o.to_record(), sort_keys=True)
            for o in result.outcomes]


def _bench_batch(blocks, machine: MachineModel, repeats: int,
                 jobs: int, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 columnar: bool = False) -> dict:
    """The section 6 pipeline three ways; schedules must be identical.

    With ``columnar`` a fourth variant runs on the structure-of-arrays
    fast path and joins the identity gate -- the block records must be
    byte-identical to the object baseline's.
    """
    baseline_s, baseline = _best_of(
        repeats, lambda: run_batch(blocks, machine, verify=True))
    cached_s, cached = _best_of(
        repeats, lambda: run_batch(blocks, machine, verify=True,
                                   cache=PairwiseCache()))
    columnar_s = None
    columnar_run = None
    if columnar:
        columnar_s, columnar_run = _best_of(
            repeats, lambda: run_batch(blocks, machine, verify=True,
                                       cache=PairwiseCache(),
                                       columnar=True))
    # One cache per run (cold start included) keeps the measurement
    # honest; cache_info reports the last run's hit/miss split.  The
    # probe run also carries the observability instruments (off the
    # timed runs, so tracing cannot skew the measurements).
    if metrics is None:
        metrics = MetricsRegistry()
    probe = PairwiseCache()
    run_for_info = run_batch(blocks, machine, verify=True, cache=probe,
                             tracer=tracer, metrics=metrics)
    parallel_s = None
    parallel = None
    if jobs > 1:
        parallel_s, parallel = _best_of(
            repeats, lambda: run_batch(blocks, machine, verify=True,
                                       jobs=jobs,
                                       cache=PairwiseCache()))
    base_records = _records(baseline)
    identical = base_records == _records(cached) \
        and base_records == _records(run_for_info) \
        and (parallel is None or base_records == _records(parallel)) \
        and (columnar_run is None
             or base_records == _records(columnar_run))
    if not identical:
        raise ReproError(
            "bench invariant violated: cached/parallel/columnar runs "
            "produced different block records than the baseline")
    best_optimized = min(x for x in (cached_s, parallel_s, columnar_s)
                         if x is not None)
    counters = {c: getattr(baseline.build_stats, c)
                for c in _WORK_COUNTERS}
    return {
        "n_blocks": baseline.n_blocks,
        "n_instructions": baseline.n_instructions,
        "total_makespan": baseline.total_makespan,
        "total_original_makespan": baseline.total_original_makespan,
        "wasted_work": baseline.wasted_work,
        "build_counters": counters,
        "baseline_s": round(baseline_s, 6),
        "cached_s": round(cached_s, 6),
        "parallel_s": (round(parallel_s, 6)
                       if parallel_s is not None else None),
        "columnar_s": (round(columnar_s, 6)
                       if columnar_s is not None else None),
        "jobs": jobs,
        "schedules_identical": True,
        "reduction_fraction": round(1.0 - best_optimized / baseline_s, 4)
        if baseline_s > 0 else 0.0,
        "cache": probe.info(),
        "metrics": metrics.snapshot(),
    }


def run_bench(machine: MachineModel, machine_name: str = "generic",
              copies: int = 32, repeats: int = 3, jobs: int = 2,
              quick: bool = False, columnar: bool = False,
              tracer: Tracer | None = None,
              metrics: MetricsRegistry | None = None) -> dict:
    """Run the full benchmark and return the JSON-ready document.

    Args:
        machine: timing model instance.
        machine_name: its CLI name, recorded in the document.
        copies: straight-line body repetitions per kernel.
        repeats: timing runs per measurement (minimum is reported).
        jobs: worker processes for the parallel batch variant
            (``<= 1`` skips it).
        quick: shrink the workload and repeats for CI smoke runs.
        columnar: add a columnar batch variant to the identity-gated
            comparison (numpy required).  The fpppp-scale section runs
            whenever numpy is available, flag or no flag.
        tracer: optional :class:`~repro.obs.trace.Tracer`, attached to
            the batch probe run only (never a timed run).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            for the probe run; a private one is created when omitted,
            and its snapshot lands in ``doc["batch"]["metrics"]``
            either way (this is where the cache hit/miss totals the
            version-1 schema omitted now live).
    """
    if quick:
        copies = min(copies, 8)
        repeats = min(repeats, 2)
    blocks = bench_blocks(copies)
    doc = {
        "version": BENCH_VERSION,
        "machine": machine_name,
        "quick": quick,
        "workload": {
            "kernels": list(BENCH_KERNELS),
            "copies": copies,
            "window": "per-kernel body length",
            "n_blocks": len(blocks),
            "n_instructions": sum(len(b.instructions) for b in blocks),
        },
        "builders": _bench_builders(blocks, machine, repeats),
        "heuristics": _bench_heuristics(blocks, machine, repeats),
        "fpppp": _bench_fpppp(machine, repeats, quick),
        "batch": _bench_batch(blocks, machine, repeats, jobs,
                              tracer=tracer, metrics=metrics,
                              columnar=columnar),
        "timing_note": (
            "counters are exactly reproducible; *_s fields are wall "
            "times (minimum over repeats) and vary with the host"),
    }
    return doc


def write_bench(doc: dict, path: str) -> None:
    """Write the benchmark document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")


# -- the trajectory gate: compare two benchmark documents --------------------


def load_bench(path: str) -> dict:
    """Read one benchmark document.

    Raises:
        ReproError: unreadable file or non-object JSON.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read bench document {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise ReproError(f"bench document {path!r} is not JSON: {exc}")
    if not isinstance(doc, dict):
        raise ReproError(
            f"bench document {path!r} must be a JSON object")
    return doc


def _flatten_counters(doc: dict) -> dict:
    """Every deterministic (exactly-comparable) field, dotted-path keyed.

    These are the machine-independent work counters and identity
    gates; any cross-run difference is a real behavior change, never
    measurement noise.
    """
    out: dict[str, object] = {}
    for name, row in sorted(doc.get("builders", {}).items()):
        for counter in _WORK_COUNTERS + ("bitmap_words_touched",):
            out[f"builders.{name}.{counter}"] = row.get(counter)
    heur = doc.get("heuristics", {})
    out["heuristics.incremental.arcs_repaired"] = \
        heur.get("incremental", {}).get("arcs_repaired")
    workload = doc.get("workload", {})
    out["workload.n_blocks"] = workload.get("n_blocks")
    out["workload.n_instructions"] = workload.get("n_instructions")
    batch = doc.get("batch", {})
    for key in ("n_blocks", "n_instructions", "total_makespan",
                "total_original_makespan", "wasted_work",
                "schedules_identical"):
        out[f"batch.{key}"] = batch.get(key)
    for counter, value in sorted(
            (batch.get("build_counters") or {}).items()):
        out[f"batch.build_counters.{counter}"] = value
    fpppp = doc.get("fpppp", {})
    if fpppp.get("available"):
        for key in ("n_instructions", "target", "arcs", "table_probes",
                    "alias_checks", "makespan", "schedule_identical",
                    "predicted_full_n2_comparisons"):
            out[f"fpppp.{key}"] = fpppp.get(key)
        for i, point in enumerate(fpppp.get("n2_curve", [])):
            out[f"fpppp.n2_curve[{i}].n"] = point.get("n")
            out[f"fpppp.n2_curve[{i}].comparisons"] = \
                point.get("comparisons")
    return out


def _flatten_walls(doc: dict, prefix: str = "") -> dict:
    """Every wall-clock field (``*_s``), dotted-path keyed.

    The embedded metrics snapshot is skipped: its volatile section
    repeats wall clocks already gated here under their primary names.
    """
    out: dict[str, float] = {}
    for key in sorted(doc):
        value = doc[key]
        path = f"{prefix}{key}"
        if key == "metrics":
            continue
        if isinstance(value, dict):
            out.update(_flatten_walls(value, prefix=f"{path}."))
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, dict):
                    out.update(_flatten_walls(
                        item, prefix=f"{path}[{i}]."))
        elif key.endswith("_s") and isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def compare_bench(old: dict, new: dict,
                  wall_ratio: float = DEFAULT_WALL_RATIO) -> dict:
    """The noise-aware trajectory gate between two bench documents.

    Policy: deterministic counters must match *exactly*; wall-clock
    fields pass while ``new <= wall_ratio * old`` (fields below
    :data:`MIN_GATED_WALL_S` on the old side are never gated --
    nothing real is measurable there).  A field present on only one
    side is a mismatch, except the ``fpppp.*`` family, which tracks
    numpy availability (host configuration, not a regression).

    Args:
        old: the baseline document (the committed trajectory point).
        new: the candidate document.
        wall_ratio: maximum allowed ``new / old`` for wall fields.

    Returns:
        ``{"ok", "counter_mismatches", "wall_regressions",
        "skipped_walls", "compared_counters", "compared_walls"}``;
        ``ok`` is True when both violation lists are empty.

    Raises:
        ReproError: when the two documents are not comparable at all
            (different schema version, machine, quick flag, or
            workload shape) -- comparing those would gate noise
            against noise.
    """
    for field_name in ("version", "machine", "quick"):
        if old.get(field_name) != new.get(field_name):
            raise ReproError(
                f"bench documents are not comparable: {field_name!r} "
                f"differs ({old.get(field_name)!r} vs "
                f"{new.get(field_name)!r})")
    for field_name in ("kernels", "copies"):
        if old.get("workload", {}).get(field_name) \
                != new.get("workload", {}).get(field_name):
            raise ReproError(
                f"bench documents are not comparable: workload "
                f"{field_name!r} differs")

    old_counters = _flatten_counters(old)
    new_counters = _flatten_counters(new)
    counter_mismatches = []
    for path in sorted(set(old_counters) | set(new_counters)):
        if path.startswith("fpppp.") \
                and (path not in old_counters
                     or path not in new_counters):
            continue  # numpy availability differs; host config
        before = old_counters.get(path)
        after = new_counters.get(path)
        if before != after:
            counter_mismatches.append(
                {"field": path, "old": before, "new": after})

    old_walls = _flatten_walls(old)
    new_walls = _flatten_walls(new)
    wall_regressions = []
    skipped = []
    compared_walls = 0
    for path in sorted(set(old_walls) & set(new_walls)):
        before = old_walls[path]
        after = new_walls[path]
        if before < MIN_GATED_WALL_S:
            skipped.append(path)
            continue
        compared_walls += 1
        if after > wall_ratio * before:
            wall_regressions.append(
                {"field": path, "old": before, "new": after,
                 "ratio": round(after / before, 3),
                 "limit": wall_ratio})
    return {
        "ok": not counter_mismatches and not wall_regressions,
        "counter_mismatches": counter_mismatches,
        "wall_regressions": wall_regressions,
        "skipped_walls": skipped,
        "compared_counters": len(old_counters),
        "compared_walls": compared_walls,
    }


def render_compare(result: dict, old_path: str, new_path: str,
                   wall_ratio: float = DEFAULT_WALL_RATIO) -> str:
    """Human-readable comparison verdict (CLI output)."""
    lines = [f"! bench compare: {old_path} -> {new_path}",
             f"! policy: counters exact, wall clocks <= "
             f"{wall_ratio}x (sub-{int(MIN_GATED_WALL_S * 1000)}ms "
             f"walls ungated)"]
    for miss in result["counter_mismatches"]:
        lines.append(f"! COUNTER MISMATCH {miss['field']}: "
                     f"{miss['old']} -> {miss['new']}")
    for reg in result["wall_regressions"]:
        lines.append(f"! WALL REGRESSION {reg['field']}: "
                     f"{reg['old']:.6f}s -> {reg['new']:.6f}s "
                     f"({reg['ratio']}x > {reg['limit']}x)")
    lines.append(
        f"! compared {result['compared_counters']} counters "
        f"(exact) and {result['compared_walls']} wall fields "
        f"({len(result['skipped_walls'])} too small to gate): "
        f"{'OK' if result['ok'] else 'REGRESSION'}")
    return "\n".join(lines)
