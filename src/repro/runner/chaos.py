"""Chaos harness: seeded fault injection against the supervised pool.

The supervised pool's whole contract is that worker death is
recoverable and invisible to healthy blocks.  This harness *proves* it
on demand: it runs the deterministic bench workload twice -- once
clean and serial, once parallel with faults injected at seeded rates
-- and asserts that

* the batch completes (no abort, no lost blocks);
* every non-quarantined block's outcome record is byte-identical to
  the clean serial run's;
* quarantined blocks are exactly the poisoned ones (blocks configured
  to crash on *every* attempt), each carrying a reproducer;
* the journal accounts for every block:
  scheduled + degraded + quarantined = total.

Injected faults cover the real failure modes: ``os._exit`` (a worker
dying with an exit code, e.g. a fatal runtime error), SIGKILL (the
OOM killer), delays (slow blocks / scheduling jitter), and corrupted
task payloads (a poisoned queue entry).  Everything is seeded: the
same configuration injects the same faults into the same (block,
attempt) pairs every run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.machine.model import MachineModel
from repro.obs.metrics import MetricsRegistry
from repro.runner.batch import run_batch
from repro.runner.bench import bench_blocks
from repro.runner.supervisor import RetryPolicy

#: directive kinds plan() can return, in roll order
INJECTION_KINDS = ("exit", "kill", "delay", "corrupt", "alloc")


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection plan for the supervised pool.

    The pool calls :meth:`plan` once per (block, attempt) dispatch;
    the directive rides on the task message and is executed inside the
    worker (after the ``start`` heartbeat, so crash attribution is
    exercised exactly like a real mid-block death).

    Attributes:
        seed: injection seed; same seed, same faults.
        exit_rate: probability of the worker dying via ``os._exit``.
        kill_rate: probability of the worker dying via SIGKILL.
        delay_rate: probability of sleeping ``delay_s`` before the
            block runs (exercises backlog and hang-detector margins).
        corrupt_rate: probability of the task payload being replaced
            with garbage (the worker survives and reports an error).
        alloc_rate: probability of the worker allocating
            ``alloc_bytes`` before the block runs -- under a
            ``--worker-mem-mb`` ceiling this trips an attributed
            ``"oom"`` crash (a ``MemoryError``); without a ceiling it
            is a real, brief allocation.
        alloc_bytes: injected allocation size, bytes.
        delay_s: injected delay duration, seconds.
        max_injected_attempts: faults are only injected while a
            block's attempt number is below this, so every non-poisoned
            block succeeds within the default retry budget -- the
            quarantined set is then exactly ``poison``.
        poison: block indices that crash on *every* attempt,
            guaranteeing they exhaust the retry budget and exercise
            quarantine end to end.
    """

    seed: int = 0
    exit_rate: float = 0.0
    kill_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    alloc_rate: float = 0.0
    alloc_bytes: int = 1 << 28
    delay_s: float = 0.02
    max_injected_attempts: int = 2
    poison: frozenset[int] = frozenset()

    def plan(self, index: int, attempt: int) -> tuple | None:
        """The fault (or None) for this (block, attempt) dispatch."""
        if index in self.poison:
            return ("exit", 23)
        if attempt >= self.max_injected_attempts:
            return None
        rng = random.Random(
            f"repro-chaos:{self.seed}:{index}:{attempt}")
        roll = rng.random()
        for kind, rate in (("exit", self.exit_rate),
                           ("kill", self.kill_rate),
                           ("delay", self.delay_rate),
                           ("corrupt", self.corrupt_rate),
                           ("alloc", self.alloc_rate)):
            if roll < rate:
                if kind == "exit":
                    return ("exit", 11)
                if kind == "kill":
                    return ("kill",)
                if kind == "delay":
                    return ("delay", self.delay_s)
                if kind == "alloc":
                    return ("alloc", self.alloc_bytes)
                return ("corrupt",)
            roll -= rate
        return None


@dataclass
class ChaosReport:
    """What one chaos run observed and verified.

    Attributes:
        n_blocks: blocks in the workload.
        n_scheduled: non-degraded, non-quarantined outcomes.
        n_degraded: degraded (but not quarantined) outcomes.
        n_quarantined: quarantined outcomes.
        quarantined_indices: which blocks were quarantined.
        mismatches: per-block descriptions of any healthy-block
            outcome that differs from the clean serial run (must be
            empty).
        crashes / restarts / retries: supervisor statistics.
        crash_kinds: crash count by kind.
        wall_s: wall-clock seconds of the chaos batch.
    """

    n_blocks: int
    n_scheduled: int
    n_degraded: int
    n_quarantined: int
    quarantined_indices: list[int] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)
    crashes: int = 0
    restarts: int = 0
    retries: int = 0
    crash_kinds: dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def accounted(self) -> bool:
        """Does every block have exactly one verdict?"""
        return (self.n_scheduled + self.n_degraded
                + self.n_quarantined == self.n_blocks)

    @property
    def ok(self) -> bool:
        """Did the run complete with clean-run-identical healthy
        blocks and full accounting?"""
        return self.accounted and not self.mismatches


def run_chaos(machine: MachineModel,
              config: ChaosConfig,
              copies: int = 2,
              jobs: int = 4,
              expect_quarantined: frozenset[int] | None = None,
              quarantine_dir: str | None = None,
              metrics: MetricsRegistry | None = None,
              retry: RetryPolicy | None = None,
              task_timeout: float | None = 60.0,
              mem_limit_mb: int | None = None) -> ChaosReport:
    """Run the bench workload clean, then under chaos, and compare.

    Args:
        machine: timing model.
        config: the fault-injection plan.
        copies: bench-workload size multiplier
            (:func:`repro.runner.bench.bench_blocks`).
        jobs: supervised workers for the chaos run.
        expect_quarantined: when given, the quarantined set must equal
            it exactly (the CLI passes the poison set).
        quarantine_dir: directory for reproducer files.
        metrics: optional registry observing the chaos run.
        retry: retry policy for the chaos run (default: fast backoff
            so the harness does not spend its time sleeping).
        task_timeout: hang-detector margin for the chaos run.
        mem_limit_mb: opt-in per-worker address-space ceiling for the
            chaos run's workers (pairs with ``config.alloc_rate`` to
            exercise attributed OOM crashes).

    Returns:
        The populated :class:`ChaosReport`.

    Raises:
        ReproError: for ``jobs < 2`` (chaos needs the supervised
            pool).
    """
    if jobs < 2:
        raise ReproError(
            f"chaos runs need the supervised pool (jobs >= 2), "
            f"got jobs={jobs}")
    blocks = bench_blocks(copies)
    clean = run_batch(blocks, machine, jobs=1)
    baseline = {o.index: o.to_record() for o in clean.outcomes}

    if retry is None:
        retry = RetryPolicy(base_delay=0.01, max_delay=0.1,
                            seed=config.seed)
    t0 = time.perf_counter()
    chaotic = run_batch(
        blocks, machine, jobs=jobs, chaos=config, retry=retry,
        task_timeout=task_timeout, quarantine_dir=quarantine_dir,
        metrics=metrics, mem_limit_mb=mem_limit_mb)
    wall_s = time.perf_counter() - t0

    quarantined = [o for o in chaotic.outcomes if o.quarantined]
    healthy = [o for o in chaotic.outcomes if not o.quarantined]
    mismatches = []
    for outcome in healthy:
        expected = baseline.get(outcome.index)
        if expected != outcome.to_record():
            mismatches.append(
                f"block {outcome.index}: chaos outcome differs from "
                f"clean serial run")
    if len(chaotic.outcomes) != len(blocks):
        mismatches.append(
            f"lost blocks: {len(blocks) - len(chaotic.outcomes)} "
            f"of {len(blocks)} have no verdict")
    if expect_quarantined is not None:
        got = frozenset(o.index for o in quarantined)
        if got != expect_quarantined:
            mismatches.append(
                f"quarantined set {sorted(got)} != expected "
                f"{sorted(expect_quarantined)}")
    for outcome in quarantined:
        if quarantine_dir is not None and not outcome.reproducer:
            mismatches.append(
                f"block {outcome.index}: quarantined without a "
                f"reproducer file")

    stats = getattr(chaotic, "supervisor_stats", None)
    report = ChaosReport(
        n_blocks=len(blocks),
        n_scheduled=len([o for o in healthy if not o.degraded]),
        n_degraded=len([o for o in healthy if o.degraded]),
        n_quarantined=len(quarantined),
        quarantined_indices=sorted(o.index for o in quarantined),
        mismatches=mismatches,
        wall_s=wall_s)
    if stats is not None:
        report.crashes = stats.crashes
        report.restarts = stats.restarts
        report.retries = stats.retries
        report.crash_kinds = dict(sorted(stats.crash_kinds.items()))
    return report
