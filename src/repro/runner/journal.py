"""Checkpoint/resume journal for batch runs.

A run journal is a JSONL file: one header line identifying the run,
then one line per completed block, appended and flushed as the run
progresses.  Killing a journaled run loses at most the block in
flight; re-running with ``--resume`` replays the recorded outcomes for
completed blocks (bit-identically -- nothing is recomputed for them)
and continues from the first missing block.

The header carries a fingerprint of everything that determines the
per-block outcomes: a hash of the input text, the machine model, the
builder chain, the window, and the scheduling options.  Resuming
against a journal whose fingerprint does not match the current
invocation raises :class:`~repro.errors.JournalError` instead of
silently splicing two different runs together.

A truncated final line (the in-flight block of a killed run) is
ignored on load; everything before it is trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import IO

from repro.errors import JournalError
from repro.runner.fallback import BlockOutcome

_VERSION = 1


def run_fingerprint(source_text: str, machine: str,
                    chain: list[str] | tuple[str, ...],
                    window: int | None = None,
                    **options: object) -> dict:
    """The identity of a run, for resume compatibility checks.

    Args:
        source_text: the input program text (hashed, not stored).
        machine: machine model name.
        chain: builder chain names in order.
        window: instruction window, if any.
        options: any further outcome-determining knobs (verify flag,
            heuristic driver, ...).
    """
    return {
        "source_sha256": hashlib.sha256(
            source_text.encode("utf-8")).hexdigest(),
        "machine": machine,
        "chain": list(chain),
        "window": window,
        **{k: options[k] for k in sorted(options)},
    }


class RunJournal:
    """Append-only JSONL journal of per-block outcomes.

    Use :meth:`open_fresh` to start a new journal (truncating any
    previous file) or :meth:`open_resume` to load completed outcomes
    and continue appending.
    """

    def __init__(self, path: str, fingerprint: dict,
                 completed: dict[int, BlockOutcome],
                 handle: IO[str]) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.completed = completed
        self._handle = handle

    @classmethod
    def open_fresh(cls, path: str, fingerprint: dict) -> "RunJournal":
        """Start a new journal, truncating an existing file."""
        handle = open(path, "w", encoding="utf-8")
        handle.write(json.dumps(
            {"type": "header", "version": _VERSION,
             "fingerprint": fingerprint}) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, fingerprint, {}, handle)

    @classmethod
    def open_resume(cls, path: str, fingerprint: dict) -> "RunJournal":
        """Load a journal and continue appending to it.

        Raises:
            JournalError: when the file is missing, the header is
                unreadable, or the fingerprint does not match.
        """
        header, completed = cls.load(path)
        if header["fingerprint"] != fingerprint:
            theirs = header["fingerprint"]
            differing = sorted(
                k for k in set(theirs) | set(fingerprint)
                if theirs.get(k) != fingerprint.get(k))
            raise JournalError(
                f"journal {path!r} records a different run "
                f"(mismatched: {', '.join(differing)}); "
                f"re-run without --resume to start over")
        handle = open(path, "a", encoding="utf-8")
        return cls(path, fingerprint, completed, handle)

    @staticmethod
    def load(path: str) -> tuple[dict, dict[int, BlockOutcome]]:
        """Read a journal: ``(header, {block_index: outcome})``.

        A corrupt or truncated *trailing* line is ignored (the block
        that was in flight when the run died; whitespace-only lines
        after it are part of the same torn write).  Corruption
        anywhere else -- an unparseable interior line, or a blank
        interior line where a record should be -- raises a typed
        :class:`~repro.errors.JournalError` instead of silently
        skipping blocks on resume.

        Raises:
            JournalError: on a missing file, bad header, or mid-file
                corruption.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise JournalError(f"cannot read journal {path!r}: {exc}")
        if not lines:
            raise JournalError(f"journal {path!r} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal {path!r} has an unreadable header: {exc}")
        if header.get("type") != "header" \
                or header.get("version") != _VERSION \
                or "fingerprint" not in header:
            raise JournalError(
                f"journal {path!r} is not a version-{_VERSION} "
                f"run journal")
        completed: dict[int, BlockOutcome] = {}
        body = lines[1:]
        # The only ignorable corruption is the torn final write of a
        # killed run: the last *content* line, with nothing but
        # whitespace after it.
        last_content = max(
            (i for i, text in enumerate(body) if text.strip()),
            default=-1)
        for offset, line in enumerate(body):
            lineno = offset + 2
            if not line.strip():
                if offset < last_content:
                    raise JournalError(
                        f"journal {path!r} is corrupt at line "
                        f"{lineno}: blank interior line where a "
                        f"block record should be; resuming would "
                        f"silently skip blocks")
                continue  # whitespace tail of a torn final write
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if offset == last_content:
                    break  # torn final write of a killed run
                raise JournalError(
                    f"journal {path!r} is corrupt at line {lineno}: "
                    f"unparseable non-trailing record; resuming "
                    f"would silently skip blocks")
            if record.get("type") not in ("block", "quarantined"):
                raise JournalError(
                    f"journal {path!r} has an unknown record type "
                    f"{record.get('type')!r} at line {lineno}")
            try:
                outcome = BlockOutcome.from_record(record)
            except KeyError as exc:
                raise JournalError(
                    f"journal {path!r} block record at line {lineno} "
                    f"is missing field {exc}")
            completed[outcome.index] = outcome
        return header, completed

    def append(self, outcome: BlockOutcome) -> None:
        """Record one completed block (flushed to disk immediately)."""
        self._handle.write(
            json.dumps(outcome.to_record(volatile=True)) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.completed[outcome.index] = outcome

    def close(self) -> None:
        """Close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
