"""Checkpoint/resume journal for batch runs.

A run journal is a JSONL file: one header line identifying the run,
then one line per completed block, appended and flushed as the run
progresses.  Killing a journaled run loses at most the block in
flight; re-running with ``--resume`` replays the recorded outcomes for
completed blocks (bit-identically -- nothing is recomputed for them)
and continues from the first missing block.

The header carries a fingerprint of everything that determines the
per-block outcomes: a hash of the input text, the machine model, the
builder chain, the window, and the scheduling options.  Resuming
against a journal whose fingerprint does not match the current
invocation raises :class:`~repro.errors.JournalError` instead of
silently splicing two different runs together.

Format v2 wraps every record in a length-prefixed CRC32 frame::

    ~2 <payload-bytes> <crc32-hex> <payload-json>

so damage is *classified*, not guessed at: a torn final write of a
killed run (incomplete frame on the last content line) is tolerated
and repairable by truncation, while a mid-file CRC mismatch -- a
complete frame whose bytes changed after the fsync -- is reported as
corruption and never silently skipped.  The reader accepts v1 plain
JSON lines and v2 frames side by side, so old journals stay readable
and mixed files (a v1 journal resumed by a v2 writer) are fine.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from typing import IO

from repro.errors import JournalError
from repro.runner.fallback import BlockOutcome

_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Marker that opens every v2 frame line.  JSON objects start with
#: ``{``, so a line starting with this prefix is unambiguously framed.
FRAME_PREFIX = "~2 "

# -- damage taxonomy (shared with ``repro fsck``) ---------------------------

#: incomplete final write of a killed process; repairable by truncation
DAMAGE_TORN_TAIL = "torn-tail"
#: frame shorter than its declared payload length (non-trailing)
DAMAGE_TRUNCATED_FRAME = "truncated-frame"
#: complete frame whose payload bytes no longer match their CRC32
DAMAGE_CRC_MISMATCH = "crc-mismatch"
#: line that is neither a valid frame nor parseable v1 JSON
DAMAGE_UNPARSEABLE = "unparseable"
#: blank line between records, where a record should be
DAMAGE_BLANK_INTERIOR = "blank-interior"


@dataclass(frozen=True)
class LineDamage:
    """One classified defect found while scanning a journal/WAL.

    Attributes:
        lineno: 1-based line number of the damaged line.
        kind: one of the ``DAMAGE_*`` constants.
        detail: human-readable description of what was found.
        repairable: True when dropping the line (and everything after
            it) is safe -- only ever the torn tail of a killed run.
    """

    lineno: int
    kind: str
    detail: str
    repairable: bool


def frame_record(record: dict) -> str:
    """Encode one record as a v2 CRC32 frame line (no newline)."""
    payload = json.dumps(record)
    data = payload.encode("utf-8")
    return f"{FRAME_PREFIX}{len(data)} {zlib.crc32(data):08x} {payload}"


def parse_record_line(line: str) -> tuple[dict | None, str | None, str]:
    """Decode one journal line, v2 frame or v1 plain JSON.

    Returns:
        ``(record, None, "")`` on success, else
        ``(None, damage_kind, detail)`` with ``damage_kind`` one of
        the ``DAMAGE_*`` constants (never ``DAMAGE_TORN_TAIL`` --
        promotion to torn-tail is positional, the caller's job).
    """
    if line.startswith(FRAME_PREFIX):
        body = line[len(FRAME_PREFIX):]
        parts = body.split(" ", 2)
        if len(parts) < 3:
            return (None, DAMAGE_TRUNCATED_FRAME,
                    "frame header cut short (missing length/crc/payload)")
        length_text, crc_text, payload = parts
        try:
            declared = int(length_text)
            expected_crc = int(crc_text, 16)
        except ValueError:
            return (None, DAMAGE_TRUNCATED_FRAME,
                    f"unreadable frame header {length_text!r} {crc_text!r}")
        data = payload.encode("utf-8")
        if len(data) < declared:
            return (None, DAMAGE_TRUNCATED_FRAME,
                    f"payload is {len(data)} bytes of a declared {declared}")
        if len(data) > declared:
            return (None, DAMAGE_TRUNCATED_FRAME,
                    f"payload is {len(data)} bytes, {declared} declared "
                    f"(bytes appended to a complete frame)")
        actual_crc = zlib.crc32(data)
        if actual_crc != expected_crc:
            return (None, DAMAGE_CRC_MISMATCH,
                    f"crc32 {actual_crc:08x} != recorded {expected_crc:08x}")
        try:
            record = json.loads(payload)
        except json.JSONDecodeError as exc:
            return (None, DAMAGE_UNPARSEABLE,
                    f"framed payload is not JSON: {exc}")
        if not isinstance(record, dict):
            return (None, DAMAGE_UNPARSEABLE,
                    f"framed payload is not an object: {type(record).__name__}")
        return (record, None, "")
    # v1: a bare JSON object per line.
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        return (None, DAMAGE_UNPARSEABLE, f"not JSON: {exc}")
    if not isinstance(record, dict):
        return (None, DAMAGE_UNPARSEABLE,
                f"record is not an object: {type(record).__name__}")
    return (record, None, "")


def scan_lines(lines: list[str], first_lineno: int = 1,
               ) -> tuple[list[tuple[int, dict]], list[LineDamage]]:
    """Classify every line: parsed records plus a damage list.

    Never raises -- this is the forgiving scan ``repro fsck`` and the
    WAL recovery path share.  Damage on the last *content* line that
    looks like an incomplete write (truncated frame, unparseable
    fragment) is promoted to the repairable :data:`DAMAGE_TORN_TAIL`;
    a complete frame with a CRC mismatch is never torn-tail, even at
    the end -- the write finished and the bytes changed afterwards.
    Whitespace-only lines after the last content line belong to the
    same torn write and are ignored.
    """
    records: list[tuple[int, dict]] = []
    damage: list[LineDamage] = []
    last_content = max(
        (i for i, text in enumerate(lines) if text.strip()), default=-1)
    for offset, line in enumerate(lines):
        lineno = first_lineno + offset
        if not line.strip():
            if offset < last_content:
                damage.append(LineDamage(
                    lineno=lineno, kind=DAMAGE_BLANK_INTERIOR,
                    detail="blank interior line where a record should be",
                    repairable=False))
            continue
        record, kind, detail = parse_record_line(line)
        if record is not None:
            records.append((lineno, record))
            continue
        tail = offset == last_content
        if tail and kind in (DAMAGE_TRUNCATED_FRAME, DAMAGE_UNPARSEABLE):
            damage.append(LineDamage(
                lineno=lineno, kind=DAMAGE_TORN_TAIL,
                detail=f"torn final write ({detail})", repairable=True))
        else:
            damage.append(LineDamage(
                lineno=lineno, kind=kind or DAMAGE_UNPARSEABLE,
                detail=detail, repairable=False))
    return records, damage


def read_records(path: str) -> tuple[dict, list[tuple[int, dict]]]:
    """Hardened read shared by resume, reporting, and the WAL.

    Returns ``(header, [(lineno, record), ...])`` with the header
    validated only as *being* a header (any supported version); the
    torn final write of a killed run is tolerated and dropped, every
    other classified defect raises.

    Raises:
        JournalError: on a missing file, bad header, or any
            non-trailing damage (CRC mismatch, truncated frame,
            unparseable or blank interior line).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path!r}: {exc}")
    if not lines:
        raise JournalError(f"journal {path!r} is empty")
    header, kind, detail = parse_record_line(lines[0])
    if header is None:
        raise JournalError(
            f"journal {path!r} has an unreadable header "
            f"({kind}: {detail})")
    if header.get("type") != "header":
        raise JournalError(
            f"{path!r} does not look like a run journal "
            f"(missing header line)")
    if header.get("version") not in _SUPPORTED_VERSIONS:
        raise JournalError(
            f"journal {path!r} has unsupported version "
            f"{header.get('version')!r} (supported: "
            f"{', '.join(str(v) for v in _SUPPORTED_VERSIONS)})")
    records, damage = scan_lines(lines[1:], first_lineno=2)
    for defect in damage:
        if defect.kind == DAMAGE_TORN_TAIL:
            continue  # torn final write of a killed run
        raise JournalError(
            f"journal {path!r} is corrupt at line {defect.lineno}: "
            f"{defect.kind}: {defect.detail}; resuming would "
            f"silently skip blocks")
    return header, records


def write_snapshot(path: str, payload: dict) -> None:
    """Atomically persist a warm-state checkpoint.

    The document embeds a CRC32 of the payload and lands via
    tmp + fsync + rename (+ directory fsync), so a reader sees either
    the previous complete snapshot or the new complete snapshot --
    never a torn mix.
    """
    body = json.dumps(payload)
    document = json.dumps({
        "type": "snapshot",
        "version": _VERSION,
        "crc32": f"{zlib.crc32(body.encode('utf-8')):08x}",
        "payload": payload,
    })
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(document + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_snapshot(path: str) -> dict:
    """Load a snapshot written by :func:`write_snapshot`.

    Raises:
        JournalError: when the file is unreadable, not a snapshot, or
            its payload no longer matches the embedded CRC32.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise JournalError(f"cannot read snapshot {path!r}: {exc}")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JournalError(
            f"snapshot {path!r} is not parseable JSON: {exc}")
    if not isinstance(document, dict) \
            or document.get("type") != "snapshot":
        raise JournalError(f"{path!r} is not a snapshot file")
    payload = document.get("payload")
    body = json.dumps(payload)
    actual = f"{zlib.crc32(body.encode('utf-8')):08x}"
    if actual != document.get("crc32"):
        raise JournalError(
            f"snapshot {path!r} fails its CRC32 check "
            f"({actual} != recorded {document.get('crc32')!r})")
    return payload


def run_fingerprint(source_text: str, machine: str,
                    chain: list[str] | tuple[str, ...],
                    window: int | None = None,
                    **options: object) -> dict:
    """The identity of a run, for resume compatibility checks.

    Args:
        source_text: the input program text (hashed, not stored).
        machine: machine model name.
        chain: builder chain names in order.
        window: instruction window, if any.
        options: any further outcome-determining knobs (verify flag,
            heuristic driver, ...).
    """
    return {
        "source_sha256": hashlib.sha256(
            source_text.encode("utf-8")).hexdigest(),
        "machine": machine,
        "chain": list(chain),
        "window": window,
        **{k: options[k] for k in sorted(options)},
    }


class RunJournal:
    """Append-only JSONL journal of per-block outcomes.

    Use :meth:`open_fresh` to start a new journal (truncating any
    previous file) or :meth:`open_resume` to load completed outcomes
    and continue appending.  Writes are v2 CRC frames; reads accept v1
    and v2 interchangeably.
    """

    def __init__(self, path: str, fingerprint: dict,
                 completed: dict[int, BlockOutcome],
                 handle: IO[str]) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.completed = completed
        self._handle = handle

    @classmethod
    def open_fresh(cls, path: str, fingerprint: dict) -> "RunJournal":
        """Start a new journal, truncating an existing file."""
        handle = open(path, "w", encoding="utf-8")
        handle.write(frame_record(
            {"type": "header", "version": _VERSION,
             "fingerprint": fingerprint}) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, fingerprint, {}, handle)

    @classmethod
    def open_resume(cls, path: str, fingerprint: dict) -> "RunJournal":
        """Load a journal and continue appending to it.

        Raises:
            JournalError: when the file is missing, the header is
                unreadable, or the fingerprint does not match.
        """
        header, completed = cls.load(path)
        if header["fingerprint"] != fingerprint:
            theirs = header["fingerprint"]
            differing = sorted(
                k for k in set(theirs) | set(fingerprint)
                if theirs.get(k) != fingerprint.get(k))
            raise JournalError(
                f"journal {path!r} records a different run "
                f"(mismatched: {', '.join(differing)}); "
                f"re-run without --resume to start over")
        handle = open(path, "a", encoding="utf-8")
        return cls(path, fingerprint, completed, handle)

    @staticmethod
    def load(path: str) -> tuple[dict, dict[int, BlockOutcome]]:
        """Read a journal: ``(header, {block_index: outcome})``.

        A torn *trailing* write is ignored (the block that was in
        flight when the run died); corruption anywhere else -- a CRC
        mismatch, a truncated frame, an unparseable interior line, or
        a blank interior line where a record should be -- raises a
        typed :class:`~repro.errors.JournalError` instead of silently
        skipping blocks on resume.

        Raises:
            JournalError: on a missing file, bad header, or mid-file
                corruption.
        """
        header, entries = read_records(path)
        if "fingerprint" not in header:
            raise JournalError(
                f"journal {path!r} header carries no fingerprint")
        completed: dict[int, BlockOutcome] = {}
        for lineno, record in entries:
            if record.get("type") not in ("block", "quarantined"):
                raise JournalError(
                    f"journal {path!r} has an unknown record type "
                    f"{record.get('type')!r} at line {lineno}")
            try:
                outcome = BlockOutcome.from_record(record)
            except KeyError as exc:
                raise JournalError(
                    f"journal {path!r} block record at line {lineno} "
                    f"is missing field {exc}")
            completed[outcome.index] = outcome
        return header, completed

    def append(self, outcome: BlockOutcome) -> None:
        """Record one completed block (flushed to disk immediately)."""
        self._handle.write(
            frame_record(outcome.to_record(volatile=True)) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.completed[outcome.index] = outcome

    def close(self) -> None:
        """Close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
