"""Per-block builder fallback chains.

One bad block must not cost the run.  A block attempt can fail in any
stage -- construction (a builder bug, a work-budget trip), heuristics,
scheduling, verification, or the wall-clock watchdog -- and each
failure is a per-block :class:`~repro.errors.ReproError`.  The chain
retries the block with the next configured builder before degrading to
the original instruction order, and records *every* attempt so the
failure report shows exactly which builders were tried and why each
one was rejected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders import (
    BitmapBackwardBuilder,
    CompareAllBuilder,
    LandskovBuilder,
    PairwiseCache,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.dag.builders.base import BuildOutcome, DagBuilder
from repro.errors import BlockTimeout, ReproError
from repro.heuristics.passes import backward_pass, backward_pass_levels
from repro.machine.model import MachineModel
from repro.obs.metrics import (
    MetricsRegistry,
    record_block_wall,
    record_build,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.pipeline import SECTION6_PRIORITY
from repro.runner.watchdog import Budget, BudgetedStats, run_with_watchdog
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.timing import simulate, verify_order
from repro.verify.checker import degraded_timing, verify_schedule

#: builder name -> class, as exposed on the CLI
BUILDER_CLASSES: dict[str, type[DagBuilder]] = {
    "n2": CompareAllBuilder,
    "landskov": LandskovBuilder,
    "table-forward": TableForwardBuilder,
    "table-backward": TableBackwardBuilder,
    "bitmap-backward": BitmapBackwardBuilder,
}

#: the default chain: fastest exact builder first, the ``n**2``
#: reference last (it tolerates anything but costs the most work)
DEFAULT_CHAIN = ("bitmap-backward", "table-forward", "n2")


def resolve_chain(names: Sequence[str],
                  machine: MachineModel,
                  cache: PairwiseCache | None = None,
                  columnar: bool = False) -> list[
                      tuple[str, Callable[[], DagBuilder]]]:
    """Turn builder names into (name, factory) pairs.

    Args:
        names: builder names in fallback order.
        machine: timing model handed to every builder.
        cache: optional shared :class:`~repro.dag.builders.cache.\
PairwiseCache`; when set, every builder the chain constructs consults
            it, so a retry after a mid-chain failure replays the
            earlier builder's dependence work instead of redoing it.
        columnar: substitute the structure-of-arrays fast path
            (:class:`~repro.dag.columnar.builders.\
ColumnarTableForwardBuilder`) for ``table-forward`` chain entries.
            Outcomes are byte-identical either way; chain entry names
            are preserved so journals and reports read the same.

    Raises:
        ReproError: for an unknown builder name or an empty chain, or
            when ``columnar`` is requested without numpy installed.
    """
    if not names:
        raise ReproError("builder chain is empty")
    overrides: dict[str, type[DagBuilder]] = {}
    if columnar:
        from repro.dag.columnar import require_numpy

        require_numpy()
        from repro.dag.columnar.builders import ColumnarTableForwardBuilder

        overrides["table-forward"] = ColumnarTableForwardBuilder
    chain = []
    for name in names:
        cls = overrides.get(name) or BUILDER_CLASSES.get(name)
        if cls is None:
            raise ReproError(
                f"unknown builder {name!r} in chain; "
                f"known: {sorted(BUILDER_CLASSES)}")
        chain.append(
            (name, lambda cls=cls: cls(machine, cache=cache)))
    return chain


@dataclass(frozen=True)
class Attempt:
    """One builder attempt on one block.

    Attributes:
        builder: chain entry name ("original-order" for the terminal
            degradation step).
        stage: where the attempt ended ("build", "heuristics",
            "schedule", "verify", "timeout", or "ok").
        error: the stringified error, None on success.
        work: budgeted construction work units this attempt spent
            (comparisons + table probes + alias checks + bitmap ops),
            or None when the attempt ran without a counting stats
            object.  Failed attempts keep their spent work here --
            each attempt counts against a *fresh* budget, so earlier
            failures neither double-charge a later attempt nor vanish
            from the accounting.
    """

    builder: str
    stage: str
    error: str | None = None
    work: int | None = None

    def to_record(self) -> dict:
        """JSON-serializable form (journal line fragment)."""
        return {"builder": self.builder, "stage": self.stage,
                "error": self.error, "work": self.work}

    @staticmethod
    def from_record(record: dict) -> "Attempt":
        return Attempt(record["builder"], record["stage"],
                       record.get("error"), record.get("work"))


@dataclass
class BlockOutcome:
    """The resilient runner's verdict on one block.

    Attributes:
        index: block index within the program.
        label: block label, if any.
        builder: name of the builder that produced the accepted
            schedule, or None when the block degraded to its original
            order.
        order: accepted schedule as block-relative instruction
            positions (the identity permutation when degraded).
        makespan: makespan of the accepted schedule.
        original_makespan: makespan of the original order.
        attempts: every attempt, in chain order (the last one is the
            accepted attempt or the degradation record).
        live: True when this outcome was computed in this run, False
            when it was replayed from a journal (replayed outcomes
            carry no DAG/work statistics).
        dag_stats_outcome: the accepted attempt's build outcome (DAG +
            work counters), present only on live, non-degraded
            outcomes.
        quarantined: True when the supervised pool exhausted the
            block's retry budget (repeated worker crashes or poisoned
            payloads) and excluded it from further scheduling.  A
            quarantined outcome is always degraded (identity order)
            and is journaled as a ``quarantined`` record so resumes
            replay it without re-triggering the crash.
        reproducer: path of the minimized reproducer ``.s`` file the
            quarantine step wrote, if any.
        wall_s: wall-clock seconds this block took end to end (all
            attempts included), or None on outcomes replayed from a
            journal written before the field existed.  Volatile: it is
            journaled (``repro report`` reconstructs Table 5-style
            timings from it) but excluded from the deterministic
            record used for run-identity comparisons.
    """

    index: int
    label: str | None
    builder: str | None
    order: list[int]
    makespan: int
    original_makespan: int
    attempts: list[Attempt] = field(default_factory=list)
    live: bool = True
    dag_stats_outcome: BuildOutcome | None = None
    wall_s: float | None = None
    quarantined: bool = False
    reproducer: str | None = None

    @property
    def degraded(self) -> bool:
        """True when no chain builder produced an accepted schedule."""
        return self.builder is None

    @property
    def n_attempts(self) -> int:
        """Builder attempts this block took (degradation included)."""
        return len(self.attempts)

    def to_record(self, volatile: bool = False) -> dict:
        """JSON-serializable journal line (statistics-bearing fields
        only; the DAG itself is recomputable from the input).

        Args:
            volatile: include host-dependent fields (``wall_s``).  The
                journal passes True; determinism comparisons (bench,
                jobs-N-vs-1) use the default deterministic record.
        """
        record = {
            "type": "quarantined" if self.quarantined else "block",
            "index": self.index,
            "label": self.label,
            "builder": self.builder,
            "order": list(self.order),
            "makespan": self.makespan,
            "original_makespan": self.original_makespan,
            "n_attempts": len(self.attempts),
            "attempts": [a.to_record() for a in self.attempts],
        }
        if self.quarantined:
            record["reproducer"] = self.reproducer
        if volatile:
            record["wall_s"] = self.wall_s
        return record

    @staticmethod
    def from_record(record: dict) -> "BlockOutcome":
        return BlockOutcome(
            index=record["index"],
            label=record.get("label"),
            builder=record.get("builder"),
            order=list(record["order"]),
            makespan=record["makespan"],
            original_makespan=record["original_makespan"],
            attempts=[Attempt.from_record(a)
                      for a in record.get("attempts", [])],
            live=False,
            wall_s=record.get("wall_s"),
            quarantined=record.get("type") == "quarantined",
            reproducer=record.get("reproducer"))


def schedule_block_resilient(
        block: BasicBlock,
        machine: MachineModel,
        chain: Sequence[tuple[str, Callable[[], DagBuilder]]],
        budget: Budget | None = None,
        priority: Callable | None = None,
        heuristic_driver: str = "reverse_walk",
        verify: bool = False,
        cache: PairwiseCache | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        breaker: object | None = None,
        skip_builders: Sequence[str] = (),
        on_attempt: Callable[[str], None] | None = None,
        columnar: bool = False) -> BlockOutcome:
    """Schedule one block, falling back through the builder chain.

    Each chain entry gets a full attempt -- construction (under the
    work budget), intermediate heuristic pass, forward scheduling, and
    optional independent verification -- wrapped in the wall-clock
    watchdog.  The first attempt that survives is accepted; if none
    does, the block degrades to its original order (always correct,
    never faster) with every failure recorded.

    Args:
        block: the basic block (non-empty).
        machine: timing model.
        chain: (name, factory) pairs from :func:`resolve_chain`; tests
            may inject arbitrary factories (e.g. a sleeping builder).
        budget: per-attempt watchdog limits (None = unlimited).
        priority: scheduling priority (default: section 6 winnowing).
        heuristic_driver: "reverse_walk" or "levels".
        verify: independently verify the accepted schedule with
            :func:`repro.verify.checker.verify_schedule`.
        cache: optional pairwise-dependence cache shared across
            attempts (and with the verifier), so a fallback retry
            replays the failed builder's dependence work.
        tracer: optional :class:`~repro.obs.trace.Tracer`; records a
            ``block`` span with one ``attempt`` span (and
            build/heuristics/schedule stage spans) per chain entry,
            plus cache hit/miss, budget-trip, fallback, and
            degradation events.  Observation only -- outcomes are
            byte-identical with tracing on or off.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            records the accepted attempt's Table 4/5 work counters
            (per builder) and the block's wall-clock spend.  Outcome-
            level aggregates (attempt/degradation counts, makespans)
            are recorded by :func:`repro.runner.batch.run_batch`,
            which also covers journal-replayed blocks.
        breaker: optional per-builder circuit breaker
            (:class:`~repro.runner.supervisor.CircuitBreaker`).  A
            chain entry whose breaker is open is skipped (recorded as
            a ``breaker-open`` attempt); watchdog timeouts feed the
            breaker's failure count and accepted attempts close it.
            Outcome-changing by design, so opt-in.
        skip_builders: chain entries to skip up front, recorded as
            ``breaker-open`` attempts -- how the supervised pool
            forwards its parent-side breaker verdicts into a worker
            process that cannot share the breaker object.
        on_attempt: per-attempt heartbeat callback invoked with the
            chain entry's name just before the attempt starts.  The
            supervised pool uses it to attribute a worker crash to the
            builder that was live when the process died.
        columnar: run the intermediate heuristic pass through the
            vectorized driver (:func:`~repro.dag.columnar.passes.\
columnar_backward_pass`).  Annotation-identical to both object
            drivers, so the accepted schedules are byte-identical.

    Returns:
        The accepted or degraded :class:`BlockOutcome`.
    """
    if priority is None:
        priority = SECTION6_PRIORITY
    tracer = tracer or NULL_TRACER
    if columnar:
        from repro.dag.columnar import require_numpy

        require_numpy()
        from repro.dag.columnar.passes import columnar_backward_pass

        driver = columnar_backward_pass
    else:
        driver = (backward_pass_levels if heuristic_driver == "levels"
                  else backward_pass)
    label = block.label if block.label else str(block.index)
    attempts: list[Attempt] = []
    t_start = time.perf_counter()

    def attempt(name: str, factory: Callable[[], DagBuilder],
                stats: BudgetedStats, atracer: Tracer) -> tuple:
        with atracer.span("attempt", builder=name) as span_attrs:
            stage = "build"
            try:
                builder = factory()
                builder_cache = getattr(builder, "cache", None)
                hits_before = (builder_cache.hits
                               if builder_cache is not None else None)
                with atracer.span("build", builder=name):
                    outcome = builder.build(block, stats=stats)
                if hits_before is not None:
                    atracer.event(
                        "cache-hit" if builder_cache.hits > hits_before
                        else "cache-miss", builder=name)
                stage = "heuristics"
                with atracer.span("heuristics",
                                  driver=heuristic_driver):
                    driver(outcome.dag, require_est=False)
                stage = "schedule"
                with atracer.span("schedule"):
                    sched = schedule_forward(outcome.dag, machine,
                                             priority)
                    verify_order(sched.order, outcome.dag)
                    original = simulate(
                        list(outcome.dag.real_nodes()), machine)
                if verify:
                    stage = "verify"
                    verify_schedule(
                        block, sched.order, machine,
                        claimed_issue_times=sched.timing.issue_times,
                        approach=name, cache=cache, tracer=atracer,
                        metrics=metrics).raise_if_failed()
                span_attrs["stage"] = "ok"
                return builder, outcome, sched, original
            except BlockTimeout:
                span_attrs["stage"] = "timeout"
                raise
            except ReproError as exc:
                span_attrs["stage"] = stage
                exc.stage = stage  # type: ignore[attr-defined]
                raise

    def finish(outcome: BlockOutcome) -> BlockOutcome:
        outcome.wall_s = time.perf_counter() - t_start
        record_block_wall(metrics, outcome.wall_s)
        return outcome

    with tracer.span("block", index=block.index, label=block.label,
                     size=len(block.instructions)) as block_attrs:
        for name, factory in chain:
            if name in skip_builders or (
                    breaker is not None and not breaker.allow(name)):
                tracer.event("breaker-skip", builder=name)
                attempts.append(Attempt(name, "breaker-open",
                                        "circuit breaker open"))
                continue
            if on_attempt is not None:
                on_attempt(name)
            # A fresh budgeted counter per attempt: a failed attempt's
            # spent work must neither count against the next builder's
            # budget (double-charging) nor disappear -- it is
            # snapshotted onto the Attempt record below.
            stats = BudgetedStats(
                budget.max_work if budget is not None else None,
                block=label)
            # Under a wall-clock budget the attempt runs on a watchdog
            # thread that may outlive its deadline; give it a private
            # tracer and absorb only completed attempts, so an
            # abandoned thread can never corrupt the main trace.
            threaded = (budget is not None
                        and budget.wall_clock is not None)
            atracer = (Tracer(worker=tracer.worker)
                       if tracer and threaded else tracer)
            try:
                try:
                    builder, outcome, sched, original = \
                        run_with_watchdog(
                            lambda: attempt(name, factory, stats,
                                            atracer),
                            budget, block=label)
                finally:
                    if atracer is not tracer and not isinstance(
                            atracer, NullTracer):
                        tracer.absorb(list(atracer.entries),
                                      parent=tracer.current_span)
            except BlockTimeout as exc:
                tracer.event("budget-trip", builder=name,
                             budget=getattr(exc, "budget", None),
                             limit=getattr(exc, "limit", None))
                attempts.append(Attempt(name, "timeout", str(exc),
                                        work=stats.work))
                if breaker is not None:
                    breaker.record_failure(name)
                continue
            except ReproError as exc:
                tracer.event("fallback", builder=name,
                             stage=getattr(exc, "stage", "build"))
                attempts.append(Attempt(
                    name, getattr(exc, "stage", "build"), str(exc),
                    work=stats.work))
                continue
            attempts.append(Attempt(name, "ok", work=stats.work))
            if breaker is not None:
                breaker.record_success(name)
            rmap = getattr(builder, "reachability", None)
            record_build(metrics, name, stats,
                         rmap.words_touched if rmap is not None else 0)
            block_attrs.update(builder=name, degraded=False,
                               makespan=sched.timing.makespan)
            return finish(BlockOutcome(
                index=block.index, label=block.label, builder=name,
                order=[node.id for node in sched.order],
                makespan=sched.timing.makespan,
                original_makespan=original.makespan,
                attempts=attempts, dag_stats_outcome=outcome))

        # Terminal degradation: the original order is always a correct
        # schedule of itself.
        fallback = degraded_timing(block, machine)
        attempts.append(Attempt("original-order", "ok"))
        tracer.event("degraded", index=block.index)
        block_attrs.update(builder=None, degraded=True,
                           makespan=fallback)
        return finish(BlockOutcome(
            index=block.index, label=block.label, builder=None,
            order=list(range(len(block.instructions))),
            makespan=fallback, original_makespan=fallback,
            attempts=attempts))
