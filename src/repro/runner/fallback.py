"""Per-block builder fallback chains.

One bad block must not cost the run.  A block attempt can fail in any
stage -- construction (a builder bug, a work-budget trip), heuristics,
scheduling, verification, or the wall-clock watchdog -- and each
failure is a per-block :class:`~repro.errors.ReproError`.  The chain
retries the block with the next configured builder before degrading to
the original instruction order, and records *every* attempt so the
failure report shows exactly which builders were tried and why each
one was rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders import (
    BitmapBackwardBuilder,
    CompareAllBuilder,
    LandskovBuilder,
    PairwiseCache,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.dag.builders.base import BuildOutcome, DagBuilder
from repro.errors import BlockTimeout, ReproError
from repro.heuristics.passes import backward_pass, backward_pass_levels
from repro.machine.model import MachineModel
from repro.pipeline import SECTION6_PRIORITY
from repro.runner.watchdog import Budget, BudgetedStats, run_with_watchdog
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.timing import simulate, verify_order
from repro.verify.checker import degraded_timing, verify_schedule

#: builder name -> class, as exposed on the CLI
BUILDER_CLASSES: dict[str, type[DagBuilder]] = {
    "n2": CompareAllBuilder,
    "landskov": LandskovBuilder,
    "table-forward": TableForwardBuilder,
    "table-backward": TableBackwardBuilder,
    "bitmap-backward": BitmapBackwardBuilder,
}

#: the default chain: fastest exact builder first, the ``n**2``
#: reference last (it tolerates anything but costs the most work)
DEFAULT_CHAIN = ("bitmap-backward", "table-forward", "n2")


def resolve_chain(names: Sequence[str],
                  machine: MachineModel,
                  cache: PairwiseCache | None = None) -> list[
                      tuple[str, Callable[[], DagBuilder]]]:
    """Turn builder names into (name, factory) pairs.

    Args:
        names: builder names in fallback order.
        machine: timing model handed to every builder.
        cache: optional shared :class:`~repro.dag.builders.cache.\
PairwiseCache`; when set, every builder the chain constructs consults
            it, so a retry after a mid-chain failure replays the
            earlier builder's dependence work instead of redoing it.

    Raises:
        ReproError: for an unknown builder name or an empty chain.
    """
    if not names:
        raise ReproError("builder chain is empty")
    chain = []
    for name in names:
        cls = BUILDER_CLASSES.get(name)
        if cls is None:
            raise ReproError(
                f"unknown builder {name!r} in chain; "
                f"known: {sorted(BUILDER_CLASSES)}")
        chain.append(
            (name, lambda cls=cls: cls(machine, cache=cache)))
    return chain


@dataclass(frozen=True)
class Attempt:
    """One builder attempt on one block.

    Attributes:
        builder: chain entry name ("original-order" for the terminal
            degradation step).
        stage: where the attempt ended ("build", "heuristics",
            "schedule", "verify", "timeout", or "ok").
        error: the stringified error, None on success.
        work: budgeted construction work units this attempt spent
            (comparisons + table probes + alias checks + bitmap ops),
            or None when the attempt ran without a counting stats
            object.  Failed attempts keep their spent work here --
            each attempt counts against a *fresh* budget, so earlier
            failures neither double-charge a later attempt nor vanish
            from the accounting.
    """

    builder: str
    stage: str
    error: str | None = None
    work: int | None = None

    def to_record(self) -> dict:
        """JSON-serializable form (journal line fragment)."""
        return {"builder": self.builder, "stage": self.stage,
                "error": self.error, "work": self.work}

    @staticmethod
    def from_record(record: dict) -> "Attempt":
        return Attempt(record["builder"], record["stage"],
                       record.get("error"), record.get("work"))


@dataclass
class BlockOutcome:
    """The resilient runner's verdict on one block.

    Attributes:
        index: block index within the program.
        label: block label, if any.
        builder: name of the builder that produced the accepted
            schedule, or None when the block degraded to its original
            order.
        order: accepted schedule as block-relative instruction
            positions (the identity permutation when degraded).
        makespan: makespan of the accepted schedule.
        original_makespan: makespan of the original order.
        attempts: every attempt, in chain order (the last one is the
            accepted attempt or the degradation record).
        live: True when this outcome was computed in this run, False
            when it was replayed from a journal (replayed outcomes
            carry no DAG/work statistics).
        dag_stats_outcome: the accepted attempt's build outcome (DAG +
            work counters), present only on live, non-degraded
            outcomes.
    """

    index: int
    label: str | None
    builder: str | None
    order: list[int]
    makespan: int
    original_makespan: int
    attempts: list[Attempt] = field(default_factory=list)
    live: bool = True
    dag_stats_outcome: BuildOutcome | None = None

    @property
    def degraded(self) -> bool:
        """True when no chain builder produced an accepted schedule."""
        return self.builder is None

    def to_record(self) -> dict:
        """JSON-serializable journal line (statistics-bearing fields
        only; the DAG itself is recomputable from the input)."""
        return {
            "type": "block",
            "index": self.index,
            "label": self.label,
            "builder": self.builder,
            "order": list(self.order),
            "makespan": self.makespan,
            "original_makespan": self.original_makespan,
            "attempts": [a.to_record() for a in self.attempts],
        }

    @staticmethod
    def from_record(record: dict) -> "BlockOutcome":
        return BlockOutcome(
            index=record["index"],
            label=record.get("label"),
            builder=record.get("builder"),
            order=list(record["order"]),
            makespan=record["makespan"],
            original_makespan=record["original_makespan"],
            attempts=[Attempt.from_record(a)
                      for a in record.get("attempts", [])],
            live=False)


def schedule_block_resilient(
        block: BasicBlock,
        machine: MachineModel,
        chain: Sequence[tuple[str, Callable[[], DagBuilder]]],
        budget: Budget | None = None,
        priority: Callable | None = None,
        heuristic_driver: str = "reverse_walk",
        verify: bool = False,
        cache: PairwiseCache | None = None) -> BlockOutcome:
    """Schedule one block, falling back through the builder chain.

    Each chain entry gets a full attempt -- construction (under the
    work budget), intermediate heuristic pass, forward scheduling, and
    optional independent verification -- wrapped in the wall-clock
    watchdog.  The first attempt that survives is accepted; if none
    does, the block degrades to its original order (always correct,
    never faster) with every failure recorded.

    Args:
        block: the basic block (non-empty).
        machine: timing model.
        chain: (name, factory) pairs from :func:`resolve_chain`; tests
            may inject arbitrary factories (e.g. a sleeping builder).
        budget: per-attempt watchdog limits (None = unlimited).
        priority: scheduling priority (default: section 6 winnowing).
        heuristic_driver: "reverse_walk" or "levels".
        verify: independently verify the accepted schedule with
            :func:`repro.verify.checker.verify_schedule`.
        cache: optional pairwise-dependence cache shared across
            attempts (and with the verifier), so a fallback retry
            replays the failed builder's dependence work.

    Returns:
        The accepted or degraded :class:`BlockOutcome`.
    """
    if priority is None:
        priority = SECTION6_PRIORITY
    driver = (backward_pass_levels if heuristic_driver == "levels"
              else backward_pass)
    label = block.label if block.label else str(block.index)
    attempts: list[Attempt] = []

    def attempt(name: str, factory: Callable[[], DagBuilder],
                stats: BudgetedStats) -> tuple:
        stage = "build"
        try:
            outcome = factory().build(block, stats=stats)
            stage = "heuristics"
            driver(outcome.dag, require_est=False)
            stage = "schedule"
            sched = schedule_forward(outcome.dag, machine, priority)
            verify_order(sched.order, outcome.dag)
            original = simulate(list(outcome.dag.real_nodes()), machine)
            if verify:
                stage = "verify"
                verify_schedule(
                    block, sched.order, machine,
                    claimed_issue_times=sched.timing.issue_times,
                    approach=name, cache=cache).raise_if_failed()
            return outcome, sched, original
        except BlockTimeout:
            raise
        except ReproError as exc:
            exc.stage = stage  # type: ignore[attr-defined]
            raise

    for name, factory in chain:
        # A fresh budgeted counter per attempt: a failed attempt's
        # spent work must neither count against the next builder's
        # budget (double-charging) nor disappear -- it is snapshotted
        # onto the Attempt record below.
        stats = BudgetedStats(
            budget.max_work if budget is not None else None, block=label)
        try:
            outcome, sched, original = run_with_watchdog(
                lambda: attempt(name, factory, stats), budget,
                block=label)
        except BlockTimeout as exc:
            attempts.append(Attempt(name, "timeout", str(exc),
                                    work=stats.work))
            continue
        except ReproError as exc:
            attempts.append(Attempt(
                name, getattr(exc, "stage", "build"), str(exc),
                work=stats.work))
            continue
        attempts.append(Attempt(name, "ok", work=stats.work))
        return BlockOutcome(
            index=block.index, label=block.label, builder=name,
            order=[node.id for node in sched.order],
            makespan=sched.timing.makespan,
            original_makespan=original.makespan,
            attempts=attempts, dag_stats_outcome=outcome)

    # Terminal degradation: the original order is always a correct
    # schedule of itself.
    fallback = degraded_timing(block, machine)
    attempts.append(Attempt("original-order", "ok"))
    return BlockOutcome(
        index=block.index, label=block.label, builder=None,
        order=list(range(len(block.instructions))),
        makespan=fallback, original_makespan=fallback,
        attempts=attempts)
