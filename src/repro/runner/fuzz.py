"""Differential fuzzing of the DAG builders and scheduling pipeline.

The five construction algorithms promise the same dependence closure;
the verifier promises to catch any schedule that violates a block's
re-derived dependences.  This harness exercises both promises on
inputs nobody hand-wrote:

* **layered** random blocks -- instructions generated layer by layer,
  each layer consuming the previous layer's definitions (the
  layer-by-layer family of Canon et al.'s random task-graph
  generation survey);
* **random-arc** blocks -- each instruction draws its sources from
  uniformly random earlier definitions with a seeded edge probability
  (the Erdős–Rényi-style family from the same survey);
* **mutated** real assembly -- a seeded text mutator (swap, delete,
  duplicate, register rename, immediate perturbation, line
  corruption) applied to the repository's hand-written kernels, fed
  through the lenient parser's skip-and-continue recovery.

Every generated block is pushed through the builders with
verification on; any disagreement -- a closure mismatch, a failed
verification check, or an outright crash -- is minimized with a
greedy delta-debugging loop and written out as a self-describing
reproducer ``.s`` file.

Everything is seeded: the same ``(seed, iterations)`` pair always
generates the same cases, finds the same failures, and writes the
same reproducers.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.asm.parser import parse_asm
from repro.cfg.basic_block import BasicBlock
from repro.cfg.partition import partition_blocks
from repro.dag.builders import ALL_BUILDERS, CompareAllBuilder
from repro.dag.builders.base import DagBuilder
from repro.dag.transitive import classify_arcs
from repro.errors import ReproError
from repro.heuristics.passes import backward_pass
from repro.isa.instruction import Instruction
from repro.isa.memory import MemExpr
from repro.isa.opcodes import lookup_opcode
from repro.isa.operands import (
    ImmOperand,
    MemOperand,
    Operand,
    RegOperand,
)
from repro.isa.registers import parse_register
from repro.machine.model import MachineModel
from repro.machine.presets import generic_risc
from repro.pipeline import SECTION6_PRIORITY
from repro.scheduling.list_scheduler import schedule_forward
from repro.verify.checker import check_builders_agree, verify_schedule
from repro.workloads.kernels import KERNELS

#: builders whose *schedules* are independently verified (Landskov is
#: excluded here -- its documented transitive-arc pruning can
#: legitimately fail the timing check on long-latency chains -- but it
#: still participates in the closure-agreement check below)
EXACT_BUILDERS: tuple[type[DagBuilder], ...] = tuple(
    cls for cls in ALL_BUILDERS if cls.name != "landskov")

_INT_REGS = tuple(f"%l{i}" for i in range(8)) \
    + tuple(f"%o{i}" for i in range(6)) \
    + tuple(f"%i{i}" for i in range(6))
_FP_REGS = tuple(f"%f{i}" for i in range(0, 32, 2))
_INT_OPS = ("add", "sub", "and", "or", "xor", "sll")
_FP_OPS = ("faddd", "fsubd", "fmuld")
_SHAPES = ("layered", "random-arc", "mutated")


def _reg(name: str) -> RegOperand:
    return RegOperand(parse_register(name))


def _make(mnemonic: str, *operands: Operand) -> Instruction:
    return Instruction(0, lookup_opcode(mnemonic), tuple(operands))


def _as_block(instrs: Sequence[Instruction], index: int = 0) -> BasicBlock:
    return BasicBlock(index, [ins.with_index(k)
                              for k, ins in enumerate(instrs)])


def _mem_pool(rng: random.Random, case_id: str) -> list[MemExpr]:
    pool: list[MemExpr] = []
    for k in range(rng.randint(1, 5)):
        shape = rng.random()
        if shape < 0.5:
            pool.append(MemExpr(base=rng.choice(("%i0", "%i1", "%l0")),
                                offset=4 * rng.randint(0, 8)))
        elif shape < 0.8:
            pool.append(MemExpr(base="%i6", offset=-4 * (k + 1)))
        else:
            pool.append(MemExpr(symbol=f"fz{case_id}_{k}"))
    return pool


def _body_op(rng: random.Random, sources: Sequence[str],
             dest_cursor: list[int], pool: list[MemExpr],
             fp_frac: float, mem_frac: float) -> tuple[Instruction, str]:
    """One generated instruction; returns (instruction, defined reg)."""
    roll = rng.random()
    if pool and roll < mem_frac:
        expr = rng.choice(pool)
        if rng.random() < 0.6:
            dest = _INT_REGS[dest_cursor[0] % len(_INT_REGS)]
            dest_cursor[0] += 1
            return _make("ld", MemOperand(expr), _reg(dest)), dest
        src = rng.choice(sources) if sources else "%o0"
        return _make("st", _reg(src), MemOperand(expr)), ""
    if rng.random() < fp_frac:
        dest = _FP_REGS[dest_cursor[1] % len(_FP_REGS)]
        dest_cursor[1] += 1
        fp_sources = [s for s in sources if s.startswith("%f")] \
            or list(_FP_REGS[:4])
        op = rng.choice(_FP_OPS)
        return _make(op, _reg(rng.choice(fp_sources)),
                     _reg(rng.choice(fp_sources)), _reg(dest)), dest
    dest = _INT_REGS[dest_cursor[0] % len(_INT_REGS)]
    dest_cursor[0] += 1
    int_sources = [s for s in sources if not s.startswith("%f")] \
        or list(_INT_REGS[:4])
    op = rng.choice(_INT_OPS)
    second: Operand = (ImmOperand(rng.randint(1, 64))
                       if rng.random() < 0.4
                       else _reg(rng.choice(int_sources)))
    return _make(op, _reg(rng.choice(int_sources)), second,
                 _reg(dest)), dest


def layered_block(rng: random.Random, case_id: str,
                  max_size: int = 24) -> BasicBlock:
    """A block whose dependences run layer to layer (Canon et al.)."""
    n_layers = rng.randint(2, 5)
    per_layer = max(1, rng.randint(2, max(2, max_size // n_layers)))
    pool = _mem_pool(rng, case_id)
    fp_frac = rng.choice((0.0, 0.3, 0.6))
    mem_frac = rng.uniform(0.1, 0.4)
    cursor = [0, 0]
    instrs: list[Instruction] = []
    previous: list[str] = list(_INT_REGS[:4])
    for _ in range(n_layers):
        defined: list[str] = []
        for _ in range(per_layer):
            instr, dest = _body_op(rng, previous, cursor, pool,
                                   fp_frac, mem_frac)
            instrs.append(instr)
            if dest:
                defined.append(dest)
        if defined:
            previous = defined
    return _as_block(instrs)


def random_arc_block(rng: random.Random, case_id: str,
                     max_size: int = 24) -> BasicBlock:
    """A block with uniformly random def-use arcs (Canon et al.)."""
    n = rng.randint(4, max_size)
    edge_p = rng.uniform(0.2, 0.8)
    pool = _mem_pool(rng, case_id)
    fp_frac = rng.choice((0.0, 0.4))
    mem_frac = rng.uniform(0.1, 0.4)
    cursor = [0, 0]
    instrs: list[Instruction] = []
    defined: list[str] = []
    for _ in range(n):
        sources = (defined if defined and rng.random() < edge_p
                   else list(_INT_REGS[:4]))
        instr, dest = _body_op(rng, sources, cursor, pool,
                               fp_frac, mem_frac)
        instrs.append(instr)
        if dest:
            defined.append(dest)
    return _as_block(instrs)


def mutate_kernel(rng: random.Random) -> list[BasicBlock]:
    """Seeded text mutations of a real kernel, leniently parsed.

    Returns the mutant's non-empty basic blocks (possibly none, when a
    mutation destroys every instruction or collides labels).
    """
    source = KERNELS[rng.choice(sorted(KERNELS))]
    lines = source.splitlines()
    for _ in range(rng.randint(1, 3)):
        if not lines:
            break
        kind = rng.randrange(6)
        i = rng.randrange(len(lines))
        if kind == 0 and len(lines) > 1:
            j = rng.randrange(len(lines))
            lines[i], lines[j] = lines[j], lines[i]
        elif kind == 1:
            del lines[i]
        elif kind == 2:
            lines.insert(i, lines[i])
        elif kind == 3:
            lines[i] = lines[i].replace(
                rng.choice(("%o0", "%o1", "%f0", "%l0")),
                rng.choice(("%o2", "%o3", "%f4", "%l2")))
        elif kind == 4:
            lines[i] = lines[i].replace(
                str(rng.choice((4, 8, 16))), str(rng.choice((12, 20))))
        else:
            lines[i] = lines[i] + " ,,garbage)["
    try:
        program = parse_asm("\n".join(lines), "<fuzz-mutant>",
                            lenient=True)
        blocks = partition_blocks(program)
    except ReproError:
        return []
    return [b for b in blocks if b.instructions]


def check_block(block: BasicBlock, machine: MachineModel,
                builders: Sequence[type[DagBuilder]] | None = None,
                ) -> str | None:
    """The differential oracle: None when all builders agree and every
    schedule verifies; else a one-line failure description.

    Checks, in order:

    1. every builder (``builders``; default all five) induces the same
       dependence closure as the compare-against-all reference;
    2. for each exact builder, the full pipeline (construction +
       heuristic pass + forward scheduling) produces a schedule that
       passes independent verification;
    3. nothing crashes with an unexpected (non-``ReproError``)
       exception.
    """
    try:
        check_builders_agree(
            block, machine,
            builders=list(builders) if builders is not None else None)
    except ReproError as exc:
        return f"closure disagreement: {exc}"
    except Exception as exc:  # noqa: BLE001 - fuzzing net
        return f"crash in closure check: {type(exc).__name__}: {exc}"
    schedule_set = (tuple(builders) if builders is not None
                    else EXACT_BUILDERS)
    for cls in schedule_set:
        if cls.name == "landskov":
            continue  # documented pruning; closure-checked above
        try:
            outcome = cls(machine).build(block)
            backward_pass(outcome.dag, require_est=False)
            sched = schedule_forward(outcome.dag, machine,
                                     SECTION6_PRIORITY)
            verify_schedule(
                block, sched.order, machine,
                claimed_issue_times=sched.timing.issue_times,
                approach=cls.name).raise_if_failed()
        except ReproError as exc:
            return f"[{cls.name}] {exc}"
        except Exception as exc:  # noqa: BLE001 - fuzzing net
            return f"crash in [{cls.name}]: {type(exc).__name__}: {exc}"
    return None


def minimize_block(block: BasicBlock,
                   still_fails: Callable[[BasicBlock], bool],
                   ) -> BasicBlock:
    """Greedy delta-debugging: drop chunks, then single instructions,
    while the failure persists.  Deterministic, no randomness."""
    instrs = list(block.instructions)
    chunk = max(1, len(instrs) // 2)
    while chunk >= 1:
        i = 0
        while i < len(instrs) and len(instrs) > 1:
            candidate = instrs[:i] + instrs[i + chunk:]
            if candidate and still_fails(_as_block(candidate,
                                                   block.index)):
                instrs = candidate
            else:
                i += chunk
        chunk //= 2
    return _as_block(instrs, block.index)


@dataclass(frozen=True)
class FuzzFailure:
    """One triaged disagreement.

    Attributes:
        case: case identifier ("<seed>-<iteration>[-<block>]").
        shape: generator that produced the input.
        description: the oracle's failure description (of the
            minimized reproducer).
        reproducer: path of the written ``.s`` file.
        original_size: instructions before minimization.
        minimized_size: instructions after minimization.
    """

    case: str
    shape: str
    description: str
    reproducer: str
    original_size: int
    minimized_size: int


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign.

    Attributes:
        seed: campaign seed.
        iterations: requested iterations.
        n_blocks: blocks pushed through the oracle.
        n_skipped: mutant cases that produced no parseable blocks.
        failures: triaged disagreements, in discovery order.
    """

    seed: int
    iterations: int
    n_blocks: int = 0
    n_skipped: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no disagreement survived triage."""
        return not self.failures


class _DisagreeingBuilder(CompareAllBuilder):
    """The seeded fault: compare-all minus one essential arc.

    Dropping a non-redundant arc changes the dependence closure, so
    the differential oracle is *guaranteed* to flag any block where
    this builder participates and an essential arc exists -- the
    end-to-end self-test of the fuzz-triage path (``--inject-fault``).
    """

    name = "injected-disagreement"

    def _construct(self, dag, space, oracle, stats) -> None:
        super()._construct(dag, space, oracle, stats)
        labels = classify_arcs(dag)
        for node in dag.real_nodes():
            for arc in list(node.out_arcs):
                if arc.child.instr is not None and not labels[arc]:
                    dag.remove_arc(arc)
                    return


def fuzz(seed: int = 0,
         iterations: int = 100,
         machine: MachineModel | None = None,
         out_dir: str = "fuzz-failures",
         shapes: Sequence[str] = _SHAPES,
         max_size: int = 24,
         inject_fault: bool = False,
         on_case: Callable[[str, str], None] | None = None) -> FuzzResult:
    """Run a differential fuzzing campaign.

    Args:
        seed: campaign seed; fixes the entire run, including
            reproducer contents.
        iterations: generated cases (each case is one block, or one
            kernel mutant contributing up to three blocks).
        machine: timing model (default: generic RISC).
        out_dir: directory for reproducer files (created on first
            failure).
        shapes: generator subset, from ``layered``, ``random-arc``,
            ``mutated``.
        max_size: instruction cap for generated blocks.
        inject_fault: add the deliberately broken
            :class:`_DisagreeingBuilder` to the differential set -- a
            seeded disagreement that must be detected, minimized, and
            written as a reproducer (the harness's own self-test).
        on_case: progress callback ``(case_id, shape)``.

    Returns:
        The campaign's :class:`FuzzResult`.
    """
    if machine is None:
        machine = generic_risc()
    for shape in shapes:
        if shape not in _SHAPES:
            raise ReproError(
                f"unknown fuzz shape {shape!r}; known: {list(_SHAPES)}")
    builders: list[type[DagBuilder]] | None = None
    if inject_fault:
        builders = list(ALL_BUILDERS) + [_DisagreeingBuilder]
    result = FuzzResult(seed=seed, iterations=iterations)
    for iteration in range(iterations):
        rng = random.Random(f"repro-fuzz:{seed}:{iteration}")
        shape = shapes[iteration % len(shapes)]
        case = f"{seed}-{iteration}"
        if on_case is not None:
            on_case(case, shape)
        if shape == "layered":
            blocks = [layered_block(rng, case, max_size)]
        elif shape == "random-arc":
            blocks = [random_arc_block(rng, case, max_size)]
        else:
            blocks = mutate_kernel(rng)[:3]
            if not blocks:
                result.n_skipped += 1
                continue
        for k, block in enumerate(blocks):
            result.n_blocks += 1
            description = check_block(block, machine, builders)
            if description is None:
                continue
            case_id = case if len(blocks) == 1 else f"{case}-{k}"
            result.failures.append(_triage(
                block, machine, builders, case_id, shape,
                description, out_dir))
    return result


def _triage(block: BasicBlock, machine: MachineModel,
            builders: Sequence[type[DagBuilder]] | None,
            case_id: str, shape: str, description: str,
            out_dir: str) -> FuzzFailure:
    """Minimize a failing block and write its reproducer file."""
    minimized = minimize_block(
        block, lambda b: check_block(b, machine, builders) is not None)
    final_description = check_block(minimized, machine, builders) \
        or description
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"repro-{case_id}.s")
    lines = [
        "! repro fuzz reproducer",
        f"! case: {case_id}  shape: {shape}",
        f"! failure: {final_description}",
        f"! minimized: {len(block.instructions)} -> "
        f"{len(minimized.instructions)} instructions",
    ]
    lines.extend(f"\t{ins.render()}" for ins in minimized.instructions)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return FuzzFailure(
        case=case_id, shape=shape, description=final_description,
        reproducer=path, original_size=len(block.instructions),
        minimized_size=len(minimized.instructions))
