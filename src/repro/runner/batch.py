"""The resilient batch runner: whole-program runs that survive bad blocks.

:func:`run_batch` is the crash-tolerant counterpart of
:func:`repro.pipeline.run_pipeline` for production-scale runs: every
block goes through the watchdog + builder fallback chain
(:mod:`repro.runner.fallback`), outcomes are journaled as the run
progresses (:mod:`repro.runner.journal`), and an interrupted run
resumes from the last completed block with bit-identical results.

Two performance knobs ride on top without changing any outcome:

* ``cache`` -- a shared :class:`~repro.dag.builders.cache.PairwiseCache`
  so fallback retries, repeated block bodies, and post-schedule
  verification replay dependence work instead of re-deriving it;
* ``jobs`` -- block-parallel execution on a worker pool.  Blocks are
  independent (the chain, budget, and counters are all per-block), so
  the pool computes outcomes out of order while the parent consumes
  them *in program order* -- journal lines, the ``on_block`` callback,
  and every aggregate come out byte-identical to a serial run.

The parallel path runs on the crash-isolated
:class:`~repro.runner.supervisor.SupervisedPool` by default: a worker
death (segfault, OOM kill, ``os._exit``) costs one block attempt, not
the batch -- the block is retried with backoff and, past its retry
budget, quarantined with a ``quarantined`` journal record.  Pass
``supervise=False`` for the legacy ``ProcessPoolExecutor`` path, where
a dead worker degrades to a typed :class:`~repro.errors.ReproError`
pointing at the resumable journal.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.base import BuildStats, DagBuilder
from repro.dag.builders.cache import PairwiseCache
from repro.dag.stats import BlockDagStats, ProgramDagStats
from repro.errors import BatchInterrupted, ReproError
from repro.machine.model import MachineModel
from repro.obs.metrics import (
    MetricsRegistry,
    record_block_structure,
    record_cache,
    record_outcome,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runner.fallback import (
    DEFAULT_CHAIN,
    BlockOutcome,
    resolve_chain,
    schedule_block_resilient,
)
from repro.runner.journal import RunJournal
from repro.runner.supervisor import (
    CircuitBreaker,
    RetryPolicy,
    SupervisedPool,
    _init_worker,
    _run_block,
)
from repro.runner.watchdog import Budget


@dataclass
class BatchResult:
    """Aggregated outcome of a resilient batch run.

    Attributes:
        chain: builder chain names, in fallback order.
        outcomes: one :class:`BlockOutcome` per non-empty block, in
            program order (replayed journal outcomes included).
        n_blocks: blocks processed.
        n_instructions: instructions processed.
        n_replayed: blocks replayed from the journal instead of
            recomputed.
        total_makespan: summed accepted-schedule makespans (degraded
            blocks charged at original-order makespan).
        total_original_makespan: summed original-order makespans.
        degraded_makespan: the portion of both totals from degraded
            blocks.
        build_stats: summed construction work counters of live,
            non-degraded blocks (journal replays carry none).
        dag_stats: structural statistics of live, non-degraded blocks.
        supervisor_stats: the supervised pool's
            :class:`~repro.runner.supervisor.SupervisorStats`
            (crashes, restarts, retries, quarantines), or None when
            the run never started a supervised pool.
    """

    chain: tuple[str, ...]
    outcomes: list[BlockOutcome] = field(default_factory=list)
    n_blocks: int = 0
    n_instructions: int = 0
    n_replayed: int = 0
    total_makespan: int = 0
    total_original_makespan: int = 0
    degraded_makespan: int = 0
    build_stats: BuildStats = field(default_factory=BuildStats)
    dag_stats: ProgramDagStats = field(default_factory=ProgramDagStats)
    supervisor_stats: object | None = None

    @property
    def failures(self) -> list[BlockOutcome]:
        """The blocks that degraded to original order."""
        return [o for o in self.outcomes if o.degraded]

    @property
    def retried(self) -> list[BlockOutcome]:
        """The blocks that needed more than one attempt."""
        return [o for o in self.outcomes if len(o.attempts) > 1]

    @property
    def degraded_fraction(self) -> float:
        """Fraction of processed blocks that degraded."""
        if self.n_blocks == 0:
            return 0.0
        return len(self.failures) / self.n_blocks

    @property
    def speedup(self) -> float:
        """Original over scheduled makespan across the blocks that
        were actually scheduled (1.0 when every block degraded)."""
        scheduled = self.total_makespan - self.degraded_makespan
        if scheduled <= 0:
            return 1.0
        return ((self.total_original_makespan - self.degraded_makespan)
                / scheduled)

    @property
    def wasted_work(self) -> int:
        """Construction work units spent on attempts that were *not*
        accepted (failed chain entries).  Each attempt runs against a
        fresh budget, so this is pure bookkeeping -- it never counts
        against a later attempt -- but it quantifies what the fallback
        chain cost and what the pairwise cache saves on retries."""
        total = 0
        for outcome in self.outcomes:
            for attempt in outcome.attempts[:-1]:
                if attempt.work is not None:
                    total += attempt.work
        return total


# The worker-side plumbing (``_init_worker`` / ``_run_block``) lives
# in :mod:`repro.runner.supervisor` and is shared by both pool
# flavors.

def run_batch(blocks: Sequence[BasicBlock],
              machine: MachineModel,
              chain: Sequence[str] | None = None,
              chain_factories: Sequence[
                  tuple[str, Callable[[], DagBuilder]]] | None = None,
              budget: Budget | None = None,
              priority: Callable | None = None,
              heuristic_driver: str = "reverse_walk",
              verify: bool = False,
              journal: RunJournal | None = None,
              on_block: Callable[[BlockOutcome], None] | None = None,
              jobs: int = 1,
              cache: PairwiseCache | None = None,
              tracer: Tracer | None = None,
              metrics: MetricsRegistry | None = None,
              supervise: bool = True,
              retry: RetryPolicy | None = None,
              chaos: object | None = None,
              task_timeout: float | None = None,
              quarantine_dir: str | None = None,
              breaker: CircuitBreaker | None = None,
              mem_limit_mb: int | None = None,
              columnar: bool = False,
              ) -> BatchResult:
    """Run the resilient scheduling pipeline over ``blocks``.

    Per block: if the journal already records an outcome for its index
    the outcome is replayed verbatim (no recomputation -- this is what
    makes resume bit-identical); otherwise the block runs through the
    watchdog + fallback chain and the outcome is appended to the
    journal before the next block starts.

    Args:
        blocks: the program's basic blocks (window already applied).
        machine: timing model.
        chain: builder chain names (default
            :data:`~repro.runner.fallback.DEFAULT_CHAIN`).
        chain_factories: pre-resolved (name, factory) pairs overriding
            ``chain`` -- the fault-injection hook tests use to plant a
            hanging or broken builder.
        budget: per-block watchdog limits.
        priority: scheduling priority (default: section 6 winnowing).
        heuristic_driver: "reverse_walk" or "levels".
        verify: independently verify every accepted schedule.
        journal: an open :class:`RunJournal` for checkpoint/resume.
        on_block: progress callback invoked after every block outcome
            (replayed ones included), in program order.
        jobs: worker processes.  1 (the default) runs in-process;
            ``N > 1`` schedules un-journaled blocks on a pool while
            preserving program-order journaling and callbacks, so the
            journal and every aggregate are byte-identical to ``jobs=1``
            (work-budget trips included; wall-clock budgets remain
            load-sensitive either way).  Incompatible with a custom
            ``priority`` or ``chain_factories`` (closures do not
            pickle); workers always use the section 6 defaults.
        cache: optional shared pairwise-dependence cache for the serial
            path; with ``jobs > 1`` pass ``cache`` as usual and each
            worker builds its own (caches hold live DAG nodes and
            cannot cross process boundaries -- only the *enabled* flag
            is forwarded).
        tracer: optional :class:`~repro.obs.trace.Tracer`; the run
            records a ``batch`` span with per-block spans under it.
            With ``jobs > 1`` each worker traces into its own tracer
            (track = worker pid) and the parent absorbs the entries in
            program order, so the structural span tree matches a
            serial run's.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            block structure, outcome aggregates, and (via the fallback
            chain) builder work counters are recorded.  Worker
            registries are merged in program order; every merge is
            commutative, so the stable snapshot section is
            byte-identical to a ``jobs=1`` run's.
        supervise: with ``jobs > 1``, run on the crash-isolated
            :class:`~repro.runner.supervisor.SupervisedPool` (the
            default) instead of the legacy ``ProcessPoolExecutor``.
            Clean runs are byte-identical either way; only the
            supervised pool survives worker death.
        retry: supervised-pool crash retry/backoff policy (default
            :class:`~repro.runner.supervisor.RetryPolicy`).
        chaos: optional fault-injection plan
            (:class:`~repro.runner.chaos.ChaosConfig`) forwarded to
            the supervised pool -- testing only.
        task_timeout: supervised-pool hang detector: seconds of
            worker silence after dispatch before the worker is
            presumed hung and killed (None = wait forever).
        quarantine_dir: directory for quarantine reproducer ``.s``
            files (None = quarantine without writing files).
        breaker: optional per-builder
            :class:`~repro.runner.supervisor.CircuitBreaker`.
            Outcome-changing (an open breaker skips chain entries),
            so opt-in.  Serial runs thread it straight through the
            fallback chain; supervised runs apply it parent-side and
            forward skip lists to workers.
        mem_limit_mb: opt-in per-worker address-space ceiling in MiB
            (``jobs > 1`` only; see
            :class:`~repro.runner.supervisor.SupervisedPool`).  OOM
            deaths then surface as attributed ``"oom"`` crashes
            instead of anonymous SIGKILLs.
        columnar: run the structure-of-arrays fast path (requires
            numpy): ``table-forward`` chain entries use the columnar
            builder and heuristics run on the vectorized driver.
            Outcomes, journals, and work counters are byte-identical
            to the object path -- this is a performance knob, like
            ``cache`` and ``jobs``.

    Returns:
        The aggregated :class:`BatchResult`.

    Raises:
        ReproError: for ``jobs < 1``, or ``jobs > 1`` combined with
            ``priority`` / ``chain_factories``.
        BatchInterrupted: on SIGINT/SIGTERM (as ``KeyboardInterrupt``)
            after the pool is shut down and the journal left flushed
            and resumable.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1 and (priority is not None or chain_factories is not None):
        raise ReproError(
            "jobs > 1 cannot ship a custom priority or injected chain "
            "factories to worker processes; use the defaults or jobs=1")
    chain_names = tuple(chain) if chain else DEFAULT_CHAIN
    if chain_factories is None:
        chain_factories = resolve_chain(chain_names, machine, cache=cache,
                                        columnar=columnar)
    tracer = tracer or NULL_TRACER
    result = BatchResult(chain=tuple(name for name, _ in chain_factories))
    completed = journal.completed if journal is not None else {}
    todo = [b for b in blocks if b.instructions]
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0

    pending: dict[int, "object"] = {}
    pool = None
    spool = None
    if jobs > 1:
        fresh = [b for b in todo if b.index not in completed]
        if fresh and supervise:
            spool = SupervisedPool(
                fresh, machine, chain_names, budget, heuristic_driver,
                verify, cache is not None, bool(tracer),
                metrics is not None, jobs, retry=retry, chaos=chaos,
                task_timeout=task_timeout,
                quarantine_dir=quarantine_dir, breaker=breaker,
                tracer=tracer, metrics=metrics,
                mem_limit_mb=mem_limit_mb, columnar=columnar)
        elif fresh:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(fresh)),
                initializer=_init_worker,
                initargs=(machine, chain_names, budget, heuristic_driver,
                          verify, cache is not None, bool(tracer),
                          metrics is not None, mem_limit_mb, columnar))
            pending = {b.index: pool.submit(_run_block, b)
                       for b in fresh}
    finished = False
    try:
        # The batch span's attrs deliberately exclude ``jobs``: the
        # structural span tree must be identical across worker counts.
        with tracer.span("batch", chain=",".join(result.chain),
                         n_blocks=len(todo)):
            for block in todo:
                outcome = completed.get(block.index)
                counters: tuple[int, ...] | None = None
                block_stats: BlockDagStats | None = None
                replayed = outcome is not None
                if outcome is not None:
                    result.n_replayed += 1
                    tracer.event("replayed", index=block.index)
                elif spool is not None and block.index in spool:
                    verdict = spool.result(block.index)
                    if verdict[0] == "quarantined":
                        outcome = verdict[1]
                    else:
                        _, record, counters, block_stats, obs = verdict
                        outcome = BlockOutcome.from_record(record)
                        if obs is not None:
                            entries, dumped = obs
                            if entries:
                                tracer.absorb(
                                    entries,
                                    parent=tracer.current_span)
                            if dumped and metrics is not None:
                                metrics.merge(dumped)
                    if journal is not None:
                        journal.append(outcome)
                elif block.index in pending:
                    try:
                        record, counters, block_stats, obs = \
                            pending.pop(block.index).result()
                    except BrokenProcessPool as exc:
                        where = (f"; completed blocks are journaled in "
                                 f"{journal.path!r} -- re-run with "
                                 f"--resume to continue"
                                 if journal is not None else
                                 "; re-run with --journal to make the "
                                 "batch resumable, or with the "
                                 "supervised pool (the default) to "
                                 "survive worker death")
                        raise ReproError(
                            f"worker process died while scheduling "
                            f"block {block.index} (unsupervised pool "
                            f"aborts on worker death){where}") from exc
                    outcome = BlockOutcome.from_record(record)
                    if obs is not None:
                        entries, dumped = obs
                        if entries:
                            tracer.absorb(entries,
                                          parent=tracer.current_span)
                        if dumped and metrics is not None:
                            metrics.merge(dumped)
                    if journal is not None:
                        journal.append(outcome)
                else:
                    outcome = schedule_block_resilient(
                        block, machine, chain_factories, budget=budget,
                        priority=priority,
                        heuristic_driver=heuristic_driver,
                        verify=verify, cache=cache, tracer=tracer,
                        metrics=metrics, breaker=breaker,
                        columnar=columnar)
                    if journal is not None:
                        journal.append(outcome)
                if metrics is not None:
                    record_block_structure(
                        metrics, len(block.instructions),
                        len(block.unique_memory_exprs()))
                    record_outcome(metrics, outcome, replayed=replayed)
                result.outcomes.append(outcome)
                result.n_blocks += 1
                result.n_instructions += len(block.instructions)
                result.total_makespan += outcome.makespan
                result.total_original_makespan += outcome.original_makespan
                if outcome.degraded:
                    result.degraded_makespan += outcome.makespan
                if outcome.live and outcome.dag_stats_outcome is not None:
                    result.build_stats.merge(
                        outcome.dag_stats_outcome.stats)
                    result.dag_stats.add_dag(outcome.dag_stats_outcome.dag)
                elif counters is not None:
                    result.build_stats.merge(BuildStats(*counters))
                    if block_stats is not None:
                        result.dag_stats.add(block_stats)
                if on_block is not None:
                    on_block(outcome)
        finished = True
    except KeyboardInterrupt:
        # The journal fsyncs every append, so everything consumed so
        # far is durable; shut the pool down (in the finally below)
        # and surface a typed, resumable interruption.
        path = journal.path if journal is not None else None
        raise BatchInterrupted(
            f"interrupted after {result.n_blocks} of {len(todo)} "
            f"blocks"
            + (f"; resume with --journal {path} --resume"
               if path is not None else ""),
            journal_path=path, n_completed=result.n_blocks,
            n_total=len(todo)) from None
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if spool is not None:
            spool.shutdown(kill=not finished)
            result.supervisor_stats = spool.stats
    if metrics is not None and cache is not None:
        info = cache.info()
        record_cache(metrics, cache.hits - hits0,
                     cache.misses - misses0,
                     entries=info["entries"], recipes=info["recipes"])
    return result
