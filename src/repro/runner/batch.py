"""The resilient batch runner: whole-program runs that survive bad blocks.

:func:`run_batch` is the crash-tolerant counterpart of
:func:`repro.pipeline.run_pipeline` for production-scale runs: every
block goes through the watchdog + builder fallback chain
(:mod:`repro.runner.fallback`), outcomes are journaled as the run
progresses (:mod:`repro.runner.journal`), and an interrupted run
resumes from the last completed block with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.base import BuildStats, DagBuilder
from repro.dag.stats import ProgramDagStats
from repro.machine.model import MachineModel
from repro.runner.fallback import (
    DEFAULT_CHAIN,
    BlockOutcome,
    resolve_chain,
    schedule_block_resilient,
)
from repro.runner.journal import RunJournal
from repro.runner.watchdog import Budget


@dataclass
class BatchResult:
    """Aggregated outcome of a resilient batch run.

    Attributes:
        chain: builder chain names, in fallback order.
        outcomes: one :class:`BlockOutcome` per non-empty block, in
            program order (replayed journal outcomes included).
        n_blocks: blocks processed.
        n_instructions: instructions processed.
        n_replayed: blocks replayed from the journal instead of
            recomputed.
        total_makespan: summed accepted-schedule makespans (degraded
            blocks charged at original-order makespan).
        total_original_makespan: summed original-order makespans.
        degraded_makespan: the portion of both totals from degraded
            blocks.
        build_stats: summed construction work counters of live,
            non-degraded blocks (journal replays carry none).
        dag_stats: structural statistics of live, non-degraded blocks.
    """

    chain: tuple[str, ...]
    outcomes: list[BlockOutcome] = field(default_factory=list)
    n_blocks: int = 0
    n_instructions: int = 0
    n_replayed: int = 0
    total_makespan: int = 0
    total_original_makespan: int = 0
    degraded_makespan: int = 0
    build_stats: BuildStats = field(default_factory=BuildStats)
    dag_stats: ProgramDagStats = field(default_factory=ProgramDagStats)

    @property
    def failures(self) -> list[BlockOutcome]:
        """The blocks that degraded to original order."""
        return [o for o in self.outcomes if o.degraded]

    @property
    def retried(self) -> list[BlockOutcome]:
        """The blocks that needed more than one attempt."""
        return [o for o in self.outcomes if len(o.attempts) > 1]

    @property
    def degraded_fraction(self) -> float:
        """Fraction of processed blocks that degraded."""
        if self.n_blocks == 0:
            return 0.0
        return len(self.failures) / self.n_blocks

    @property
    def speedup(self) -> float:
        """Original over scheduled makespan across the blocks that
        were actually scheduled (1.0 when every block degraded)."""
        scheduled = self.total_makespan - self.degraded_makespan
        if scheduled <= 0:
            return 1.0
        return ((self.total_original_makespan - self.degraded_makespan)
                / scheduled)


def run_batch(blocks: Sequence[BasicBlock],
              machine: MachineModel,
              chain: Sequence[str] | None = None,
              chain_factories: Sequence[
                  tuple[str, Callable[[], DagBuilder]]] | None = None,
              budget: Budget | None = None,
              priority: Callable | None = None,
              heuristic_driver: str = "reverse_walk",
              verify: bool = False,
              journal: RunJournal | None = None,
              on_block: Callable[[BlockOutcome], None] | None = None,
              ) -> BatchResult:
    """Run the resilient scheduling pipeline over ``blocks``.

    Per block: if the journal already records an outcome for its index
    the outcome is replayed verbatim (no recomputation -- this is what
    makes resume bit-identical); otherwise the block runs through the
    watchdog + fallback chain and the outcome is appended to the
    journal before the next block starts.

    Args:
        blocks: the program's basic blocks (window already applied).
        machine: timing model.
        chain: builder chain names (default
            :data:`~repro.runner.fallback.DEFAULT_CHAIN`).
        chain_factories: pre-resolved (name, factory) pairs overriding
            ``chain`` -- the fault-injection hook tests use to plant a
            hanging or broken builder.
        budget: per-block watchdog limits.
        priority: scheduling priority (default: section 6 winnowing).
        heuristic_driver: "reverse_walk" or "levels".
        verify: independently verify every accepted schedule.
        journal: an open :class:`RunJournal` for checkpoint/resume.
        on_block: progress callback invoked after every block outcome
            (replayed ones included), in program order.

    Returns:
        The aggregated :class:`BatchResult`.
    """
    if chain_factories is None:
        chain_factories = resolve_chain(
            tuple(chain) if chain else DEFAULT_CHAIN, machine)
    result = BatchResult(chain=tuple(name for name, _ in chain_factories))
    completed = journal.completed if journal is not None else {}
    for block in blocks:
        if not block.instructions:
            continue
        outcome = completed.get(block.index)
        if outcome is not None:
            result.n_replayed += 1
        else:
            outcome = schedule_block_resilient(
                block, machine, chain_factories, budget=budget,
                priority=priority, heuristic_driver=heuristic_driver,
                verify=verify)
            if journal is not None:
                journal.append(outcome)
        result.outcomes.append(outcome)
        result.n_blocks += 1
        result.n_instructions += len(block.instructions)
        result.total_makespan += outcome.makespan
        result.total_original_makespan += outcome.original_makespan
        if outcome.degraded:
            result.degraded_makespan += outcome.makespan
        if outcome.live and outcome.dag_stats_outcome is not None:
            result.build_stats.merge(outcome.dag_stats_outcome.stats)
            result.dag_stats.add_dag(outcome.dag_stats_outcome.dag)
        if on_block is not None:
            on_block(outcome)
    return result
