"""Resilient batch execution for the scheduling pipeline.

The pipeline in :mod:`repro.pipeline` assumes every block builds,
schedules, and verifies cleanly.  This package is the layer that does
not: per-block watchdog budgets (:mod:`repro.runner.watchdog`),
builder fallback chains (:mod:`repro.runner.fallback`),
checkpoint/resume journals (:mod:`repro.runner.journal`), whole-run
aggregation with optional dependence caching and block-parallel
execution (:mod:`repro.runner.batch`), the crash-isolated supervised
worker pool with retry/backoff, quarantine, and per-builder circuit
breakers (:mod:`repro.runner.supervisor`), the seeded fault-injection
chaos harness that proves the pool's guarantees
(:mod:`repro.runner.chaos`), the reproducible performance benchmark
(:mod:`repro.runner.bench`), and the differential fuzz harness that
hunts for builder disagreements (:mod:`repro.runner.fuzz`).
"""

from repro.runner.batch import BatchResult, run_batch
from repro.runner.bench import run_bench, write_bench
from repro.runner.chaos import ChaosConfig, ChaosReport, run_chaos
from repro.runner.fallback import (
    BUILDER_CLASSES,
    DEFAULT_CHAIN,
    Attempt,
    BlockOutcome,
    resolve_chain,
    schedule_block_resilient,
)
from repro.runner.fuzz import (
    FuzzFailure,
    FuzzResult,
    check_block,
    fuzz,
    layered_block,
    minimize_block,
    mutate_kernel,
    random_arc_block,
)
from repro.runner.journal import RunJournal, run_fingerprint
from repro.runner.supervisor import (
    CircuitBreaker,
    RetryPolicy,
    SupervisedPool,
    SupervisorStats,
)
from repro.runner.watchdog import Budget, BudgetedStats, run_with_watchdog

__all__ = [
    "Attempt",
    "BatchResult",
    "BlockOutcome",
    "Budget",
    "BudgetedStats",
    "BUILDER_CLASSES",
    "ChaosConfig",
    "ChaosReport",
    "check_block",
    "CircuitBreaker",
    "DEFAULT_CHAIN",
    "fuzz",
    "FuzzFailure",
    "FuzzResult",
    "layered_block",
    "minimize_block",
    "mutate_kernel",
    "random_arc_block",
    "resolve_chain",
    "RetryPolicy",
    "run_batch",
    "run_bench",
    "run_chaos",
    "run_fingerprint",
    "run_with_watchdog",
    "RunJournal",
    "schedule_block_resilient",
    "SupervisedPool",
    "SupervisorStats",
    "write_bench",
]
