"""Heuristic forensics: which heuristic actually decides?

The paper's future work #2 asks for "characterizing the attributes of
larger basic blocks that enable certain heuristics to outperform
others".  The first step is knowing which heuristic *acts*: in a
winnowing priority, each pick is decided by the first rank at which
the chosen candidate beats every rival — or by nothing at all (the
original-order tie break).

Feed :func:`deciding_rank` the :class:`~repro.scheduling.
list_scheduler.Decision` records of a scheduling run (winnowing
priorities produce tuple values) and aggregate with
:func:`decision_histogram`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.scheduling.list_scheduler import Decision


def deciding_rank(decision: Decision) -> int | None:
    """The winnowing rank (0-based) that decided one pick.

    Returns None when the pick fell through every rank to the
    original-order tie break, or when there was no choice (a single
    candidate).  Requires tuple-valued (winnowing) priorities.
    """
    if len(decision.candidates) < 2:
        return None
    chosen = decision.priorities[decision.chosen]
    if not isinstance(chosen, tuple):
        raise TypeError("deciding_rank needs winnowing (tuple) priorities")
    rivals = [decision.priorities[c] for c in decision.candidates
              if c != decision.chosen]
    for rank in range(len(chosen)):
        if all(rival[:rank + 1] < chosen[:rank + 1] for rival in rivals):
            return rank
    return None


def decision_histogram(decisions: Iterable[Decision],
                       term_names: Sequence[str]) -> dict[str, int]:
    """Histogram of deciding heuristics over a run.

    Args:
        decisions: recorded picks (winnowing priorities).
        term_names: names of the priority's terms, rank order.

    Returns:
        Mapping term name (plus ``"original order"`` and
        ``"no choice"``) to pick counts.
    """
    counts: Counter[str] = Counter()
    for decision in decisions:
        if len(decision.candidates) < 2:
            counts["no choice"] += 1
            continue
        rank = deciding_rank(decision)
        if rank is None:
            counts["original order"] += 1
        else:
            counts[term_names[rank]] += 1
    return {name: counts.get(name, 0)
            for name in (*term_names, "original order", "no choice")}
