"""Text Gantt charts for schedules.

A quick visual check of where the stalls went: one row per
instruction, one column per cycle, ``#`` for the issue cycle, ``=``
while the operation is still executing, ``.`` for idle columns.
"""

from __future__ import annotations

from repro.dag.graph import DagNode
from repro.machine.model import MachineModel
from repro.scheduling.timing import ScheduleTiming


def render_gantt(order: list[DagNode], timing: ScheduleTiming,
                 machine: MachineModel, max_width: int = 100) -> str:
    """Render a schedule as a text Gantt chart.

    Args:
        order: the scheduled nodes.
        timing: their issue times (from :func:`simulate`).
        machine: supplies execution times for the bar lengths.
        max_width: truncate charts wider than this many cycles.

    Returns:
        A multi-line chart; empty schedules render as a single note.
    """
    if not order:
        return "(empty schedule)"
    makespan = timing.makespan
    width = min(makespan, max_width)
    truncated = makespan > max_width
    label_width = max(len(node.instr.render()) if node.instr else 7
                      for node in order)
    label_width = min(label_width, 32)

    lines = []
    ruler = " " * (label_width + 2)
    ruler += "".join(str(c // 10 % 10) if c % 10 == 0 else " "
                     for c in range(width))
    lines.append(ruler)
    for node, issue in zip(order, timing.issue_times):
        text = node.instr.render() if node.instr else "<dummy>"
        if len(text) > label_width:
            text = text[:label_width - 1] + "~"
        exec_time = (machine.execution_time(node.instr)
                     if node.instr else 1)
        row = []
        for cycle in range(width):
            if cycle == issue:
                row.append("#")
            elif issue < cycle < issue + exec_time:
                row.append("=")
            else:
                row.append(".")
        suffix = "+" if truncated else ""
        lines.append(f"{text.ljust(label_width)}  {''.join(row)}{suffix}")
    lines.append(f"makespan: {makespan} cycles"
                 + (" (chart truncated)" if truncated else ""))
    return "\n".join(lines)
