"""Quantitative paper-vs-measured shape comparison.

Absolute 1991 numbers are not reproducible; the *shape* is: which
benchmark is most expensive, by roughly what factor, where the
ordering crosses over.  This module turns "the shape holds" into
numbers:

* :func:`rank_correlation` -- Spearman rank correlation between a
  measured series and the paper's (1.0 = identical ordering);
* :func:`log_ratio_spread` -- how far the measured/paper ratios vary
  across a series (0 = one constant scale factor separates them);
* :func:`comparison_rows` -- per-item ratio table for reports.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def rank_correlation(measured: Sequence[float],
                     paper: Sequence[float]) -> float:
    """Spearman rank correlation between two equal-length series.

    Raises:
        ValueError: on length mismatch or fewer than 3 points.
    """
    if len(measured) != len(paper):
        raise ValueError("series lengths differ")
    if len(measured) < 3:
        raise ValueError("need at least 3 points")
    from scipy.stats import spearmanr
    rho, _ = spearmanr(list(measured), list(paper))
    return float(rho)


def log_ratio_spread(measured: Sequence[float],
                     paper: Sequence[float]) -> float:
    """Std-dev of log10(measured/paper) across the series.

    0 means a single constant factor maps the paper's numbers onto the
    measurements (a perfect shape match); values around 0.3 mean the
    per-item factors wander within about 2x of each other.

    Raises:
        ValueError: on length mismatch or non-positive entries.
    """
    if len(measured) != len(paper):
        raise ValueError("series lengths differ")
    logs = []
    for m, p in zip(measured, paper):
        if m <= 0 or p <= 0:
            raise ValueError("entries must be positive")
        logs.append(math.log10(m / p))
    mean = sum(logs) / len(logs)
    return math.sqrt(sum((x - mean) ** 2 for x in logs) / len(logs))


def comparison_rows(measured: Mapping[str, float],
                    paper: Mapping[str, float]) -> list[dict]:
    """Per-item measured/paper/ratio rows (shared keys, paper order)."""
    rows = []
    for key, paper_value in paper.items():
        if key not in measured:
            continue
        measured_value = measured[key]
        ratio = (measured_value / paper_value if paper_value else
                 float("inf"))
        rows.append({
            "item": key,
            "measured": measured_value,
            "paper": paper_value,
            "ratio": round(ratio, 3),
        })
    return rows
