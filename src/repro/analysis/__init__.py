"""Regeneration of the paper's tables as structured rows + text."""

from repro.analysis.tables import (
    table1_rows,
    table2_rows,
    table3_row,
    table3_rows,
    table45_row,
)
from repro.analysis.report import format_table, render_rows
from repro.analysis.gantt import render_gantt
from repro.analysis.decisions import deciding_rank, decision_histogram
from repro.analysis.compare import (
    comparison_rows,
    log_ratio_spread,
    rank_correlation,
)

__all__ = [
    "render_gantt",
    "deciding_rank",
    "decision_histogram",
    "comparison_rows",
    "log_ratio_spread",
    "rank_correlation",
    "table1_rows",
    "table2_rows",
    "table3_row",
    "table3_rows",
    "table45_row",
    "format_table",
    "render_rows",
]
