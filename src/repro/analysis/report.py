"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: list[str], rows: list[list[Any]],
                 title: str | None = None) -> str:
    """Align a header + rows into a monospace table."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Iterable[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def render_rows(rows: list[dict[str, Any]], title: str | None = None) -> str:
    """Render a list of uniform dict rows (keys become headers)."""
    if not rows:
        return title or "(no rows)"
    headers = list(rows[0].keys())
    table = [[row.get(h, "") for h in headers] for row in rows]
    return format_table(headers, table, title)
