"""Row builders for every table in the paper.

Each ``tableN_*`` function returns plain dict rows so benchmarks and
tests can both assert on values and print them with
:func:`repro.analysis.report.render_rows`.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.base import DagBuilder
from repro.heuristics.base import PassKind
from repro.heuristics.catalog import CATALOG
from repro.machine.model import MachineModel
from repro.pipeline import PipelineResult, run_pipeline


def table1_rows() -> list[dict]:
    """Table 1: the heuristic catalog with its classification."""
    rows = []
    for h in CATALOG:
        rows.append({
            "category": h.category.value,
            "heuristic": h.title + (" **" if h.transitive_sensitive else ""),
            "basis": "timing" if h.timing_based else "relationship",
            "pass": h.pass_kind.value,
        })
    return rows


def table2_rows(algorithms) -> list[dict]:
    """Table 2: the six published algorithms' analysis matrix.

    Args:
        algorithms: iterable of :class:`PublishedAlgorithm` *classes*.
    """
    rows = []
    for cls in algorithms:
        rows.append({
            "algorithm": cls.name,
            "dag pass": cls.dag_pass,
            "dag algorithm": cls.dag_algorithm,
            "sched pass": cls.sched_pass,
            "combination": "priority fn" if cls.priority_fn else "winnowing",
            "heuristics": "; ".join(f"{rank} {title}"
                                    for rank, title in cls.ranking),
        })
    return rows


def table3_row(name: str, blocks: list[BasicBlock]) -> dict:
    """Table 3: structural data for one benchmark (approach-independent)."""
    sizes = [b.size for b in blocks if b.size]
    mem_counts = [len(b.unique_memory_exprs()) for b in blocks if b.size]
    total = sum(sizes)
    return {
        "benchmark": name,
        "blocks": len(sizes),
        "insts": total,
        "insts/bb max": max(sizes, default=0),
        "insts/bb avg": round(total / len(sizes), 2) if sizes else 0.0,
        "memexpr/bb max": max(mem_counts, default=0),
        "memexpr/bb avg": round(sum(mem_counts) / len(mem_counts), 2)
        if mem_counts else 0.0,
    }


def table3_rows(benchmarks: dict[str, list[BasicBlock]]) -> list[dict]:
    """Table 3 for several benchmarks at once."""
    return [table3_row(name, blocks) for name, blocks in benchmarks.items()]


def table45_row(name: str, blocks: list[BasicBlock],
                machine: MachineModel,
                builder_factory: Callable[[], DagBuilder]) -> dict:
    """One row of Table 4 (n**2) or Table 5 (table building).

    Runs the section 6 pipeline -- DAG construction, intermediate
    backward heuristic pass, forward scheduling -- over all blocks,
    reporting wall-clock seconds, the structural statistics, and the
    machine-independent work counters.
    """
    start = time.perf_counter()
    result: PipelineResult = run_pipeline(blocks, machine, builder_factory)
    elapsed = time.perf_counter() - start
    stats = result.dag_stats
    return {
        "benchmark": name,
        "run time (s)": round(elapsed, 3),
        "children max": stats.max_children,
        "children avg": round(stats.avg_children, 2),
        "arcs/bb max": stats.max_arcs_per_block,
        "arcs/bb avg": round(stats.avg_arcs_per_block, 2),
        "comparisons": result.build_stats.comparisons,
        "table probes": result.build_stats.table_probes,
        "makespan": result.total_makespan,
    }
