"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from scheduling errors when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AsmSyntaxError(ReproError):
    """Raised when assembly text cannot be tokenized or parsed.

    Attributes:
        line_number: 1-based line number of the offending line, if known.
        line_text: the raw text of the offending line, if known.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line_text: str | None = None) -> None:
        self.line_number = line_number
        self.line_text = line_text
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class UnknownOpcodeError(AsmSyntaxError):
    """Raised when an instruction mnemonic is not in the opcode table."""


class OperandError(AsmSyntaxError):
    """Raised when an instruction has the wrong operands for its opcode."""


class CfgError(ReproError):
    """Raised for malformed control-flow constructs (e.g. duplicate labels)."""


class DagError(ReproError):
    """Raised for structural DAG violations (e.g. an arc creating a cycle)."""


class SchedulingError(ReproError):
    """Raised when a scheduler cannot produce a valid schedule."""


class WorkloadError(ReproError):
    """Raised when a synthetic workload profile is inconsistent."""
