"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from scheduling errors when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AsmSyntaxError(ReproError):
    """Raised when assembly text cannot be tokenized or parsed.

    Attributes:
        line_number: 1-based line number of the offending line, if known.
        line_text: the raw text of the offending construct, if known.
        column: 1-based column of the offending construct, if known.
        filename: source name of the offending file, if known.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line_text: str | None = None,
                 column: int | None = None,
                 filename: str | None = None) -> None:
        self.line_number = line_number
        self.line_text = line_text
        self.column = column
        self.filename = filename
        if line_number is not None:
            if filename is not None:
                where = f"{filename}:{line_number}"
                if column is not None:
                    where += f":{column}"
                message = f"{where}: {message}"
            elif column is not None:
                message = f"line {line_number}, col {column}: {message}"
            else:
                message = f"line {line_number}: {message}"
        super().__init__(message)


class UnknownOpcodeError(AsmSyntaxError):
    """Raised when an instruction mnemonic is not in the opcode table."""


class OperandError(AsmSyntaxError):
    """Raised when an instruction has the wrong operands for its opcode."""


class CfgError(ReproError):
    """Raised for malformed control-flow constructs (e.g. duplicate labels)."""


class DagError(ReproError):
    """Raised for structural DAG violations (e.g. an arc creating a cycle)."""


class SchedulingError(ReproError):
    """Raised when a scheduler cannot produce a valid schedule."""


class VerificationError(ReproError):
    """Raised when a schedule fails independent verification.

    Attributes:
        block: label or index description of the offending block.
        check: name of the verification check that failed
            ("completeness", "dependence-order", "timing",
            "semantics").
        detail: human-readable description naming the offending
            node, arc, or instruction.
    """

    def __init__(self, message: str, block: str | None = None,
                 check: str | None = None,
                 detail: str | None = None) -> None:
        self.block = block
        self.check = check
        self.detail = detail
        if block is not None:
            message = f"block {block}: {message}"
        super().__init__(message)


class BuilderMismatchError(ReproError):
    """Raised when two DAG construction algorithms disagree.

    Every builder must induce the same dependence closure as the
    compare-against-all reference; a mismatch means one of them
    dropped (or invented) an ordering constraint.

    Attributes:
        builder: display name of the disagreeing builder.
        node: id of the first node whose descendant set differs,
            if known.
    """

    def __init__(self, message: str, builder: str | None = None,
                 node: int | None = None) -> None:
        self.builder = builder
        self.node = node
        super().__init__(message)


class BlockTimeout(ReproError):
    """Raised when a block exceeds its watchdog budget.

    The resilient batch runner (:mod:`repro.runner`) converts runaway
    DAG construction or scheduling into this typed error instead of a
    hang, so a fallback chain can take over.

    Attributes:
        block: label or index description of the offending block.
        budget: which budget tripped ("wall-clock" or "work").
        limit: the configured budget value.
        spent: how much was consumed when the watchdog fired.
    """

    def __init__(self, message: str, block: str | None = None,
                 budget: str | None = None,
                 limit: float | None = None,
                 spent: float | None = None) -> None:
        self.block = block
        self.budget = budget
        self.limit = limit
        self.spent = spent
        if block is not None:
            message = f"block {block}: {message}"
        super().__init__(message)


class BatchInterrupted(ReproError):
    """Raised when a batch run is stopped by SIGINT/SIGTERM.

    The runner converts the interrupt into this typed error *after*
    shutting down its worker pool and leaving the checkpoint journal
    flushed and fsynced, so the run is always resumable.  The CLI maps
    it to exit status 130 (the shell convention for SIGINT), distinct
    from a hard failure.

    Attributes:
        journal_path: path of the checkpoint journal, if one was open.
        n_completed: blocks whose outcomes were recorded before the
            interrupt.
        n_total: blocks the run was asked to process.
    """

    def __init__(self, message: str, journal_path: str | None = None,
                 n_completed: int = 0, n_total: int = 0) -> None:
        self.journal_path = journal_path
        self.n_completed = n_completed
        self.n_total = n_total
        super().__init__(message)


class JournalError(ReproError):
    """Raised when a run journal cannot be used.

    Covers an unreadable or corrupt journal file and a fingerprint
    mismatch (resuming against a different input file, machine model,
    builder chain, or window than the journal records).  Corruption on
    a *non-trailing* line always raises: only the torn final write of
    a killed run is ignorable, anything earlier would silently skip
    blocks on ``--resume``.
    """


class ServeError(ReproError):
    """Base class for scheduling-service failures (:mod:`repro.serve`).

    Covers malformed wire messages, unusable listen addresses, and
    server-side request failures that are not typed more precisely
    below.
    """


class ProtocolError(ServeError):
    """Raised for a malformed or unsupported wire message.

    The server maps this to a ``{"type": "error"}`` response frame
    (the request never enters admission), never to a dropped
    connection.
    """


class RequestRejected(ServeError):
    """Raised when admission control refuses a request.

    A typed 429-style rejection -- the request was *not* queued and no
    work was started.  Never silent: the server always answers with a
    ``{"type": "rejected"}`` frame carrying the reason and a
    ``retry_after_s`` hint.

    Attributes:
        reason: rejection code ("queue-full", "rate-limited",
            "tenant-budget-exhausted", "draining",
            "request-too-large", "duplicate-in-flight", or
            "overload").
        retry_after_s: seconds after which a retry may be admitted
            (None when retrying cannot help, e.g. an exhausted tenant
            work budget).
        tenant: the tenant the rejection was charged to.
    """

    def __init__(self, message: str, reason: str,
                 retry_after_s: float | None = None,
                 tenant: str | None = None) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.tenant = tenant
        super().__init__(message)


class DeadlineExceeded(ServeError):
    """Raised when a request's deadline expires mid-batch.

    The serving engine converts this into partial results plus a typed
    timeout record: every block completed before the deadline is
    streamed normally, every remaining block is shed with an explicit
    ``{"type": "shed"}`` frame, and the request summary accounts for
    all of them (scheduled + degraded + shed = total).

    Attributes:
        deadline_s: the request's deadline budget, in seconds.
        elapsed_s: wall-clock seconds spent when the deadline tripped.
        n_shed: blocks shed because the deadline expired.
    """

    def __init__(self, message: str, deadline_s: float | None = None,
                 elapsed_s: float | None = None,
                 n_shed: int = 0) -> None:
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.n_shed = n_shed
        super().__init__(message)


class SupervisorError(ServeError):
    """Raised when the serve supervisor detects a crash loop.

    More than ``max_restarts`` unexpected daemon exits inside the
    sliding window means the daemon is broken, not unlucky; the
    supervisor stops restarting and the CLI exits 1.  The WAL and
    warm-state snapshots are left untouched for ``repro fsck`` and a
    later supervised restart.

    Attributes:
        restarts: unexpected exits observed inside the window.
        window_s: the sliding window, in seconds.
    """

    def __init__(self, message: str, restarts: int | None = None,
                 window_s: float | None = None) -> None:
        self.restarts = restarts
        self.window_s = window_s
        super().__init__(message)


class WorkloadError(ReproError):
    """Raised when a synthetic workload profile is inconsistent."""
