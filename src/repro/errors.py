"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from scheduling errors when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AsmSyntaxError(ReproError):
    """Raised when assembly text cannot be tokenized or parsed.

    Attributes:
        line_number: 1-based line number of the offending line, if known.
        line_text: the raw text of the offending line, if known.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line_text: str | None = None) -> None:
        self.line_number = line_number
        self.line_text = line_text
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class UnknownOpcodeError(AsmSyntaxError):
    """Raised when an instruction mnemonic is not in the opcode table."""


class OperandError(AsmSyntaxError):
    """Raised when an instruction has the wrong operands for its opcode."""


class CfgError(ReproError):
    """Raised for malformed control-flow constructs (e.g. duplicate labels)."""


class DagError(ReproError):
    """Raised for structural DAG violations (e.g. an arc creating a cycle)."""


class SchedulingError(ReproError):
    """Raised when a scheduler cannot produce a valid schedule."""


class VerificationError(ReproError):
    """Raised when a schedule fails independent verification.

    Attributes:
        block: label or index description of the offending block.
        check: name of the verification check that failed
            ("completeness", "dependence-order", "timing",
            "semantics").
        detail: human-readable description naming the offending
            node, arc, or instruction.
    """

    def __init__(self, message: str, block: str | None = None,
                 check: str | None = None,
                 detail: str | None = None) -> None:
        self.block = block
        self.check = check
        self.detail = detail
        if block is not None:
            message = f"block {block}: {message}"
        super().__init__(message)


class BuilderMismatchError(ReproError):
    """Raised when two DAG construction algorithms disagree.

    Every builder must induce the same dependence closure as the
    compare-against-all reference; a mismatch means one of them
    dropped (or invented) an ordering constraint.

    Attributes:
        builder: display name of the disagreeing builder.
        node: id of the first node whose descendant set differs,
            if known.
    """

    def __init__(self, message: str, builder: str | None = None,
                 node: int | None = None) -> None:
        self.builder = builder
        self.node = node
        super().__init__(message)


class WorkloadError(ReproError):
    """Raised when a synthetic workload profile is inconsistent."""
