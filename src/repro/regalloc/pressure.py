"""Register pressure of an instruction order.

Used by the prepass-scheduling experiments: a scheduler that hoists
all loads to the top of the block lengthens live ranges and raises the
maximum number of simultaneously live registers -- the quantity the
#registers-born/killed/liveness heuristics try to control.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.regalloc.liveness import block_liveness


def pressure_profile(instructions: list[Instruction]) -> list[int]:
    """Simultaneously-live register count after each position."""
    info = block_liveness(instructions)
    return [len(s) for s in info.live_below]


def max_pressure(instructions: list[Instruction]) -> int:
    """Maximum simultaneous register pressure over the sequence."""
    profile = pressure_profile(instructions)
    return max(profile, default=0)
