"""Block-local register liveness.

Prepass scheduling cares about the number of simultaneously live
values (paper section 3, register-usage heuristics).  This module
computes, for an instruction sequence, which registers are live below
each position -- the standard backward dataflow restricted to one
block, with nothing assumed live out (the paper's algorithms are
block-local; cross-block liveness is its future-work item 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.isa.resources import ResourceKind, defs_and_uses


@dataclass(frozen=True)
class LivenessInfo:
    """Liveness of one instruction sequence.

    Attributes:
        live_below: for each position i, the set of register names
            live immediately *after* instruction i executes.
        births: per position, registers this instruction defines that
            are used later.
        deaths: per position, registers whose last use is here.
    """

    live_below: tuple[frozenset[str], ...]
    births: tuple[frozenset[str], ...]
    deaths: tuple[frozenset[str], ...]


def _reg_names(resources) -> set[str]:
    return {r.name for r in resources if r.kind is ResourceKind.REG}


def block_liveness(instructions: list[Instruction]) -> LivenessInfo:
    """Compute block-local liveness for an instruction sequence."""
    n = len(instructions)
    live_below: list[frozenset[str]] = [frozenset()] * n
    births: list[frozenset[str]] = [frozenset()] * n
    deaths: list[frozenset[str]] = [frozenset()] * n
    live: set[str] = set()
    for i in range(n - 1, -1, -1):
        live_below[i] = frozenset(live)
        defs, uses = defs_and_uses(instructions[i])
        reg_defs, reg_uses = _reg_names(defs), _reg_names(uses)
        births[i] = frozenset(reg_defs & live)
        live -= reg_defs
        deaths[i] = frozenset(name for name in reg_uses if name not in live)
        live |= reg_uses
    return LivenessInfo(tuple(live_below), tuple(births), tuple(deaths))
