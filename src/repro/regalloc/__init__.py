"""Register liveness and pressure (substrate for prepass scheduling)."""

from repro.regalloc.liveness import block_liveness, LivenessInfo
from repro.regalloc.pressure import max_pressure, pressure_profile

__all__ = ["block_liveness", "LivenessInfo", "max_pressure",
           "pressure_profile"]
