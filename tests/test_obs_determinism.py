"""Observability must never change results: jobs-N determinism tests.

The contract under test (docs/observability.md): turning on ``--trace``
or ``--metrics`` changes no schedule, journal line, or stdout byte, and
a ``--jobs N`` run produces the same *stable* metrics snapshot and the
same structural span tree as a serial run.
"""

import json
import subprocess
import sys

import pytest

from repro.asm import parse_asm
from repro.cfg import apply_window, partition_blocks
from repro.obs import MetricsRegistry, NULL_TRACER, Tracer, span_tree
from repro.runner import run_batch
from repro.workloads import KERNELS, kernel_source


@pytest.fixture
def blocks():
    source = "\n".join(kernel_source(k) for k in sorted(KERNELS))
    program = parse_asm(source, name="all-kernels")
    return apply_window(partition_blocks(program), 16)


def traced_run(blocks, machine, jobs):
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = run_batch(blocks, machine, verify=True, jobs=jobs,
                       tracer=tracer, metrics=metrics)
    return result, tracer, metrics


def records(result):
    return [json.dumps(o.to_record(), sort_keys=True)
            for o in result.outcomes]


class TestJobsDeterminism:
    def test_stable_metrics_identical_jobs_1_vs_4(self, machine,
                                                  blocks):
        _, _, serial = traced_run(blocks, machine, jobs=1)
        _, _, parallel = traced_run(blocks, machine, jobs=4)
        one, four = serial.snapshot(), parallel.snapshot()
        assert json.dumps(one["stable"], sort_keys=True) \
            == json.dumps(four["stable"], sort_keys=True)
        assert one["schema_version"] == four["schema_version"]
        # the snapshot actually measured something
        blocks_total = one["stable"]["repro_blocks_total"]
        assert blocks_total["values"][""] == len(blocks)

    def test_span_trees_identical_jobs_1_vs_4(self, machine, blocks):
        _, serial, _ = traced_run(blocks, machine, jobs=1)
        _, parallel, _ = traced_run(blocks, machine, jobs=4)
        assert span_tree(serial.entries) == span_tree(parallel.entries)
        # parallel entries carry real worker pids, serial ones "main"
        assert {e["worker"] for e in serial.entries} == {"main"}
        assert len({e["worker"] for e in parallel.entries}) > 1

    def test_instrumented_outcomes_match_plain(self, machine, blocks):
        plain = run_batch(blocks, machine, verify=True)
        traced, _, _ = traced_run(blocks, machine, jobs=4)
        assert records(plain) == records(traced)

    def test_stable_metrics_identical_jobs_1_vs_4_columnar(
            self, machine, blocks):
        # Same stability contract on the columnar fast path: the SoA
        # builders feed the same counters, so a 4-way columnar run's
        # stable section must be byte-identical to a serial one's.
        pytest.importorskip("numpy")

        def columnar_run(jobs):
            metrics = MetricsRegistry()
            run_batch(blocks, machine, verify=True, jobs=jobs,
                      metrics=metrics, columnar=True)
            return metrics.snapshot()

        one, four = columnar_run(1), columnar_run(4)
        assert json.dumps(one["stable"], sort_keys=True) \
            == json.dumps(four["stable"], sort_keys=True)

    def test_wall_seconds_confined_to_volatile(self, machine, blocks):
        _, _, metrics = traced_run(blocks, machine, jobs=1)
        snap = metrics.snapshot()
        assert "repro_block_wall_seconds_total" in snap["volatile"]
        assert not any("wall" in name or "seconds" in name
                       for name in snap["stable"])


class TestNullTracerPath:
    def test_default_run_records_nothing(self, machine, blocks):
        before = len(NULL_TRACER.entries)
        run_batch(blocks[:2], machine, verify=True)
        assert len(NULL_TRACER.entries) == before == 0


class TestCLIByteIdentity:
    def run_cli(self, tmp_path, *extra):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "schedule",
             "examples/daxpy.s", "--verify", *extra],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src"}, cwd=".")

    def test_schedule_stdout_byte_identical_with_obs(self, tmp_path):
        plain = self.run_cli(tmp_path)
        traced = self.run_cli(
            tmp_path,
            "--trace", str(tmp_path / "trace.json"),
            "--metrics", str(tmp_path / "metrics.json"))
        assert traced.stdout == plain.stdout
        assert traced.stderr == plain.stderr

        # ...and the side-channel files are real and well-formed.
        chrome = json.loads((tmp_path / "trace.json").read_text())
        assert len(chrome["traceEvents"]) > 0
        snap = json.loads((tmp_path / "metrics.json").read_text())
        assert "repro_blocks_total" in snap["stable"]
