"""Tests for the clock-driven backward scheduler extension."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass, forward_pass
from repro.machine import generic_risc
from repro.scheduling.backward_timed import schedule_backward_timed
from repro.scheduling.list_scheduler import schedule_backward
from repro.scheduling.priority import weighted, winnowing
from repro.scheduling.timing import simulate, verify_order
from repro.workloads import generate_blocks, kernel_source, scaled_profile

SLACK_PRIORITY = weighted(("slack", 10**8), ("lst", 1))


def prepared(source: str, machine):
    blocks = partition_blocks(parse_asm(source))
    dag = TableForwardBuilder(machine).build(blocks[0]).dag
    forward_pass(dag)
    backward_pass(dag, require_est=False)
    return dag


class TestBackwardTimed:
    def test_legal_on_kernels(self):
        machine = generic_risc()
        for kernel in ("figure1", "daxpy", "livermore1", "dot_product"):
            dag = prepared(kernel_source(kernel), machine)
            result = schedule_backward_timed(dag, machine, SLACK_PRIORITY)
            verify_order(result.order, dag)

    def test_respects_reverse_delays(self):
        # The critical chain (divide -> add) is pushed to the front by
        # the reverse clock; the schedule is legal and no worse than
        # the untimed backward pass.
        machine = generic_risc()
        dag = prepared("""
            mov 1, %o0
            mov 2, %o1
            mov 3, %o2
            fdivd %f0, %f2, %f4
            faddd %f4, %f6, %f8
        """, machine)
        result = schedule_backward_timed(dag, machine, SLACK_PRIORITY)
        verify_order(result.order, dag)
        assert result.order[0].id == 3  # divide first
        untimed = schedule_backward(dag, machine, SLACK_PRIORITY)
        assert result.makespan <= untimed.makespan

    def test_terminator_pinned(self):
        machine = generic_risc()
        dag = prepared("mov 1, %o0\ncmp %o0, 2\nbe out", machine)
        result = schedule_backward_timed(dag, machine, SLACK_PRIORITY)
        assert result.order[-1].instr.opcode.mnemonic == "be"

    def test_never_worse_than_untimed_on_workload(self):
        machine = generic_risc()
        blocks = [b for b in generate_blocks(scaled_profile("lloops", 0.2))
                  if b.size >= 2]
        timed_total = untimed_total = 0
        for block in blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            forward_pass(dag)
            backward_pass(dag, require_est=False)
            timed_total += schedule_backward_timed(
                dag, machine, SLACK_PRIORITY).makespan
            untimed_total += schedule_backward(
                dag, machine, SLACK_PRIORITY).makespan
        assert timed_total <= untimed_total

    def test_deterministic(self):
        machine = generic_risc()
        dag = prepared(kernel_source("livermore1"), machine)
        r1 = schedule_backward_timed(dag, machine, SLACK_PRIORITY)
        r2 = schedule_backward_timed(dag, machine, SLACK_PRIORITY)
        assert [n.id for n in r1.order] == [n.id for n in r2.order]

    def test_on_schedule_hook(self):
        machine = generic_risc()
        dag = prepared("mov 1, %o0\nadd %o0, 1, %o1", machine)
        seen = []
        schedule_backward_timed(dag, machine, SLACK_PRIORITY,
                                on_schedule=lambda n, s: seen.append(n.id))
        assert seen == [1, 0]

    def test_matches_forward_quality_on_figure1(self):
        machine = generic_risc()
        dag = prepared(kernel_source("figure1"), machine)
        result = schedule_backward_timed(dag, machine, SLACK_PRIORITY)
        assert result.makespan == 24
