"""Tests for the serve layer: protocol, admission, deadline
propagation, the live daemon, loadtest, and serve chaos."""

import json
import socket
import time

import pytest

from repro.errors import ProtocolError, ReproError, RequestRejected
from repro.machine.presets import generic_risc
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.engine import request_blocks, run_request
from repro.serve.loadtest import (
    LoadtestConfig,
    generate_mix,
    mix_fingerprint,
    render_loadtest_report,
    run_loadtest,
)
from repro.serve.protocol import ScheduleRequest, parse_address
from repro.serve.server import BackgroundServer, ServeConfig


class FakeClock:
    """Deterministic monotonic clock: advances ``step`` per call."""

    def __init__(self, step=0.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestProtocol:
    def test_parse_address_forms(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("127.0.0.1:88") == ("tcp", "127.0.0.1", 88)
        assert parse_address("4242") == ("tcp", "127.0.0.1", 4242)

    def test_parse_address_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            parse_address("not-an-address")
        with pytest.raises(ProtocolError):
            parse_address("host:notaport")

    def test_bind_requires_loopback(self):
        # Connect side may name any host; bind side must be local.
        assert parse_address("0.0.0.0:9000") == ("tcp", "0.0.0.0", 9000)
        for ok in ("127.0.0.1:0", "localhost:0", "127.1.2.3:0", "0"):
            assert parse_address(ok, bind=True)[0] == "tcp"
        assert parse_address("unix:/tmp/x.sock", bind=True)[0] == "unix"
        with pytest.raises(ProtocolError, match="loopback"):
            parse_address("0.0.0.0:9000", bind=True)
        with pytest.raises(ProtocolError, match="loopback"):
            parse_address("192.168.1.7:9000", bind=True)

    def test_encode_decode_roundtrip(self):
        frame = protocol.done_frame("r1", {"n_blocks": 3})
        assert protocol.decode(protocol.encode(frame)) == frame

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"not json\n")

    def test_schedule_request_needs_exactly_one_payload(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            ScheduleRequest.from_message({"id": "a"})
        with pytest.raises(ProtocolError, match="exactly one"):
            ScheduleRequest.from_message(
                {"id": "a", "asm": "nop",
                 "workload": {"kernel": "daxpy"}})

    def test_schedule_request_validates_fields(self):
        with pytest.raises(ProtocolError, match="'id'"):
            ScheduleRequest.from_message({"asm": "nop"})
        with pytest.raises(ProtocolError, match="deadline_s"):
            ScheduleRequest.from_message(
                {"id": "a", "asm": "nop", "deadline_s": -1})
        with pytest.raises(ProtocolError, match="window"):
            ScheduleRequest.from_message(
                {"id": "a", "asm": "nop", "window": 0})
        with pytest.raises(ProtocolError, match="tenant"):
            ScheduleRequest.from_message(
                {"id": "a", "asm": "nop", "tenant": ""})

    def test_rejection_reasons_are_a_closed_set(self):
        assert len(protocol.REJECT_REASONS) == 7
        assert len(set(protocol.REJECT_REASONS)) == 7
        assert protocol.REJECT_DUPLICATE in protocol.REJECT_REASONS
        assert protocol.REJECT_OVERLOAD in protocol.REJECT_REASONS


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire() is None

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(3.0)


class TestAdmission:
    def controller(self, **kwargs):
        kwargs.setdefault("clock", FakeClock())
        return AdmissionController(**kwargs)

    def test_admits_and_releases_occupancy(self):
        ctrl = self.controller(max_active=1, max_queued=0)
        ticket = ctrl.admit("t", 3)
        assert ctrl.occupancy == 1
        ticket.release()
        ticket.release()  # idempotent
        assert ctrl.occupancy == 0

    def test_queue_full_is_typed(self):
        ctrl = self.controller(max_active=1, max_queued=1)
        ctrl.admit("t", 1)
        ctrl.admit("t", 1)
        with pytest.raises(RequestRejected) as info:
            ctrl.admit("t", 1)
        assert info.value.reason == "queue-full"

    def test_rate_limit_reports_retry_after(self):
        clock = FakeClock()
        ctrl = self.controller(tenant_rate=1.0, tenant_burst=1.0,
                               clock=clock)
        ctrl.admit("t", 1).release()
        with pytest.raises(RequestRejected) as info:
            ctrl.admit("t", 1)
        assert info.value.reason == "rate-limited"
        assert info.value.retry_after_s == pytest.approx(1.0)
        clock.advance(1.0)
        ctrl.admit("t", 1)  # token is back

    def test_tenant_budget_exhaustion(self):
        ctrl = self.controller(tenant_max_blocks=5)
        ctrl.admit("t", 4).release()
        with pytest.raises(RequestRejected) as info:
            ctrl.admit("t", 2)
        assert info.value.reason == "tenant-budget-exhausted"
        ctrl.admit("t", 1)  # exactly the remainder fits
        ctrl.admit("other", 5)  # budgets are per tenant

    def test_oversized_request_is_typed(self):
        ctrl = self.controller(max_request_blocks=10)
        with pytest.raises(RequestRejected) as info:
            ctrl.admit("t", 11)
        assert info.value.reason == "request-too-large"

    def test_drain_closes_admission(self):
        ctrl = self.controller()
        ctrl.start_drain()
        with pytest.raises(RequestRejected) as info:
            ctrl.admit("t", 1)
        assert info.value.reason == "draining"
        assert ctrl.would_admit() == (False, "draining")

    def test_rejected_requests_leave_no_residue(self):
        ctrl = self.controller(tenant_max_blocks=5,
                               max_request_blocks=10)
        with pytest.raises(RequestRejected):
            ctrl.admit("t", 11)
        snap = ctrl.snapshot()
        assert snap["occupancy"] == 0
        assert snap["tenants"]["t"]["blocks_charged"] == 0

    def test_rejections_hit_the_metrics_catalog(self):
        metrics = MetricsRegistry()
        ctrl = self.controller(max_request_blocks=1, metrics=metrics)
        with pytest.raises(RequestRejected):
            ctrl.admit("t", 5)
        snap = metrics.snapshot()["volatile"]
        values = snap["repro_rejected_requests_total"]["values"]
        assert values == {"reason=request-too-large,tenant=t": 1}


def _workload_request(rid="r", copies=4, **extra):
    return ScheduleRequest.from_message({
        "id": rid, "workload": {"kernel": "daxpy", "copies": copies},
        **extra})


class TestEngineDeadlines:
    """Satellite: deadline propagation, deterministically."""

    def run(self, request, clock, **kwargs):
        machine = generic_risc()
        blocks = request_blocks(request)
        frames = []
        summary = run_request(request, machine, blocks, frames.append,
                              clock=clock, **kwargs)
        return blocks, frames, summary

    def test_no_deadline_schedules_everything(self):
        blocks, frames, summary = self.run(
            _workload_request(copies=3), FakeClock(step=0.001))
        assert summary["n_blocks"] == len(blocks) == 3
        assert summary["shed"] == 0
        assert summary["deadline_met"] is None
        assert [f["type"] for f in frames] == ["block"] * 3

    def test_deadline_mid_batch_sheds_typed_remainder(self):
        # Each engine step advances the fake clock; a 1s deadline with
        # a large step expires after the first block completes.
        clock = FakeClock(step=0.3)
        blocks, frames, summary = self.run(
            _workload_request(copies=4, deadline_s=1.0), clock)
        kinds = [f["type"] for f in frames]
        assert "block" in kinds and "shed" in kinds
        assert summary["shed"] > 0
        assert summary["deadline_met"] is False
        assert summary["shed_reasons"] == {"deadline": summary["shed"]}
        # The accounting invariant: every block has one verdict.
        assert (summary["scheduled"] + summary["degraded"]
                + summary["quarantined"] + summary["shed"]
                == summary["n_blocks"] == 4)
        # Streamed frames agree with the summary.
        assert kinds.count("block") == (summary["scheduled"]
                                        + summary["degraded"])
        assert kinds.count("shed") == summary["shed"]
        for frame in frames:
            if frame["type"] == "shed":
                assert frame["reason"] == "deadline"

    def test_deadline_caps_per_block_wall_budget(self):
        # With 0.4s left on the deadline and a 30s per-block cap, the
        # block must run under a <= 0.4s watchdog: propagation means
        # the *tighter* limit wins.
        seen = {}
        import repro.serve.engine as engine_mod
        real = engine_mod.schedule_block_resilient

        def spy(block, machine, chain, budget=None, **kwargs):
            seen[block.index] = budget.wall_clock
            return real(block, machine, chain, budget=budget, **kwargs)

        clock = FakeClock(step=0.2)
        request = _workload_request(copies=2, deadline_s=10.0)
        machine = generic_risc()
        blocks = request_blocks(request)
        try:
            engine_mod.schedule_block_resilient = spy
            run_request(request, machine, blocks, lambda f: None,
                        clock=clock, block_wall_s=30.0)
        finally:
            engine_mod.schedule_block_resilient = real
        assert seen
        assert all(wall <= 10.0 for wall in seen.values())
        # Budgets shrink as the deadline burns down.
        walls = [seen[b.index] for b in blocks if b.index in seen]
        assert walls == sorted(walls, reverse=True)

    def test_cancellation_sheds_with_the_given_reason(self):
        state = {"calls": 0}

        def cancelled():
            state["calls"] += 1
            return "disconnect" if state["calls"] > 1 else None

        blocks, frames, summary = self.run(
            _workload_request(copies=3), FakeClock(step=0.001),
            cancelled=cancelled)
        assert summary["shed_reasons"] == {"disconnect": summary["shed"]}
        assert summary["shed"] > 0
        assert (summary["scheduled"] + summary["degraded"]
                + summary["quarantined"] + summary["shed"] == 3)

    def test_workload_expansion_windows_per_copy(self):
        blocks = request_blocks(_workload_request(copies=5))
        assert len(blocks) == 5

    def test_bad_workload_spec_is_typed(self):
        with pytest.raises(ReproError):
            request_blocks(_workload_request(copies=0))
        with pytest.raises(ReproError):
            request_blocks(ScheduleRequest.from_message(
                {"id": "x", "workload": {"kernel": "nope"}}))

    def test_oversized_copies_rejected_before_expansion(self):
        # A ~100-byte request must not expand to gigabytes before the
        # size check runs: the cap is enforced pre-expansion, so this
        # returns instantly instead of building a 10**9-copy string.
        with pytest.raises(RequestRejected) as exc:
            request_blocks(_workload_request(copies=10**9),
                           max_blocks=10_000)
        assert exc.value.reason == protocol.REJECT_TOO_LARGE
        # At the cap is still fine (no off-by-one).
        assert len(request_blocks(_workload_request(copies=3),
                                  max_blocks=3)) == 3


class _Client:
    """Minimal synchronous NDJSON client for server tests."""

    def __init__(self, address):
        kind = parse_address(address)
        if kind[0] == "unix":
            self.sock = socket.socket(socket.AF_UNIX)
            self.sock.connect(kind[1])
        else:
            self.sock = socket.create_connection(kind[1:])
        self.file = self.sock.makefile("rwb")

    def send(self, message):
        self.file.write(protocol.encode(message))
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def stream_until_terminal(self, rid):
        frames = []
        while True:
            frame = self.recv()
            if frame.get("id") != rid:
                continue
            frames.append(frame)
            if frame["type"] in ("done", "rejected", "error"):
                return frames

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(address=f"unix:{tmp_path}/serve.sock",
                         workers=2, max_queued=4, drain_grace_s=5.0)
    background = BackgroundServer(config).start()
    yield background
    if background._thread.is_alive():
        background.drain()


class TestServer:
    def test_schedule_streams_blocks_then_done(self, server):
        client = _Client(server.address)
        try:
            client.send({"op": "schedule", "id": "s1",
                         "workload": {"kernel": "daxpy", "copies": 3}})
            accepted = client.recv()
            assert accepted["type"] == "accepted"
            assert accepted["protocol"] == protocol.PROTOCOL_VERSION
            frames = client.stream_until_terminal("s1")
            kinds = [f["type"] for f in frames]
            assert kinds == ["block", "block", "block", "done"]
            summary = frames[-1]["summary"]
            assert summary["n_blocks"] == 3
            assert summary["scheduled"] + summary["degraded"] == 3
        finally:
            client.close()

    def test_schedule_accepts_raw_assembly(self, server):
        client = _Client(server.address)
        try:
            client.send({"op": "schedule", "id": "asm1",
                         "asm": "add %r1, %r2, %r3\n"
                                "sub %r3, %r1, %r4\n"})
            assert client.recv()["type"] == "accepted"
            frames = client.stream_until_terminal("asm1")
            assert frames[-1]["type"] == "done"
            assert frames[-1]["summary"]["n_blocks"] == 1
        finally:
            client.close()

    def test_malformed_line_gets_typed_error_not_silence(self, server):
        client = _Client(server.address)
        try:
            client.file.write(b"this is not json\n")
            client.file.flush()
            frame = client.recv()
            assert frame["type"] == "error"
            assert frame["error"] == "ProtocolError"
        finally:
            client.close()

    def test_unknown_op_and_unknown_machine_are_typed(self, server):
        client = _Client(server.address)
        try:
            client.send({"op": "frobnicate", "id": "x"})
            assert client.recv()["error"] == "unknown-op"
            client.send({"op": "schedule", "id": "m1",
                         "machine": "pdp11",
                         "workload": {"kernel": "daxpy"}})
            frame = client.stream_until_terminal("m1")[-1]
            assert frame["type"] == "error"
            assert frame["error"] == "unknown-machine"
        finally:
            client.close()

    def test_health_ready_stats_endpoints(self, server):
        client = _Client(server.address)
        try:
            client.send({"op": "health"})
            health = client.recv()
            assert health["type"] == "health" and health["ok"]
            assert "cache" in health
            client.send({"op": "ready"})
            ready = client.recv()
            assert ready == {"type": "ready", "ok": True,
                             "reason": None}
            client.send({"op": "stats"})
            stats = client.recv()
            assert stats["server"]["accounted"]
        finally:
            client.close()

    def test_deadline_sheds_stream_partial_results(self, server):
        client = _Client(server.address)
        try:
            client.send({"op": "schedule", "id": "d1",
                         "deadline_s": 1e-9,
                         "workload": {"kernel": "daxpy",
                                      "copies": 4}})
            assert client.recv()["type"] == "accepted"
            frames = client.stream_until_terminal("d1")
            summary = frames[-1]["summary"]
            assert summary["deadline_met"] is False
            assert summary["shed"] > 0
            assert (summary["scheduled"] + summary["degraded"]
                    + summary["quarantined"] + summary["shed"] == 4)
        finally:
            client.close()

    def test_drain_rejects_new_work_then_exits_clean(self, server):
        client = _Client(server.address)
        try:
            server.server.admission.start_drain()
            client.send({"op": "schedule", "id": "late",
                         "workload": {"kernel": "daxpy"}})
            frame = client.stream_until_terminal("late")[-1]
            assert frame["type"] == "rejected"
            assert frame["reason"] == "draining"
            assert frame["code"] == 429
        finally:
            client.close()
        server.drain()
        assert not server._thread.is_alive()

    def test_huge_workload_is_rejected_not_expanded(self, server):
        client = _Client(server.address)
        try:
            client.send({"op": "schedule", "id": "huge",
                         "workload": {"kernel": "daxpy",
                                      "copies": 10**9}})
            frame = client.stream_until_terminal("huge")[-1]
            assert frame["type"] == "rejected"
            assert frame["reason"] == "request-too-large"
            assert frame["code"] == 429
            # The pre-expansion rejection shows up in the same
            # admission books as admit()'s own.
            client.send({"op": "stats"})
            stats = client.recv()
            assert stats["admission"]["rejections_by_reason"][
                "request-too-large"] >= 1
        finally:
            client.close()

    def test_cache_entries_knob_reaches_the_engine(self, tmp_path):
        config = ServeConfig(address=f"unix:{tmp_path}/cache.sock",
                             workers=1, cache_entries=7)
        background = BackgroundServer(config).start()
        try:
            client = _Client(background.address)
            try:
                client.send({"op": "schedule", "id": "c1",
                             "workload": {"kernel": "daxpy",
                                          "copies": 2}})
                assert client.recv()["type"] == "accepted"
                frames = client.stream_until_terminal("c1")
                assert frames[-1]["type"] == "done"
                assert frames[-1]["summary"]["cache"]["max_entries"] == 7
            finally:
                client.close()
        finally:
            background.drain()

    def test_non_loopback_bind_is_refused(self):
        config = ServeConfig(address="0.0.0.0:0")
        with pytest.raises(ReproError, match="loopback"):
            BackgroundServer(config).start()

    def test_drain_backstop_abandons_wedged_request(self, tmp_path,
                                                    monkeypatch):
        # A request with no deadline and no block wall whose engine
        # never reaches a block boundary must not pin SIGTERM drain
        # forever: after drain_force_s it is abandoned and recorded.
        def wedged(request, machine, blocks, emit, **kwargs):
            time.sleep(2.0)
            return {"n_blocks": len(blocks), "scheduled": 0,
                    "degraded": 0, "quarantined": 0,
                    "shed": len(blocks)}

        monkeypatch.setattr("repro.serve.server.run_request", wedged)
        config = ServeConfig(address=f"unix:{tmp_path}/wedge.sock",
                             workers=1, block_wall_s=None,
                             drain_grace_s=0.05, drain_force_s=0.1)
        background = BackgroundServer(config).start()
        client = _Client(background.address)
        try:
            client.send({"op": "schedule", "id": "hang",
                         "workload": {"kernel": "daxpy"}})
            assert client.recv()["type"] == "accepted"
            start = time.monotonic()
            background.drain(timeout=10.0)
            assert time.monotonic() - start < 2.0, \
                "drain waited for the wedged engine instead of " \
                "abandoning it"
            assert background.server.drain_abandoned == ["hang"]
        finally:
            client.close()

    def test_queue_full_rejection_carries_429(self, tmp_path):
        config = ServeConfig(address=f"unix:{tmp_path}/tiny.sock",
                             workers=1, max_queued=0,
                             drain_grace_s=5.0)
        background = BackgroundServer(config).start()
        try:
            slow = _Client(background.address)
            fast = _Client(background.address)
            try:
                slow.send({"op": "schedule", "id": "big",
                           "workload": {"kernel": "livermore1",
                                        "copies": 40}})
                assert slow.recv()["type"] == "accepted"
                rejected = None
                for attempt in range(50):
                    fast.send({"op": "schedule",
                               "id": f"over-{attempt}",
                               "workload": {"kernel": "daxpy"}})
                    frame = fast.stream_until_terminal(
                        f"over-{attempt}")[-1]
                    if frame["type"] == "rejected":
                        rejected = frame
                        break
                assert rejected is not None, \
                    "overload never produced a typed rejection"
                assert rejected["reason"] == "queue-full"
                assert rejected["code"] == 429
                slow.stream_until_terminal("big")
            finally:
                slow.close()
                fast.close()
        finally:
            background.drain()


class TestLoadtest:
    def test_mix_is_seed_deterministic(self):
        a = LoadtestConfig(address="unix:/nowhere", seed=5)
        b = LoadtestConfig(address="unix:/elsewhere", seed=5)
        assert generate_mix(a) == generate_mix(b)
        assert mix_fingerprint(generate_mix(a)) == \
            mix_fingerprint(generate_mix(b))
        c = LoadtestConfig(address="unix:/nowhere", seed=6)
        assert mix_fingerprint(generate_mix(c)) != \
            mix_fingerprint(generate_mix(a))

    def test_loadtest_against_live_server(self, server):
        config = LoadtestConfig(address=server.address, seed=1,
                                requests=6, concurrency=3,
                                copies_max=2)
        metrics = MetricsRegistry()
        report = run_loadtest(config, metrics=metrics)
        assert report.sent == 6
        assert (report.completed + report.rejected + report.errored
                == report.sent)
        assert report.errored == 0
        assert report.completed > 0
        rendered = render_loadtest_report(report)
        assert "p50" in rendered and "error budget" in rendered
        snap = metrics.snapshot()["volatile"]
        assert "repro_requests_total" in snap

    def test_unreachable_daemon_is_a_typed_error(self, tmp_path):
        config = LoadtestConfig(
            address=f"unix:{tmp_path}/missing.sock", requests=1,
            concurrency=1)
        with pytest.raises(ReproError, match="cannot connect"):
            run_loadtest(config)


class TestServeChaos:
    def test_serve_chaos_smoke_zero_lost_zero_duplicated(self):
        from repro.serve.chaosserve import (
            ServeChaosConfig,
            run_serve_chaos,
        )
        report = run_serve_chaos(ServeChaosConfig(
            seed=2, requests=4, copies=4, exit_rate=0.25,
            kill_rate=0.1, disconnect_rate=0.4, storm_rate=0.4,
            storm_deadline_s=0.02))
        assert report.ok, report.to_dict()
        assert report.lost_blocks == 0
        assert report.duplicate_blocks == 0
        assert report.drained_ok
        assert report.blocks_admitted == (
            report.blocks_scheduled + report.blocks_degraded
            + report.blocks_quarantined + report.blocks_shed)

    def test_cli_chaos_serve_quick(self, capsys):
        from repro.cli import main
        lines = []
        status = main(["chaos", "--serve", "--quick", "--seed", "4"],
                      out=lines.append)
        assert status == 0
        text = "\n".join(lines)
        assert "lost blocks: 0" in text
        assert "double-scheduled: 0" in text
        assert "clean drain: yes" in text
