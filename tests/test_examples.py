"""Smoke tests: every example script runs and prints its key lines."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "DAG:" in out
        assert "scheduled order" in out
        assert "cycle" in out

    def test_transitive_arcs(self, capsys):
        out = run_example("transitive_arcs.py", capsys)
        assert "LOSES it" in out
        assert "keeps the 20-cycle arc" in out
        assert "wrong by 15" in out

    def test_compare_schedulers(self, capsys):
        out = run_example("compare_schedulers.py", capsys)
        assert "Warren" in out
        assert "figure1" in out
        assert "original" in out

    def test_large_blocks(self, capsys):
        out = run_example("large_blocks.py", capsys)
        assert "block size" in out
        assert "window" in out

    def test_prepass_pressure(self, capsys):
        out = run_example("prepass_pressure.py", capsys)
        assert "max pressure" in out

    def test_superscalar_pairing(self, capsys):
        out = run_example("superscalar_pairing.py", capsys)
        assert "alternate-type schedule" in out

    def test_minic_pipeline(self, capsys):
        out = run_example("minic_pipeline.py", capsys)
        assert "compiled to" in out
        assert "fdivd" in out
        assert "makespan" in out

    def test_all_examples_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {"quickstart.py", "transitive_arcs.py",
                  "compare_schedulers.py", "large_blocks.py",
                  "prepass_pressure.py", "superscalar_pairing.py",
                  "minic_pipeline.py"}
        assert scripts == tested
