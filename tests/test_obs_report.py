"""Golden tests for ``repro report`` (journal + metrics -> tables)."""

import json
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    load_journal_blocks,
    render_markdown,
    report_from,
)
from repro.obs.metrics import (
    record_block_structure,
    record_build,
    record_cache,
    record_outcome,
)


class _Stats:
    def __init__(self, comparisons=0, table_probes=0, alias_checks=0,
                 arcs_added=0, arcs_merged=0, arcs_suppressed=0,
                 bitmap_ops=0):
        self.comparisons = comparisons
        self.table_probes = table_probes
        self.alias_checks = alias_checks
        self.arcs_added = arcs_added
        self.arcs_merged = arcs_merged
        self.arcs_suppressed = arcs_suppressed
        self.bitmap_ops = bitmap_ops


class _Attempt:
    def __init__(self, builder, stage, work=None):
        self.builder, self.stage, self.work = builder, stage, work


class _Outcome:
    def __init__(self, makespan, original, attempts, degraded=False):
        self.makespan = makespan
        self.original_makespan = original
        self.attempts = attempts
        self.degraded = degraded


def fixture_snapshot():
    """A handcrafted two-block run: one clean, one degraded."""
    reg = MetricsRegistry()
    record_block_structure(reg, 10, 3)
    record_block_structure(reg, 4, 1)
    record_build(reg, "n2",
                 _Stats(comparisons=45, table_probes=90,
                        alias_checks=3, arcs_added=12, arcs_merged=2,
                        arcs_suppressed=1, bitmap_ops=7),
                 words_touched=5)
    record_outcome(reg, _Outcome(
        8, 14, [_Attempt("n2", "ok", work=145)]))
    record_outcome(reg, _Outcome(
        6, 6, [_Attempt("n2", "failed", work=20),
               _Attempt("table-forward", "failed", work=30)],
        degraded=True))
    record_cache(reg, 3, 1, entries=2, recipes=4)
    return reg.snapshot()


def fixture_journal(path):
    """A matching journal with fixed wall_s and one degraded block."""
    records = [
        {"type": "header", "fingerprint": "test"},
        {"type": "block", "index": 0, "label": "clean", "builder": "n2",
         "makespan": 8, "original_makespan": 14, "degraded": False,
         "wall_s": 0.25, "n_attempts": 1,
         "order": list(range(10)),
         "attempts": [{"builder": "n2", "stage": "ok",
                       "error": None}]},
        {"type": "block", "index": 1, "label": "stuck",
         "builder": None, "makespan": 6, "original_makespan": 6,
         "degraded": True, "wall_s": 0.5, "n_attempts": 2,
         "order": list(range(4)),
         "attempts": [
             {"builder": "n2", "stage": "failed",
              "error": "cycle detected"},
             {"builder": "table-forward", "stage": "failed",
              "error": "cycle detected"}]},
    ]
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return load_journal_blocks(str(path))


GOLDEN_MARKDOWN = """\
# Scheduling run report

Sources: journal, metrics

## Table 3 — benchmark structure

| quantity | value |
| --- | --- |
| blocks | 2 |
| insts | 14 |
| insts/bb max | 10 |
| insts/bb avg | 7 |
| memexpr/bb max | 3 |
| memexpr/bb avg | 2 |

## Table 4 — DAG construction work

| builder | blocks | comparisons | alias checks | arcs added | arcs merged | arcs suppressed |
| --- | --- | --- | --- | --- | --- | --- |
| n2 | 1 | 45 | 3 | 12 | 2 | 1 |

## Table 5 — table building and run times

| builder | table probes | bitmap ops | bitmap words | run time (s) | untimed blocks |
| --- | --- | --- | --- | --- | --- |
| (degraded) | 0 | 0 | 0 | 0.5 | 0 |
| n2 | 90 | 7 | 5 | 0.25 | 0 |

## Fallback and schedule quality

| quantity | value |
| --- | --- |
| degraded blocks | 1 |
| replayed blocks | 0 |
| wasted work | 20 |
| total makespan | 14 |
| total original makespan | 20 |
| speedup | 1.43 |

### Attempts by builder and stage

| series | count |
| --- | --- |
| builder=n2,stage=failed | 1 |
| builder=n2,stage=ok | 1 |
| builder=table-forward,stage=failed | 1 |

## Degraded blocks

- block 1 (stuck):
  - n2 -> failed: cycle detected
  - table-forward -> failed: cycle detected

## Pairwise cache

| quantity | value |
| --- | --- |
| hits | 3 |
| misses | 1 |
| hit rate | 0.75 |
| entries | 2 |
| recipes | 4 |
"""


class TestReportFrom:
    def test_needs_at_least_one_source(self):
        with pytest.raises(ReproError):
            report_from()

    def test_full_document(self, tmp_path):
        blocks = fixture_journal(tmp_path / "run.jsonl")
        report = report_from(blocks=blocks,
                             snapshot=fixture_snapshot())
        assert report["table3"]["blocks"] == 2
        assert report["table3"]["insts"] == 14
        assert report["table4"][0]["comparisons"] == 45
        t5 = {row["builder"]: row for row in report["table5"]}
        assert t5["n2"]["run time (s)"] == 0.25
        assert t5["(degraded)"]["run time (s)"] == 0.5
        assert report["fallback"]["degraded blocks"] == 1
        assert report["fallback"]["wasted work"] == 20
        assert report["degradations"][0]["label"] == "stuck"
        assert report["cache"]["hit rate"] == 0.75
        # the document is JSON-serializable as-is
        json.dumps(report)

    def test_journal_only_fallbacks(self, tmp_path):
        blocks = fixture_journal(tmp_path / "run.jsonl")
        report = report_from(blocks=blocks)
        assert report["table3"]["blocks"] == 2
        assert report["table3"]["insts/bb max"] == 10
        assert report["table3"]["memexpr/bb max"] is None
        assert report["fallback"]["total makespan"] == 14
        assert report["fallback"]["degraded blocks"] == 1
        assert report["fallback"]["attempts"][
            "builder=n2,stage=ok"] == 1
        assert report["table4"] == []
        assert report["cache"] is None

    def test_metrics_only(self):
        report = report_from(snapshot=fixture_snapshot())
        assert report["table3"]["blocks"] == 2
        assert report["table5"][0]["builder"] == "n2"
        assert report["table5"][0]["run time (s)"] is None
        assert report["degradations"] == []

    def test_untimed_blocks_counted_for_old_journals(self, tmp_path):
        blocks = fixture_journal(tmp_path / "run.jsonl")
        for record in blocks:
            record.pop("wall_s")
        report = report_from(blocks=blocks)
        t5 = {row["builder"]: row for row in report["table5"]}
        assert t5["n2"]["untimed blocks"] == 1
        assert t5["n2"]["run time (s)"] is None


class TestRenderMarkdown:
    def test_golden_full_report(self, tmp_path):
        blocks = fixture_journal(tmp_path / "run.jsonl")
        report = report_from(blocks=blocks,
                             snapshot=fixture_snapshot())
        assert render_markdown(report) == GOLDEN_MARKDOWN

    def test_empty_sections_render_placeholders(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text(json.dumps({"type": "header"}) + "\n")
        report = report_from(blocks=load_journal_blocks(str(path)))
        text = render_markdown(report)
        assert "(no data)" in text
        assert "(none)" in text
        assert "(no cache data)" in text


class TestLoadJournalBlocks:
    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "block"}\n')
        with pytest.raises(ReproError, match="header"):
            load_journal_blocks(str(path))

    def test_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(json.dumps({"type": "header"}) + "\n"
                        + json.dumps({"type": "block", "index": 0})
                        + "\n" + '{"type": "blo')
        assert len(load_journal_blocks(str(path))) == 1

    def test_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(json.dumps({"type": "header"}) + "\n"
                        + "not json\n"
                        + json.dumps({"type": "block", "index": 0})
                        + "\n")
        with pytest.raises(ReproError, match="corrupt"):
            load_journal_blocks(str(path))


class TestCLIReport:
    def test_live_report_from_schedule_run(self, tmp_path):
        env = {"PYTHONPATH": "src"}
        journal = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "schedule",
             "examples/daxpy.s", "--verify",
             "--journal", str(journal), "--metrics", str(metrics)],
            capture_output=True, text=True, check=True, env=env)
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "report",
             "--journal", str(journal), "--metrics", str(metrics),
             "--format", "both"],
            capture_output=True, text=True, check=True, env=env)
        assert "## Table 3" in result.stdout
        assert "## Table 4" in result.stdout
        assert "## Table 5" in result.stdout
        # --format both appends the JSON document after the Markdown
        payload = result.stdout[result.stdout.index("{"):]
        doc = json.loads(payload)
        assert doc["table3"]["blocks"] >= 1

    def test_report_without_sources_fails(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "report"],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src"})
        assert result.returncode != 0
