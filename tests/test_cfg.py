"""Tests for basic-block partitioning and instruction windows."""

import pytest

from repro.asm import parse_asm
from repro.cfg import apply_window, partition_blocks
from repro.cfg.basic_block import BasicBlock
from repro.isa.opcodes import InstructionClass


def blocks_of(source: str):
    return partition_blocks(parse_asm(source))


class TestPartitioning:
    def test_straight_line_is_one_block(self):
        blocks = blocks_of("add %o1, %o2, %o3\nsub %o3, 1, %o4\n")
        assert len(blocks) == 1
        assert blocks[0].size == 2

    def test_branch_ends_block(self):
        blocks = blocks_of("""
            cmp %o1, 0
            be out
            nop
            add %o1, 1, %o2
        out:
            nop
        """)
        # Block 0: cmp + be.  Block 1: delay-slot nop + add.  Block 2: out.
        assert [b.size for b in blocks] == [2, 2, 1]

    def test_delay_slot_counts_with_following_block(self):
        # The paper: "A delay slot instruction, including that for an
        # annulling branch, is included in the counts for the basic
        # block following the branch."
        blocks = blocks_of("ba out\nnop\nout: nop\n")
        assert blocks[0].instructions[-1].opcode.mnemonic == "ba"
        assert blocks[1].instructions[0].opcode.mnemonic == "nop"

    def test_annulled_branch_same_rule(self):
        blocks = blocks_of("be,a out\nadd %o1, 1, %o2\nout: nop\n")
        assert blocks[0].size == 1
        assert blocks[1].instructions[0].opcode.mnemonic == "add"

    def test_call_ends_block(self):
        blocks = blocks_of("call helper\nnop\nadd %o1, 1, %o2\n")
        assert blocks[0].size == 1
        assert blocks[1].size == 2

    def test_save_restore_end_blocks(self):
        blocks = blocks_of("""
            save %sp, -96, %sp
            add %i0, %i1, %l0
            restore %g0, %g0, %g0
            nop
        """)
        assert [b.size for b in blocks] == [1, 2, 1]

    def test_label_starts_block(self):
        blocks = blocks_of("nop\nmid: nop\nnop\n")
        assert [b.size for b in blocks] == [1, 2]
        assert blocks[1].label == "mid"

    def test_return_ends_block(self):
        blocks = blocks_of("retl\nnop\n")
        assert [b.size for b in blocks] == [1, 1]

    def test_every_instruction_in_exactly_one_block(self):
        source = """
        a:  cmp %o1, 0
            be b
            nop
            add %o1, 1, %o2
        b:  call x
            nop
            retl
            nop
        """
        program = parse_asm(source)
        blocks = partition_blocks(program)
        seen = [i.index for b in blocks for i in b.instructions]
        assert sorted(seen) == list(range(len(program)))
        assert len(seen) == len(set(seen))

    def test_blocks_numbered_consecutively(self):
        blocks = blocks_of("ba x\nnop\nx: ba y\nnop\ny: nop\n")
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_empty_program(self):
        assert blocks_of("") == []

    def test_terminator_property(self):
        blocks = blocks_of("cmp %o0, 1\nbe z\nnop\nz: nop")
        assert blocks[0].terminator is not None
        assert blocks[0].terminator.opcode.mnemonic == "be"
        assert blocks[1].terminator is None


class TestBlockHelpers:
    def test_unique_memory_exprs(self):
        block = blocks_of("""
            ld [%fp-8], %o0
            ld [%fp-8], %o1
            st %o0, [%fp-12]
            ld [counter], %o2
        """)[0]
        assert block.unique_memory_exprs() == {"%i6-8", "%i6-12", "counter"}

    def test_instruction_class_counts(self):
        block = blocks_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            faddd %f0, %f2, %f4
        """)[0]
        counts = block.instruction_class_counts()
        assert counts[InstructionClass.LOAD] == 1
        assert counts[InstructionClass.IALU] == 1
        assert counts[InstructionClass.FPADD] == 1

    def test_iteration_and_len(self):
        block = blocks_of("nop\nnop\n")[0]
        assert len(block) == 2
        assert len(list(block)) == 2


class TestWindows:
    def _block(self, n: int, index: int = 0) -> BasicBlock:
        program = parse_asm("\n".join("nop" for _ in range(n)))
        return BasicBlock(index, program.instructions)

    def test_no_window_returns_input(self):
        blocks = [self._block(10)]
        assert apply_window(blocks, None) is blocks

    def test_small_blocks_untouched(self):
        out = apply_window([self._block(10)], 20)
        assert [b.size for b in out] == [10]

    def test_split_exact_multiple(self):
        out = apply_window([self._block(20)], 10)
        assert [b.size for b in out] == [10, 10]

    def test_split_with_remainder(self):
        out = apply_window([self._block(25)], 10)
        assert [b.size for b in out] == [10, 10, 5]

    def test_windowed_from_backref(self):
        out = apply_window([self._block(25, index=3)], 10)
        assert all(b.windowed_from == 3 for b in out)

    def test_unsplit_blocks_have_no_backref(self):
        out = apply_window([self._block(5, index=1)], 10)
        assert out[0].windowed_from is None

    def test_renumbering(self):
        out = apply_window([self._block(25), self._block(5, 1)], 10)
        assert [b.index for b in out] == [0, 1, 2, 3]

    def test_instructions_preserved_in_order(self):
        block = self._block(25)
        out = apply_window([block], 10)
        flattened = [i for b in out for i in b.instructions]
        assert flattened == block.instructions

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            apply_window([self._block(5)], 0)

    def test_double_windowing_keeps_original_backref(self):
        out1 = apply_window([self._block(40, index=7)], 20)
        out2 = apply_window(out1, 10)
        assert all(b.windowed_from == 7 for b in out2)
