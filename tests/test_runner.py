"""Tests for the resilient batch runner (repro.runner)."""

import json
import time

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import CompareAllBuilder
from repro.errors import BlockTimeout, JournalError, ReproError
from repro.machine import generic_risc
from repro.runner import (
    DEFAULT_CHAIN,
    BatchResult,
    BlockOutcome,
    Budget,
    BudgetedStats,
    RunJournal,
    resolve_chain,
    run_batch,
    run_fingerprint,
    run_with_watchdog,
    schedule_block_resilient,
)
from repro.workloads import kernel_source


@pytest.fixture
def machine():
    return generic_risc()


@pytest.fixture
def blocks():
    return partition_blocks(parse_asm(kernel_source("daxpy")))


class _SleepingBuilder(CompareAllBuilder):
    """A builder that hangs: the injected wall-clock fault."""

    name = "sleeping"

    def _construct(self, dag, space, oracle, stats):
        time.sleep(60.0)


class _BrokenBuilder(CompareAllBuilder):
    """A builder that crashes with a ReproError."""

    name = "broken"

    def _construct(self, dag, space, oracle, stats):
        raise ReproError("synthetic construction fault")


class TestWatchdog:
    def test_unlimited_budget_runs_inline(self):
        assert Budget().unlimited
        assert run_with_watchdog(lambda: 42, Budget()) == 42
        assert run_with_watchdog(lambda: 42, None) == 42

    def test_work_budget_trips(self, machine, blocks):
        stats = BudgetedStats(max_work=3, block="b0")
        with pytest.raises(BlockTimeout) as info:
            CompareAllBuilder(machine).build(blocks[0], stats=stats)
        assert info.value.budget == "work"
        assert info.value.spent > info.value.limit == 3

    def test_work_budget_is_deterministic(self, machine, blocks):
        def trip_point():
            stats = BudgetedStats(max_work=10)
            with pytest.raises(BlockTimeout) as info:
                CompareAllBuilder(machine).build(blocks[0], stats=stats)
            return info.value.spent

        assert trip_point() == trip_point()

    def test_generous_budget_does_not_trip(self, machine, blocks):
        stats = BudgetedStats(max_work=10**9)
        outcome = CompareAllBuilder(machine).build(blocks[0], stats=stats)
        assert outcome.dag.n_arcs > 0
        assert stats.work > 0

    def test_wall_clock_trips_on_hang(self):
        budget = Budget(wall_clock=0.05)
        with pytest.raises(BlockTimeout) as info:
            run_with_watchdog(lambda: time.sleep(60), budget, block="b0")
        assert info.value.budget == "wall-clock"

    def test_wall_clock_propagates_result_and_errors(self):
        budget = Budget(wall_clock=5.0)
        assert run_with_watchdog(lambda: "ok", budget) == "ok"

        def boom():
            raise ReproError("inner")

        with pytest.raises(ReproError, match="inner"):
            run_with_watchdog(boom, budget)


class TestFallbackChain:
    def test_resolve_rejects_unknown_and_empty(self, machine):
        with pytest.raises(ReproError, match="unknown builder"):
            resolve_chain(["nope"], machine)
        with pytest.raises(ReproError, match="empty"):
            resolve_chain([], machine)

    def test_clean_block_uses_first_builder(self, machine, blocks):
        chain = resolve_chain(DEFAULT_CHAIN, machine)
        outcome = schedule_block_resilient(blocks[0], machine, chain)
        assert outcome.builder == DEFAULT_CHAIN[0]
        assert not outcome.degraded
        assert [a.stage for a in outcome.attempts] == ["ok"]
        assert sorted(outcome.order) == list(
            range(len(blocks[0].instructions)))

    def test_hanging_builder_falls_back(self, machine, blocks):
        chain = [("sleeping", lambda: _SleepingBuilder(machine)),
                 ("n2", lambda: CompareAllBuilder(machine))]
        outcome = schedule_block_resilient(
            blocks[0], machine, chain, budget=Budget(wall_clock=0.1))
        assert outcome.builder == "n2"
        assert [(a.builder, a.stage) for a in outcome.attempts] == [
            ("sleeping", "timeout"), ("n2", "ok")]
        assert "wall-clock" in outcome.attempts[0].error

    def test_broken_builder_falls_back(self, machine, blocks):
        chain = [("broken", lambda: _BrokenBuilder(machine)),
                 ("n2", lambda: CompareAllBuilder(machine))]
        outcome = schedule_block_resilient(blocks[0], machine, chain)
        assert outcome.builder == "n2"
        assert outcome.attempts[0].stage == "build"
        assert "synthetic construction fault" in outcome.attempts[0].error

    def test_all_builders_fail_degrades_to_original(self, machine, blocks):
        chain = [("broken", lambda: _BrokenBuilder(machine))]
        outcome = schedule_block_resilient(blocks[0], machine, chain)
        assert outcome.degraded
        assert outcome.builder is None
        assert outcome.order == list(range(len(blocks[0].instructions)))
        assert outcome.makespan == outcome.original_makespan
        assert outcome.attempts[-1].builder == "original-order"

    def test_tiny_work_budget_exhausts_chain(self, machine, blocks):
        chain = resolve_chain(DEFAULT_CHAIN, machine)
        outcome = schedule_block_resilient(
            blocks[0], machine, chain, budget=Budget(max_work=2))
        assert outcome.degraded
        assert [a.stage for a in outcome.attempts[:-1]] == \
            ["timeout"] * len(DEFAULT_CHAIN)


class TestBatch:
    def test_clean_batch(self, machine, blocks):
        result = run_batch(blocks, machine, verify=True)
        assert result.n_blocks == 2
        assert result.failures == []
        assert result.degraded_fraction == 0.0
        assert result.total_makespan < result.total_original_makespan
        assert result.speedup > 1.0
        assert result.build_stats.comparisons >= 0
        assert result.dag_stats.n_blocks == 2

    def test_degraded_batch_speedup_is_one(self, machine, blocks):
        result = run_batch(
            blocks, machine,
            chain_factories=[("broken",
                              lambda: _BrokenBuilder(machine))])
        assert result.degraded_fraction == 1.0
        assert result.degraded_makespan == result.total_makespan
        assert result.speedup == 1.0

    def test_partial_degradation_excluded_from_speedup(
            self, machine, blocks):
        calls = []

        def flaky():
            calls.append(None)
            if len(calls) == 1:
                return _BrokenBuilder(machine)
            return CompareAllBuilder(machine)

        result = run_batch(blocks, machine,
                           chain_factories=[("flaky", flaky)])
        assert len(result.failures) == 1
        scheduled = result.total_makespan - result.degraded_makespan
        original = (result.total_original_makespan
                    - result.degraded_makespan)
        assert result.speedup == original / scheduled

    def test_empty_batch(self, machine):
        result = run_batch([], machine)
        assert isinstance(result, BatchResult)
        assert result.n_blocks == 0
        assert result.speedup == 1.0
        assert result.degraded_fraction == 0.0


class TestJournal:
    def fingerprint(self):
        return run_fingerprint("text", "generic", DEFAULT_CHAIN,
                               window=None, verify=False)

    def test_fresh_resume_roundtrip(self, tmp_path, machine, blocks):
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, self.fingerprint()) as journal:
            first = run_batch(blocks, machine, journal=journal)
        with RunJournal.open_resume(path, self.fingerprint()) as journal:
            assert sorted(journal.completed) == \
                [o.index for o in first.outcomes]
            second = run_batch(blocks, machine, journal=journal)
        assert second.n_replayed == first.n_blocks
        assert second.total_makespan == first.total_makespan
        assert [o.order for o in second.outcomes] == \
            [o.order for o in first.outcomes]
        assert [[a.to_record() for a in o.attempts]
                for o in second.outcomes] == \
            [[a.to_record() for a in o.attempts]
             for o in first.outcomes]

    def test_replayed_outcomes_are_marked_dead(self, tmp_path, machine,
                                               blocks):
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, self.fingerprint()) as journal:
            run_batch(blocks, machine, journal=journal)
        with RunJournal.open_resume(path, self.fingerprint()) as journal:
            result = run_batch(blocks, machine, journal=journal)
        assert all(not o.live for o in result.outcomes)
        assert result.dag_stats.n_blocks == 0  # replays carry no stats

    def test_torn_final_line_is_ignored(self, tmp_path, machine, blocks):
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, self.fingerprint()) as journal:
            run_batch(blocks, machine, journal=journal)
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:2]) + '\n{"type": "blo')
        header, completed = RunJournal.load(path)
        assert sorted(completed) == [blocks[0].index]

    def test_mid_file_corruption_raises(self, tmp_path, machine, blocks):
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, self.fingerprint()) as journal:
            run_batch(blocks, machine, journal=journal)
        lines = open(path).read().splitlines()
        lines[1] = '{"type": "blo'
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt at line 2"):
            RunJournal.load(path)

    def test_blank_interior_line_raises(self, tmp_path, machine,
                                        blocks):
        # A blank line *between* records is a hole where a block
        # should be; resuming over it would silently skip blocks.
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, self.fingerprint()) as journal:
            run_batch(blocks, machine, journal=journal)
        lines = open(path).read().splitlines()
        assert len(lines) >= 3  # header + at least two records
        lines[1] = ""
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt at line 2"):
            RunJournal.load(path)

    def test_torn_final_line_with_trailing_blanks_is_tolerated(
            self, tmp_path, machine, blocks):
        # A killed run can leave a torn record followed by nothing
        # but whitespace; only *non-trailing* corruption is fatal.
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, self.fingerprint()) as journal:
            run_batch(blocks, machine, journal=journal)
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:2]) + '\n{"type": "blo\n\n')
        header, completed = RunJournal.load(path)
        assert sorted(completed) == [blocks[0].index]

    def test_fingerprint_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        RunJournal.open_fresh(path, self.fingerprint()).close()
        other = run_fingerprint("other text", "sparc", ("n2",),
                                window=4, verify=False)
        with pytest.raises(JournalError) as info:
            RunJournal.open_resume(path, other)
        message = str(info.value)
        assert "different run" in message
        for key in ("chain", "machine", "source_sha256", "window"):
            assert key in message

    def test_missing_record_field_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, self.fingerprint()) as journal:
            journal._handle.write(
                json.dumps({"type": "block", "index": 0}) + "\n")
        with pytest.raises(JournalError, match="missing field"):
            RunJournal.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read"):
            RunJournal.load(str(tmp_path / "absent.jsonl"))

    def test_outcome_record_roundtrip(self):
        outcome = BlockOutcome(
            index=3, label="loop", builder="n2", order=[1, 0, 2],
            makespan=7, original_makespan=9)
        restored = BlockOutcome.from_record(outcome.to_record())
        assert restored.index == 3
        assert restored.label == "loop"
        assert restored.order == [1, 0, 2]
        assert not restored.live


class TestResumeByteIdentical:
    """The acceptance criterion: kill a journaled run partway, resume,
    and get byte-identical CLI output."""

    def test_cli_resume_after_truncation(self, tmp_path):
        from repro.cli import main
        asm = tmp_path / "kernel.s"
        asm.write_text(kernel_source("livermore1"))
        journal = tmp_path / "run.jsonl"
        argv = ["schedule", str(asm), "--journal", str(journal),
                "--verify"]

        lines: list[str] = []
        assert main(argv, out=lines.append) == 0
        full = "\n".join(lines)

        # Simulate a kill after the first block: header + 1 record +
        # a torn partial write of the in-flight block.
        recorded = journal.read_text().splitlines()
        assert len(recorded) >= 3
        journal.write_text("\n".join(recorded[:2]) + '\n{"type": "bl')

        lines = []
        assert main(argv + ["--resume"], out=lines.append) == 0
        assert "\n".join(lines) == full
