"""End-to-end semantic validation of the whole-program transform.

The interpreter executes NOT-taken conditional branches (including the
annul-the-slot semantics of ``,a``), so any multi-block program whose
conditions all evaluate false runs linearly -- original and
transformed versions must reach identical final states, validating the
transform's delay-slot layout decisions, nop removal, and label
re-anchoring against real execution.
"""

import pytest

from repro.asm import parse_asm
from repro.interp import (
    MachineState,
    UnsupportedInstruction,
    execute,
)
from repro.machine import generic_risc
from repro.transform import schedule_program


def run_program(program) -> tuple:
    state = MachineState()
    state.write_int("%i6", 0x10000)
    return execute(program.instructions, state).snapshot()


class TestNotTakenBranches:
    def test_fall_through(self):
        program = parse_asm("""
            mov 1, %o0
            cmp %o0, 2
            be away
            nop
            mov 7, %o1
        """)
        state = execute(program.instructions, MachineState())
        assert state.read_int("%o1") == 7

    def test_taken_branch_raises(self):
        program = parse_asm("mov 2, %o0\ncmp %o0, 2\nbe away\nnop")
        with pytest.raises(UnsupportedInstruction):
            execute(program.instructions, MachineState())

    def test_bn_never_taken(self):
        program = parse_asm("bn away\nmov 3, %o0")
        state = execute(program.instructions, MachineState())
        assert state.read_int("%o0") == 3

    def test_annulled_not_taken_squashes_slot(self):
        program = parse_asm("""
            mov 1, %o0
            cmp %o0, 2
            be,a away
            mov 9, %o1
            mov 7, %o2
        """)
        state = execute(program.instructions, MachineState())
        assert state.read_int("%o1") == 0   # slot squashed
        assert state.read_int("%o2") == 7

    def test_plain_branch_executes_slot(self):
        program = parse_asm("""
            mov 1, %o0
            cmp %o0, 2
            be away
            mov 9, %o1
        """)
        state = execute(program.instructions, MachineState())
        assert state.read_int("%o1") == 9   # slot always executes

    def test_fp_branch_conditions(self):
        program = parse_asm("""
            fcmpd %f0, %f2
            fbne away
            nop
            mov 5, %o0
        """)
        # %f0 == %f2 == 0.0 initially: fbne not taken.
        state = execute(program.instructions, MachineState())
        assert state.read_int("%o0") == 5


# Conditions below all evaluate FALSE from the zeroed initial state
# (with %o0 = 1 moved in first): the programs execute linearly.
FALL_THROUGH_PROGRAMS = [
    # Real work in the delay slot: the pinned occupant must keep its
    # position through the transform.
    """
    entry:
        ld [%fp-8], %o0
        st %o0, [%fp-16]
        cmp %o0, 99
        be target
        add %o0, 1, %o1
    target:
        st %o1, [%fp-20]
        mov 4, %o2
        st %o2, [%fp-24]
    """,
    # Nop slot: the transform may fill it and delete the nop.
    """
    entry:
        ld [%fp-8], %o0
        add %o0, 2, %o1
        st %o1, [%fp-16]
        cmp %o0, 99
        be target
        nop
    target:
        ld [%fp-16], %o2
        add %o2, %o0, %o3
        st %o3, [%fp-20]
    """,
    # Annulled branch (not taken -> slot squashed both before and
    # after the transform).
    """
    entry:
        mov 1, %o0
        cmp %o0, 99
        be,a target
        mov 77, %o1
    target:
        st %o1, [%fp-8]
        st %o0, [%fp-12]
    """,
    # Two branches in sequence with interleaved memory traffic.
    """
    a:
        ld [%fp-8], %o0
        cmp %o0, 99
        bg b
        nop
        st %o0, [%fp-16]
        cmp %o0, 98
        bg c
        nop
    b:
        mov 3, %o1
    c:
        st %o1, [%fp-20]
    """,
]


class TestTransformSemantics:
    @pytest.mark.parametrize("source", FALL_THROUGH_PROGRAMS,
                             ids=["real-slot", "nop-slot", "annulled",
                                  "two-branches"])
    def test_transform_preserves_fall_through_semantics(self, source):
        machine = generic_risc()
        program = parse_asm(source)
        reference = run_program(program)
        for fill_slots in (False, True):
            scheduled, _ = schedule_program(program, machine,
                                            fill_slots=fill_slots)
            assert run_program(scheduled) == reference, fill_slots

    @pytest.mark.parametrize("source", FALL_THROUGH_PROGRAMS,
                             ids=["real-slot", "nop-slot", "annulled",
                                  "two-branches"])
    def test_transform_with_inheritance_preserves_semantics(self, source):
        machine = generic_risc()
        program = parse_asm(source)
        reference = run_program(program)
        scheduled, _ = schedule_program(program, machine,
                                        inherit_latencies=True)
        assert run_program(scheduled) == reference
