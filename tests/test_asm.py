"""Tests for the assembly lexer, parser, and writer."""

import pytest

from repro.asm.lexer import lex_lines, split_operands, strip_comment
from repro.asm.parser import (
    parse_asm,
    parse_instruction_text,
    parse_mem_expr,
    parse_operand,
)
from repro.asm.writer import render_instructions, render_program
from repro.errors import AsmSyntaxError, CfgError, UnknownOpcodeError
from repro.isa.memory import MemExpr
from repro.isa.operands import (
    ImmOperand,
    LabelOperand,
    MemOperand,
    RegOperand,
    SymImmOperand,
)


class TestLexer:
    def test_strip_bang_comment(self):
        assert strip_comment("add %o1, %o2, %o3 ! hi") == "add %o1, %o2, %o3 "

    def test_strip_hash_comment(self):
        assert strip_comment("# whole line") == ""

    def test_blank_lines_dropped(self):
        assert lex_lines("\n\n  \n") == []

    def test_label_only_line(self):
        lines = lex_lines("start:")
        assert lines[0].labels == ("start",)
        assert lines[0].mnemonic is None

    def test_label_and_instruction_same_line(self):
        lines = lex_lines("loop: add %o1, %o2, %o3")
        assert lines[0].labels == ("loop",)
        assert lines[0].mnemonic == "add"

    def test_multiple_labels(self):
        lines = lex_lines("a: b: nop")
        assert lines[0].labels == ("a", "b")

    def test_directive(self):
        lines = lex_lines(".global main")
        assert lines[0].directive == ".global main"

    def test_line_numbers(self):
        lines = lex_lines("nop\n\nnop")
        assert [l.number for l in lines] == [1, 3]

    def test_operand_split_basic(self):
        assert split_operands("%o1, %o2, %o3", 1) == ("%o1", "%o2", "%o3")

    def test_operand_split_brackets(self):
        assert split_operands("[%fp-8], %o0", 1) == ("[%fp-8]", "%o0")

    def test_operand_split_unbalanced_raises(self):
        with pytest.raises(AsmSyntaxError):
            split_operands("[%fp-8, %o0", 1)

    def test_empty_operand_raises(self):
        with pytest.raises(AsmSyntaxError):
            split_operands("%o1,, %o3", 1)

    def test_mnemonic_lowercased(self):
        assert lex_lines("NOP")[0].mnemonic == "nop"


class TestMemExprParsing:
    def test_base_only(self):
        assert parse_mem_expr("%o0") == MemExpr(base="%o0")

    def test_base_plus_offset(self):
        assert parse_mem_expr("%o0+8") == MemExpr(base="%o0", offset=8)

    def test_base_minus_offset(self):
        assert parse_mem_expr("%fp-8") == MemExpr(base="%i6", offset=-8)

    def test_alias_canonicalized(self):
        assert parse_mem_expr("%sp+4").base == "%o6"

    def test_base_plus_index(self):
        assert parse_mem_expr("%o0+%o1") == MemExpr(base="%o0", index="%o1")

    def test_index_subtraction_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_mem_expr("%o0-%o1")

    def test_symbol(self):
        assert parse_mem_expr("counter") == MemExpr(symbol="counter")

    def test_symbol_with_offset(self):
        assert parse_mem_expr("counter+4") == \
            MemExpr(symbol="counter", offset=4)

    def test_base_plus_lo(self):
        assert parse_mem_expr("%o0+%lo(sym)") == \
            MemExpr(base="%o0", symbol="sym")

    def test_hi_in_memory_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_mem_expr("%o0+%hi(sym)")

    def test_empty_rejected(self):
        with pytest.raises(AsmSyntaxError):
            parse_mem_expr("")

    def test_hex_offset(self):
        assert parse_mem_expr("%o0+0x10").offset == 16

    def test_whitespace_tolerated(self):
        assert parse_mem_expr("%o0 + 8") == MemExpr(base="%o0", offset=8)


class TestOperandParsing:
    def test_register(self):
        op = parse_operand("%o3")
        assert isinstance(op, RegOperand)

    def test_immediate(self):
        assert parse_operand("42") == ImmOperand(42)
        assert parse_operand("-8") == ImmOperand(-8)
        assert parse_operand("0x1f") == ImmOperand(31)

    def test_memory(self):
        op = parse_operand("[%fp-8]")
        assert isinstance(op, MemOperand)

    def test_label(self):
        assert parse_operand("loop") == LabelOperand("loop")

    def test_hi_lo(self):
        assert parse_operand("%hi(sym)") == SymImmOperand("hi", "sym")
        assert parse_operand("%lo(sym)") == SymImmOperand("lo", "sym")

    def test_unknown_register_raises(self):
        with pytest.raises(AsmSyntaxError):
            parse_operand("%qq")

    def test_garbage_raises(self):
        with pytest.raises(AsmSyntaxError):
            parse_operand("@#$")


class TestParseAsm:
    def test_basic_program(self):
        program = parse_asm("add %o1, %o2, %o3\nnop\n")
        assert len(program) == 2
        assert program[0].opcode.mnemonic == "add"

    def test_labels_recorded(self):
        program = parse_asm("start:\n  nop\nend:\n")
        assert program.labels["start"] == 0
        assert program.labels["end"] == 1

    def test_end_label_past_last_instruction(self):
        program = parse_asm("nop\ndone:")
        assert program.labels["done"] == 1

    def test_duplicate_label_raises(self):
        with pytest.raises(CfgError):
            parse_asm("x: nop\nx: nop\n")

    def test_same_label_twice_same_target_ok(self):
        program = parse_asm("x: y: nop")
        assert program.labels["x"] == program.labels["y"] == 0

    def test_unknown_opcode_raises(self):
        with pytest.raises(UnknownOpcodeError):
            parse_asm("bogus %o1")

    def test_annul_suffix(self):
        program = parse_asm("be,a target\nnop")
        assert program[0].annulled
        assert program[0].mnemonic == "be,a"

    def test_annul_on_non_branch_raises(self):
        with pytest.raises(AsmSyntaxError):
            parse_asm("add,a %o1, %o2, %o3")

    def test_bad_suffix_raises(self):
        with pytest.raises(AsmSyntaxError):
            parse_asm("be,x target")

    def test_operand_validation_at_parse_time(self):
        with pytest.raises(AsmSyntaxError):
            parse_asm("add %o1, %o2")  # missing destination

    def test_error_carries_line_number(self):
        with pytest.raises(AsmSyntaxError) as exc:
            parse_asm("nop\nadd %o1, %o2\n")
        assert "line 2" in str(exc.value)

    def test_directives_collected(self):
        program = parse_asm(".text\nnop\n.align 8\n")
        assert program.directives == [".text", ".align 8"]

    def test_instruction_indices_sequential(self):
        program = parse_asm("nop\nnop\nnop\n")
        assert [i.index for i in program] == [0, 1, 2]

    def test_branch_target_helper(self):
        program = parse_asm("ba somewhere\nnop")
        assert program[0].branch_target() == "somewhere"

    def test_parse_instruction_text_single(self):
        instr = parse_instruction_text("faddd %f0, %f2, %f4", index=7)
        assert instr.index == 7

    def test_parse_instruction_text_rejects_multiple(self):
        with pytest.raises(AsmSyntaxError):
            parse_instruction_text("nop\nnop")


class TestWriter:
    def test_render_instruction(self):
        instr = parse_instruction_text("add %o1, 4, %o3")
        assert instr.render() == "add %o1, 4, %o3"

    def test_render_memory(self):
        instr = parse_instruction_text("ld [%fp-8], %o0")
        assert instr.render() == "ld [%i6-8], %o0"

    def test_render_annulled(self):
        program = parse_asm("be,a target\nnop")
        assert program[0].render() == "be,a target"

    def test_round_trip(self):
        source = """
        start:
            ld [%fp-8], %o0
            add %o0, 1, %o1
            cmp %o1, 10
            bl start
            nop
            st %o1, [counter+4]
            sethi %hi(sym), %o2
            retl
            nop
        """
        first = parse_asm(source)
        text = render_program(first)
        second = parse_asm(text)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.render() == b.render()
        assert first.labels == second.labels

    def test_render_instructions_multiline(self):
        program = parse_asm("nop\nnop")
        assert render_instructions(program.instructions).count("\n") == 1
