"""Tests for the optimal branch-and-bound scheduler."""

import itertools

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.errors import SchedulingError
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.branch_and_bound import branch_and_bound_schedule
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate, verify_order
from repro.workloads import kernel_source


def dag_of(source: str):
    blocks = partition_blocks(parse_asm(source))
    dag = TableForwardBuilder(generic_risc()).build(blocks[0]).dag
    backward_pass(dag)
    return dag


def brute_force_makespan(dag, machine) -> int:
    """Exhaustive minimum over all topological orders."""
    nodes = dag.real_nodes()
    pos = {n.id: i for i, n in enumerate(nodes)}
    best = None
    for perm in itertools.permutations(nodes):
        order_pos = {n.id: i for i, n in enumerate(perm)}
        legal = all(order_pos[a.child.id] > order_pos[n.id]
                    for n in nodes for a in n.out_arcs)
        if not legal:
            continue
        makespan = simulate(list(perm), machine).makespan
        if best is None or makespan < best:
            best = makespan
    assert best is not None
    return best


class TestOptimality:
    @pytest.mark.parametrize("source", [
        "ld [%fp-8], %o0\nadd %o0, 1, %o1\nmov 7, %o2",
        kernel_source("figure1"),
        """
            ld [%fp-8], %o0
            ld [%fp-12], %o1
            add %o0, %o1, %o2
            smul %o2, 3, %o3
            mov 1, %o4
            mov 2, %o5
        """,
        kernel_source("dot_product"),
    ])
    def test_matches_brute_force(self, source):
        machine = generic_risc()
        dag = dag_of(source)
        result, proved = branch_and_bound_schedule(dag, machine)
        assert proved
        verify_order(result.order, dag)
        assert result.makespan == brute_force_makespan(dag, machine)

    def test_never_worse_than_heuristics(self):
        machine = generic_risc()
        for kernel in ("figure1", "dot_product", "superscalar_mix"):
            dag = dag_of(kernel_source(kernel))
            optimal, proved = branch_and_bound_schedule(dag, machine)
            heuristic = schedule_forward(dag, machine,
                                         winnowing("max_delay_to_leaf"))
            assert optimal.makespan <= heuristic.makespan
            assert proved

    def test_block_size_cap(self):
        dag = dag_of("\n".join(f"mov {i}, %o0" for i in range(20)))
        with pytest.raises(SchedulingError):
            branch_and_bound_schedule(dag, generic_risc(),
                                      max_block_size=16)

    def test_expansion_cap_returns_feasible(self):
        dag = dag_of(kernel_source("daxpy"))
        result, proved = branch_and_bound_schedule(
            dag, generic_risc(), max_expansions=10)
        verify_order(result.order, dag)
        # With so few expansions the incumbent is returned unproved.
        assert not proved

    def test_runs_backward_pass_if_needed(self):
        blocks = partition_blocks(parse_asm(kernel_source("figure1")))
        dag = TableForwardBuilder(generic_risc()).build(blocks[0]).dag
        result, proved = branch_and_bound_schedule(dag, generic_risc())
        assert proved
        assert result.makespan == 24
