"""Tests for mini-C arrays and the indexed-addressing they produce."""

import pytest

from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.interp import MachineState, execute
from repro.isa.memory import AliasPolicy
from repro.machine import generic_risc
from repro.minic import compile_minic, compile_to_program
from repro.minic.lexer import MiniCError
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing

CP = winnowing("max_delay_to_leaf", "max_delay_to_child")


class TestParsing:
    def test_array_declaration(self):
        from repro.minic import parse_minic
        (decl,) = parse_minic("int v[8];")
        assert decl.names == ("v",)
        assert decl.array_sizes == (8,)

    def test_mixed_declaration(self):
        from repro.minic import parse_minic
        (decl,) = parse_minic("double w[4], x;")
        assert decl.array_sizes == (4, None)

    def test_index_expression(self):
        from repro.minic import parse_minic
        from repro.minic.ast import Index
        (stmt,) = parse_minic("s = v[i + 1];")
        assert isinstance(stmt.expr, Index)

    def test_indexed_assignment_target(self):
        from repro.minic import parse_minic
        (stmt,) = parse_minic("v[i] = 3;")
        assert stmt.index is not None

    def test_missing_bracket(self):
        from repro.minic import parse_minic
        with pytest.raises(MiniCError):
            parse_minic("s = v[i;")

    def test_non_integer_size_rejected(self):
        from repro.minic import parse_minic
        with pytest.raises(MiniCError):
            parse_minic("int v[n];")


class TestCodegen:
    def test_constant_index_folds_to_offset(self):
        asm = compile_minic("int v[8], s; s = v[3];")
        assert "ld [v+12]" in asm
        assert "sethi" not in asm

    def test_constant_index_zero(self):
        asm = compile_minic("int v[8], s; s = v[0];")
        assert "ld [v]," in asm

    def test_double_array_scales_by_eight(self):
        asm = compile_minic("double w[4], x; x = w[2];")
        assert "ldd [w+16]" in asm

    def test_variable_index_materializes_base(self):
        asm = compile_minic("int v[8], i, s; s = v[i];")
        assert "sll" in asm
        assert "sethi %hi(v)" in asm
        assert "%lo(v)" in asm

    def test_indexed_store(self):
        asm = compile_minic("int v[8], i; v[i] = 5;")
        assert "st %o" in asm and "+%o" in asm

    def test_double_index_rejected(self):
        with pytest.raises(MiniCError):
            compile_minic("int v[8], s; double d; s = v[d];")

    def test_expression_index(self):
        asm = compile_minic("int v[8], i, s; s = v[i * 2 + 1];")
        assert "smul" in asm or "sll" in asm


class TestArraySemantics:
    SOURCE = """
        int v[8], i, s;
        v[0] = 11;
        v[1] = 22;
        i = 1;
        s = v[0] + v[1];
        v[i] = s;
    """

    def _final(self, instructions) -> tuple:
        state = MachineState()
        return execute(list(instructions), state).snapshot()

    def test_reference_execution(self):
        block = partition_blocks(compile_to_program(self.SOURCE))[0]
        state = execute(block.instructions, MachineState())
        base = state.symbols["v"]
        assert state.load_bytes(base, 4) == 11
        assert state.load_bytes(base + 4, 4) == 33  # v[1] = 11 + 22

    @pytest.mark.parametrize("policy", [AliasPolicy.STRICT,
                                        AliasPolicy.BASE_OFFSET])
    def test_conservative_policies_preserve_semantics(self, policy):
        # Variable-indexed stores may hit ANY element: only policies
        # that serialize indexed accesses against the array's other
        # references are sound.  STRICT and BASE_OFFSET both are
        # (indexed expressions fall through to "may alias").
        machine = generic_risc()
        block = partition_blocks(compile_to_program(self.SOURCE))[0]
        reference = self._final(block.instructions)
        dag = TableForwardBuilder(machine, alias_policy=policy).build(
            block).dag
        backward_pass(dag)
        order = schedule_forward(dag, machine, CP).order
        assert self._final(n.instr for n in order) == reference

    # An indexed store vs a constant-offset load of the same array,
    # with DISJOINT registers so only the memory model orders them.
    INDEXED_VS_CONSTANT = "st %o3, [%l0+%l1]\nld [v+8], %o4"

    def _mem_ordered(self, policy) -> bool:
        from repro.asm import parse_asm
        from repro.dag.bitmap import compute_reachability
        machine = generic_risc()
        block = partition_blocks(parse_asm(self.INDEXED_VS_CONSTANT))[0]
        dag = TableForwardBuilder(machine, alias_policy=policy).build(
            block).dag
        rmap = compute_reachability(dag)
        return rmap.reaches(0, 1)

    def test_expression_policy_is_documented_unsound_for_arrays(self):
        # EXPRESSION granularity assumes distinct symbolic expressions
        # never alias; a variable-indexed store breaks that assumption
        # when the index register happens to address the loaded slot.
        # (In compiled mini-C, codegen's register recycling usually
        # orders such pairs anyway; this pins the memory model itself.)
        assert not self._mem_ordered(AliasPolicy.EXPRESSION)

    def test_conservative_policies_order_indexed_vs_constant(self):
        assert self._mem_ordered(AliasPolicy.BASE_OFFSET)
        assert self._mem_ordered(AliasPolicy.STRICT)
