"""Tests for incremental heuristic maintenance (repro.heuristics.incremental)."""

import random

import pytest

from repro.cfg import partition_blocks
from repro.asm import parse_asm
from repro.dag.builders import TableForwardBuilder
from repro.dep import DepType
from repro.heuristics import (
    annotate,
    apply_inherited_incremental,
    backward_pass,
    forward_pass,
    update_after_arc,
)
from repro.isa.resources import Resource, ResourceKind
from repro.scheduling.interblock import ResidualLatency, apply_inherited
from repro.workloads import kernel_source

FIELDS = ("max_path_from_root", "max_delay_from_root", "est",
          "max_path_to_leaf", "max_delay_to_leaf", "lst", "slack")

KERNELS = ("daxpy", "livermore1", "dot_product", "superscalar_mix")


def build_dag(machine, name):
    block = partition_blocks(parse_asm(kernel_source(name), name))[0]
    return TableForwardBuilder(machine).build(block).dag


def snapshot(dag):
    return {node.id: tuple(getattr(node, f) for f in FIELDS)
            for node in dag.nodes}


def reference_annotations(dag):
    forward_pass(dag)
    backward_pass(dag, require_est=False)
    return snapshot(dag)


class TestUpdateAfterArc:
    @pytest.mark.parametrize("name", KERNELS)
    def test_single_arc_matches_full_passes(self, machine, name):
        dag = build_dag(machine, name)
        annotate(dag)
        real = dag.real_nodes()
        parent, child = real[0], real[-1]
        dag.add_arc(parent, child, DepType.RAW, 7)
        update_after_arc(dag, parent, child)
        incremental = snapshot(dag)
        assert incremental == reference_annotations(dag)

    @pytest.mark.parametrize("name", KERNELS)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_arcs_match_full_passes(self, machine, name, seed):
        rng = random.Random(seed)
        dag = build_dag(machine, name)
        annotate(dag)
        real = dag.real_nodes()
        for _ in range(rng.randint(1, 4)):
            i = rng.randrange(len(real) - 1)
            j = rng.randrange(i + 1, len(real))
            parent, child = real[i], real[j]
            dag.add_arc(parent, child, DepType.RAW,
                        rng.randint(0, 24))
            update_after_arc(dag, parent, child)
        assert snapshot(dag) == reference_annotations(dag)

    def test_critical_growth_shifts_lst_everywhere(self, machine):
        dag = build_dag(machine, "superscalar_mix")
        annotate(dag)
        before = dag.critical_length
        real = dag.real_nodes()
        dag.add_arc(real[0], real[-1], DepType.RAW, 100)
        update_after_arc(dag, real[0], real[-1])
        assert dag.critical_length > before
        assert snapshot(dag) == reference_annotations(dag)

    def test_merged_arc_no_change_is_cheap_noop(self, machine):
        dag = build_dag(machine, "daxpy")
        annotate(dag)
        arc = next(a for n in dag.real_nodes() for a in n.out_arcs
                   if not a.child.is_dummy)
        # Re-adding an existing arc merges without changing delays.
        dag.add_arc(arc.parent, arc.child, arc.dep, arc.delay,
                    arc.resource)
        before = snapshot(dag)
        update_after_arc(dag, arc.parent, arc.child)
        assert snapshot(dag) == before

    def test_falls_back_without_stash(self, machine):
        dag = build_dag(machine, "dot_product")
        forward_pass(dag)
        # No backward pass ran, so no critical_length stash exists;
        # the update must degrade to the full annotation gracefully.
        real = dag.real_nodes()
        dag.add_arc(real[0], real[-1], DepType.RAW, 3)
        update_after_arc(dag, real[0], real[-1])
        assert snapshot(dag) == reference_annotations(dag)


class TestApplyInheritedIncremental:
    def test_matches_full_pass_variant(self, machine):
        residuals = [
            ResidualLatency(Resource(ResourceKind.REG, "%f0"), 5),
            ResidualLatency(Resource(ResourceKind.REG, "%o1"), 2),
        ]
        a = build_dag(machine, "daxpy")
        annotate(a)
        apply_inherited_incremental(a, residuals)

        b = build_dag(machine, "daxpy")
        apply_inherited(b, residuals)
        forward_pass(b)
        backward_pass(b, require_est=False)
        # Compare real nodes only: the two variants create their own
        # pseudo entry nodes with distinct ids.
        for na, nb in zip(a.real_nodes(), b.real_nodes()):
            assert na.id == nb.id
            for f in FIELDS:
                assert getattr(na, f) == getattr(nb, f), (na.id, f)

    def test_empty_residuals(self, machine):
        dag = build_dag(machine, "dot_product")
        annotate(dag)
        before = snapshot(dag)
        apply_inherited_incremental(dag, [])
        after = snapshot(dag)
        # The arc-less pseudo entry node is new; every pre-existing
        # node's annotations are untouched.
        assert {k: v for k, v in after.items() if k in before} == before


class TestCriticalLengthStash:
    def test_backward_pass_stashes(self, machine):
        dag = build_dag(machine, "daxpy")
        backward_pass(dag)
        assert hasattr(dag, "critical_length")
        assert dag.critical_length >= 0

    def test_levels_driver_stashes(self, machine):
        from repro.heuristics import backward_pass_levels
        dag = build_dag(machine, "daxpy")
        backward_pass_levels(dag)
        reference = build_dag(machine, "daxpy")
        backward_pass(reference)
        assert dag.critical_length == reference.critical_length
