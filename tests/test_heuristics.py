"""Tests for the 26 heuristics: static values and dynamic calculators."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import CompareAllBuilder, TableForwardBuilder
from repro.heuristics.base import Category, PassKind
from repro.heuristics.catalog import CATALOG, by_category, heuristic_by_key
from repro.heuristics.instruction_class import alternate_type, fpu_busy_time
from repro.heuristics.passes import backward_pass
from repro.heuristics.register_usage import (
    annotate_register_usage,
    apply_birthing_adjustment,
)
from repro.heuristics.stall import (
    earliest_execution_time,
    earliest_execution_time_with_units,
    interlock_with_previous,
    no_interlock_with_previous,
)
from repro.heuristics.uncovering import (
    n_single_parent_children,
    n_uncovered_children,
    sum_delays_single_parent_children,
)
from repro.machine import generic_risc, sparcstation2_like
from repro.scheduling.list_scheduler import SchedulerState
from repro.workloads import kernel_source


def dag_of(source: str, machine=None, builder=TableForwardBuilder):
    machine = machine or generic_risc()
    blocks = partition_blocks(parse_asm(source))
    return builder(machine).build(blocks[0]).dag


class TestCatalogStructure:
    def test_exactly_26_heuristics(self):
        assert len(CATALOG) == 26

    def test_six_categories_all_populated(self):
        for category in Category:
            assert by_category(category), category

    def test_category_sizes_match_table1(self):
        sizes = {c: len(by_category(c)) for c in Category}
        assert sizes[Category.STALL] == 4
        assert sizes[Category.INSTRUCTION_CLASS] == 2
        assert sizes[Category.CRITICAL_PATH] == 7
        assert sizes[Category.UNCOVERING] == 5
        assert sizes[Category.STRUCTURAL] == 4
        assert sizes[Category.REGISTER_USAGE] == 4

    def test_keys_unique(self):
        keys = [h.key for h in CATALOG]
        assert len(set(keys)) == len(keys)

    def test_lookup_by_key(self):
        assert heuristic_by_key("slack").title.startswith("slack")
        with pytest.raises(KeyError):
            heuristic_by_key("nope")

    def test_every_heuristic_bound_to_implementation(self):
        for h in CATALOG:
            assert (h.static_attr is not None) or (h.dynamic_fn is not None)

    def test_transitive_sensitive_rows(self):
        # The nine ** rows of Table 1.
        marked = {h.key for h in CATALOG if h.transitive_sensitive}
        assert marked == {
            "earliest_execution_time", "interlock_with_child", "est",
            "lst", "slack", "n_children", "sum_delays_to_children",
            "n_parents", "sum_delays_from_parents",
        }

    def test_pass_kinds_match_table1(self):
        expect = {
            "interlock_with_previous": PassKind.VISIT,
            "earliest_execution_time": PassKind.VISIT,
            "interlock_with_child": PassKind.ADD_ARC,
            "execution_time": PassKind.ADD_ARC,
            "alternate_type": PassKind.VISIT,
            "fpu_busy_time": PassKind.VISIT,
            "max_path_to_leaf": PassKind.BACKWARD,
            "max_delay_to_leaf": PassKind.BACKWARD,
            "max_path_from_root": PassKind.FORWARD,
            "max_delay_from_root": PassKind.FORWARD,
            "est": PassKind.FORWARD,
            "lst": PassKind.BACKWARD,
            "slack": PassKind.FORWARD_BACKWARD,
            "n_children": PassKind.ADD_ARC,
            "n_descendants": PassKind.BACKWARD,
            "registers_born": PassKind.ADD_ARC,
        }
        for key, kind in expect.items():
            assert heuristic_by_key(key).pass_kind is kind, key

    def test_dynamic_value_requires_state(self):
        h = heuristic_by_key("earliest_execution_time")
        node = dag_of("nop").nodes[0]
        with pytest.raises(ValueError):
            h.value(node)

    def test_static_value_reads_attribute(self):
        dag = dag_of(kernel_source("figure1"))
        backward_pass(dag)
        h = heuristic_by_key("max_delay_to_leaf")
        assert h.value(dag.nodes[0]) == 20

    def test_every_static_attr_is_a_slot(self):
        from repro.dag.graph import DagNode
        for h in CATALOG:
            if h.static_attr is not None:
                assert h.static_attr in DagNode.__slots__, h.key


class TestStallHeuristics:
    def test_interlock_with_previous(self):
        dag = dag_of("fdivd %f0, %f2, %f4\nfaddd %f4, %f6, %f8")
        dag.reset_schedule_state()
        state = SchedulerState(generic_risc())
        assert interlock_with_previous(dag.nodes[1], state) == 0
        state.last_scheduled = dag.nodes[0]
        assert interlock_with_previous(dag.nodes[1], state) == 1
        assert no_interlock_with_previous(dag.nodes[1], state) == 0

    def test_interlock_ignores_single_cycle_arcs(self):
        dag = dag_of("add %o0, 1, %o1\nadd %o1, 1, %o2")
        state = SchedulerState(generic_risc())
        state.last_scheduled = dag.nodes[0]
        assert interlock_with_previous(dag.nodes[1], state) == 0

    def test_earliest_execution_time_reads_node(self):
        dag = dag_of("nop")
        node = dag.nodes[0]
        node.earliest_exec_time = 9
        assert earliest_execution_time(node, None) == 9

    def test_eet_with_units_includes_busy_unit(self):
        machine = sparcstation2_like()
        dag = dag_of("fdivd %f0, %f2, %f4", machine)
        node = dag.nodes[0]
        state = SchedulerState(machine)
        state.unit_free["fdiv"] = 30
        assert earliest_execution_time_with_units(node, state) == 30

    def test_interlock_with_child_static(self):
        dag = dag_of("fdivd %f0, %f2, %f4\nfaddd %f4, %f6, %f8")
        assert dag.nodes[0].interlock_with_child
        assert not dag.nodes[1].interlock_with_child


class TestInstructionClassHeuristics:
    def test_alternate_type(self):
        dag = dag_of("add %o0, 1, %o1\nfaddd %f0, %f2, %f4")
        state = SchedulerState(generic_risc())
        assert alternate_type(dag.nodes[1], state) == 1  # nothing before
        state.last_scheduled = dag.nodes[0]
        assert alternate_type(dag.nodes[1], state) == 1  # FP after INT
        state.last_scheduled = dag.nodes[1]
        assert alternate_type(dag.nodes[1], state) == 0  # FP after FP

    def test_fpu_busy_time(self):
        machine = sparcstation2_like()
        dag = dag_of("fdivd %f0, %f2, %f4", machine)
        state = SchedulerState(machine)
        assert fpu_busy_time(dag.nodes[0], state) == 0
        state.unit_free["fdiv"] = 12
        state.current_time = 4
        assert fpu_busy_time(dag.nodes[0], state) == 8

    def test_fpu_busy_zero_for_pipelined(self):
        machine = generic_risc()  # pipelined FP adds
        dag = dag_of("faddd %f0, %f2, %f4", machine)
        state = SchedulerState(machine)
        state.unit_free["fpadd"] = 99
        assert fpu_busy_time(dag.nodes[0], state) == 0


class TestUncoveringHeuristics:
    SOURCE = """
        mov 1, %o0
        mov 2, %o1
        add %o0, %o1, %o2
        add %o0, 3, %o3
    """

    def test_single_parent_children(self):
        dag = dag_of(self.SOURCE)
        dag.reset_schedule_state()
        # Node 0's children: node 2 (parents 0,1) and node 3 (parent 0).
        assert n_single_parent_children(dag.nodes[0], None) == 1
        # After node 1 schedules, node 2 has one unscheduled parent too.
        dag.nodes[2].unscheduled_parents -= 1
        assert n_single_parent_children(dag.nodes[0], None) == 2

    def test_uncovered_requires_delay_one(self):
        dag = dag_of("fdivd %f0, %f2, %f4\nfaddd %f4, %f6, %f8")
        dag.reset_schedule_state()
        # Only child has a 20-cycle delay: single-parent but NOT uncovered.
        assert n_single_parent_children(dag.nodes[0], None) == 1
        assert n_uncovered_children(dag.nodes[0], None) == 0

    def test_sum_delays_single_parent(self):
        dag = dag_of("fdivd %f0, %f2, %f4\nfaddd %f4, %f6, %f8")
        dag.reset_schedule_state()
        assert sum_delays_single_parent_children(dag.nodes[0], None) == 20

    def test_static_children_counters(self):
        dag = dag_of(self.SOURCE)
        assert dag.nodes[0].n_children == 2
        assert dag.nodes[0].sum_delays_to_children == 2


class TestRegisterUsageHeuristics:
    def test_born_and_killed(self):
        dag = dag_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            st %o1, [%fp-8]
        """)
        annotate_register_usage(dag)
        # Node 0 births %o0 (used later); node 1 kills %o0, births %o1;
        # node 2 kills %o1 AND the frame pointer (its last use here).
        assert dag.nodes[0].registers_born == 1
        assert dag.nodes[1].registers_killed == 1
        assert dag.nodes[1].registers_born == 1
        assert dag.nodes[2].registers_killed == 2
        assert dag.nodes[2].registers_born == 0

    def test_dead_def_not_born(self):
        dag = dag_of("mov 1, %o0\nmov 2, %o1")
        annotate_register_usage(dag)
        assert dag.nodes[0].registers_born == 0  # never used locally

    def test_liveness_is_net(self):
        dag = dag_of("ld [%fp-8], %o0\nadd %o0, %o0, %o1\nst %o1, [%fp-4]")
        annotate_register_usage(dag)
        assert dag.nodes[1].liveness == \
            dag.nodes[1].registers_born - dag.nodes[1].registers_killed

    def test_birthing_adjustment(self):
        dag = dag_of("mov 1, %o0\nmov 2, %o1\nadd %o0, %o1, %o2")
        dag.reset_schedule_state()
        apply_birthing_adjustment(dag.nodes[2])
        # Both RAW parents biased upward.
        assert dag.nodes[0].priority_bias == 1
        assert dag.nodes[1].priority_bias == 1

    def test_birthing_skips_war_parents(self):
        from repro.dep import DepType
        dag = dag_of("add %o0, 1, %o1\nmov 5, %o0", builder=CompareAllBuilder)
        dag.reset_schedule_state()
        apply_birthing_adjustment(dag.nodes[1])
        assert dag.nodes[0].priority_bias == 0  # WAR parent, not RAW

    def test_birthing_skips_scheduled_parents(self):
        dag = dag_of("mov 1, %o0\nadd %o0, 1, %o1")
        dag.reset_schedule_state()
        dag.nodes[0].scheduled = True
        apply_birthing_adjustment(dag.nodes[1])
        assert dag.nodes[0].priority_bias == 0
