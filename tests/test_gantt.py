"""Tests for the text Gantt renderer."""

from repro.analysis.gantt import render_gantt
from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.workloads import kernel_source


def figure1_schedule():
    machine = generic_risc()
    blocks = partition_blocks(parse_asm(kernel_source("figure1")))
    dag = TableForwardBuilder(machine).build(blocks[0]).dag
    backward_pass(dag)
    result = schedule_forward(dag, machine, winnowing("max_delay_to_leaf"))
    return result, machine


class TestRenderGantt:
    def test_row_per_instruction(self):
        result, machine = figure1_schedule()
        chart = render_gantt(result.order, result.timing, machine)
        lines = chart.splitlines()
        assert len(lines) == 2 + len(result.order)  # ruler + rows + footer

    @staticmethod
    def _bar(row: str, order) -> str:
        label_width = min(32, max(len(n.instr.render()) for n in order))
        return row[label_width + 2:]

    def test_issue_marks_align_with_issue_times(self):
        result, machine = figure1_schedule()
        chart = render_gantt(result.order, result.timing, machine)
        rows = chart.splitlines()[1:-1]
        for row, issue in zip(rows, result.timing.issue_times):
            assert self._bar(row, result.order).index("#") == issue

    def test_execution_bars_have_exec_length(self):
        result, machine = figure1_schedule()
        chart = render_gantt(result.order, result.timing, machine)
        divider_row = next(r for r in chart.splitlines() if "fdivd" in r)
        # 1 issue mark + 19 continuation cells for the 20-cycle divide.
        assert self._bar(divider_row, result.order).count("=") == 19

    def test_makespan_footer(self):
        result, machine = figure1_schedule()
        chart = render_gantt(result.order, result.timing, machine)
        assert chart.splitlines()[-1] == \
            f"makespan: {result.makespan} cycles"

    def test_truncation(self):
        result, machine = figure1_schedule()
        chart = render_gantt(result.order, result.timing, machine,
                             max_width=5)
        assert "truncated" in chart
        assert any(line.endswith("+") for line in chart.splitlines())

    def test_empty_schedule(self):
        from repro.scheduling.timing import ScheduleTiming
        assert "(empty schedule)" in render_gantt(
            [], ScheduleTiming((), 0, 0), generic_risc())

    def test_long_mnemonics_truncated(self):
        result, machine = figure1_schedule()
        chart = render_gantt(result.order, result.timing, machine)
        for line in chart.splitlines():
            label = line.split("  ")[0]
            assert len(label) <= 32
