"""Tests for multi-resource usage patterns (the writeback bus)."""

from dataclasses import replace

import pytest

from repro.asm import parse_asm
from repro.asm.parser import parse_instruction_text
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import MachineModel, generic_risc
from repro.machine.reservation import pattern_for
from repro.machine.units import units_with_writeback
from repro.scheduling.priority import winnowing
from repro.scheduling.reservation_scheduler import schedule_with_reservation
from repro.scheduling.timing import verify_order


def wb_machine() -> MachineModel:
    base = generic_risc()
    return replace(base, name="generic+wb", units=units_with_writeback())


class TestWritebackPatterns:
    def test_result_producers_occupy_the_bus(self):
        units = units_with_writeback()
        instr = parse_instruction_text("faddd %f0, %f2, %f4")
        pattern = pattern_for(instr, units, latency=4)
        bus = [u for u in pattern.uses if u.unit == "wb"]
        assert len(bus) == 1
        assert bus[0].start == 3  # result retires at issue + latency - 1
        assert bus[0].duration == 1

    def test_stores_do_not_use_the_bus(self):
        units = units_with_writeback()
        instr = parse_instruction_text("nop")
        pattern = pattern_for(instr, units, latency=1)
        assert all(u.unit != "wb" for u in pattern.uses)

    def test_without_wb_unit_no_bus_use(self):
        machine = generic_risc()
        pattern = machine.usage_pattern(
            parse_instruction_text("faddd %f0, %f2, %f4"))
        assert all(u.unit != "wb" for u in pattern.uses)


class TestWritebackScheduling:
    def test_bus_conflict_separates_retirements(self):
        # A 4-cycle FP add issued at 0 retires at cycle 3; a 1-cycle
        # integer op issued at 3 would also retire at 3 -- the single-
        # ported bus forces the reservation scheduler to stagger them.
        machine = wb_machine()
        blocks = partition_blocks(parse_asm("""
            faddd %f0, %f2, %f4
            mov 1, %o0
            mov 2, %o1
            mov 3, %o2
            mov 4, %o3
        """))
        dag = TableForwardBuilder(machine).build(blocks[0]).dag
        backward_pass(dag)
        result = schedule_with_reservation(
            dag, machine, winnowing("max_delay_to_leaf"))
        verify_order(result.order, dag)
        retire = []
        for node, issue in zip(result.order, result.timing.issue_times):
            retire.append(issue + machine.execution_time(node.instr) - 1)
        assert len(set(retire)) == len(retire)  # no two share a bus cycle

    def test_legal_on_kernels(self):
        from repro.workloads import kernel_source
        machine = wb_machine()
        for kernel in ("daxpy", "livermore1", "superscalar_mix"):
            blocks = partition_blocks(parse_asm(kernel_source(kernel)))
            dag = TableForwardBuilder(machine).build(blocks[0]).dag
            backward_pass(dag)
            result = schedule_with_reservation(
                dag, machine, winnowing("max_delay_to_leaf"))
            verify_order(result.order, dag)
