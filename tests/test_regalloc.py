"""Tests for the liveness / register-pressure substrate."""

from repro.asm import parse_asm
from repro.regalloc.liveness import block_liveness
from repro.regalloc.pressure import max_pressure, pressure_profile


def instrs(source: str):
    return parse_asm(source).instructions


class TestLiveness:
    SOURCE = """
        ld [%fp-8], %o0
        ld [%fp-12], %o1
        add %o0, %o1, %o2
        st %o2, [%fp-16]
    """

    def test_live_below(self):
        info = block_liveness(instrs(self.SOURCE))
        # After the first load, %o0 is live (plus %i6 for later loads).
        assert "%o0" in info.live_below[0]
        assert "%o0" not in info.live_below[2]
        assert info.live_below[3] == frozenset()

    def test_births(self):
        info = block_liveness(instrs(self.SOURCE))
        assert info.births[0] == frozenset({"%o0"})
        assert info.births[2] == frozenset({"%o2"})

    def test_deaths(self):
        info = block_liveness(instrs(self.SOURCE))
        assert info.deaths[2] == frozenset({"%o0", "%o1"})
        assert "%o2" in info.deaths[3]

    def test_dead_def_not_born(self):
        info = block_liveness(instrs("mov 1, %o0\nmov 2, %o1"))
        assert info.births[0] == frozenset()

    def test_redefinition_splits_ranges(self):
        info = block_liveness(instrs("""
            mov 1, %o0
            add %o0, 1, %o1
            mov 2, %o0
            add %o0, 2, %o2
        """))
        # First %o0 range dies at instruction 1.
        assert "%o0" in info.deaths[1]
        assert "%o0" in info.births[2]

    def test_empty_sequence(self):
        info = block_liveness([])
        assert info.live_below == ()


class TestPressure:
    def test_profile(self):
        profile = pressure_profile(instrs("""
            ld [%fp-8], %o0
            ld [%fp-12], %o1
            add %o0, %o1, %o2
            st %o2, [%fp-16]
        """))
        assert profile[-1] == 0
        assert max(profile) >= 2

    def test_hoisted_loads_raise_pressure(self):
        # The prepass-scheduling motivation: hoisting all loads above
        # their uses lengthens live ranges.
        interleaved = instrs("""
            ld [%fp-8], %o0
            st %o0, [%fp-16]
            ld [%fp-12], %o1
            st %o1, [%fp-20]
            ld [%fp-24], %o2
            st %o2, [%fp-28]
        """)
        hoisted = instrs("""
            ld [%fp-8], %o0
            ld [%fp-12], %o1
            ld [%fp-24], %o2
            st %o0, [%fp-16]
            st %o1, [%fp-20]
            st %o2, [%fp-28]
        """)
        assert max_pressure(hoisted) > max_pressure(interleaved)

    def test_empty(self):
        assert max_pressure([]) == 0
