"""Additional coverage: generator adherence, %hi/%lo address
reconstruction, backward-scheduler decision recording, and public API
surface."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import forward_pass
from repro.interp import MachineState, execute
from repro.machine import generic_risc
from repro.scheduling.list_scheduler import Decision, schedule_backward
from repro.scheduling.priority import winnowing
from repro.workloads import generate_blocks, get_profile
from repro.workloads.profiles import TABLE_ORDER


class TestGeneratorAdherenceAllProfiles:
    def test_all_nine_profiles_exact(self):
        # Block count, instruction total, and max block size must be
        # exact for every Table 3 benchmark (structural calibration is
        # by construction, not approximation).
        for name in TABLE_ORDER:
            profile = get_profile(name)
            blocks = generate_blocks(profile)
            assert len(blocks) == profile.n_blocks, name
            assert sum(b.size for b in blocks) == profile.total_insts, name
            assert max(b.size for b in blocks) == profile.max_block, name

    def test_giant_blocks_all_present(self):
        profile = get_profile("nasa7")
        sizes = sorted((b.size for b in generate_blocks(profile)),
                       reverse=True)
        assert tuple(sizes[:len(profile.giant_blocks)]) == \
            tuple(sorted(profile.giant_blocks, reverse=True))


class TestHiLoAddressing:
    def test_sethi_or_reconstructs_symbol_address(self):
        # The classic static-data idiom must hit the same memory the
        # direct symbolic reference does.
        program = parse_asm("""
            mov 42, %o0
            st %o0, [gdata]
            sethi %hi(gdata), %o1
            or %o1, %lo(gdata), %o1
            ld [%o1], %o2
        """)
        state = execute(program.instructions, MachineState())
        assert state.read_int("%o2") == 42

    def test_lo_addressing_in_memory_operand(self):
        program = parse_asm("""
            mov 9, %o0
            st %o0, [gdata]
            sethi %hi(gdata), %o1
            ld [%o1+%lo(gdata)], %o2
        """)
        state = execute(program.instructions, MachineState())
        # [%o1 + %lo(gdata)]: %o1 holds the high part; the symbolic
        # low part resolves against the SAME symbol, so the composed
        # address is high + low + symbol_base -- our model treats the
        # expression's symbol field as a full address contribution, so
        # this idiom is NOT address-equivalent (documented); the load
        # must still be deterministic.
        again = execute(program.instructions, MachineState())
        assert state.snapshot() == again.snapshot()


class TestBackwardDecisions:
    def test_decisions_recorded(self):
        machine = generic_risc()
        blocks = partition_blocks(parse_asm(
            "mov 1, %o0\nmov 2, %o1\nadd %o0, %o1, %o2"))
        dag = TableForwardBuilder(machine).build(blocks[0]).dag
        forward_pass(dag)
        decisions: list[Decision] = []
        result = schedule_backward(dag, machine,
                                   winnowing("max_delay_from_root"),
                                   decisions=decisions)
        assert len(decisions) == len(result.order)
        # Backward records picks in reverse placement order.
        assert decisions[0].chosen == result.order[-1].id


class TestPublicApiSurface:
    def test_top_level_all_resolves(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        import importlib
        for module_name in ("repro.isa", "repro.asm", "repro.cfg",
                            "repro.machine", "repro.dag",
                            "repro.dag.builders", "repro.heuristics",
                            "repro.scheduling",
                            "repro.scheduling.algorithms",
                            "repro.regalloc", "repro.workloads",
                            "repro.analysis", "repro.minic"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module_name, name)

    def test_version_string(self):
        import repro
        assert repro.__version__.count(".") == 2

    def test_py_typed_marker_shipped(self):
        import pathlib
        import repro
        package_dir = pathlib.Path(repro.__file__).parent
        assert (package_dir / "py.typed").exists()
