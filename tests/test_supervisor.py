"""Tests for the supervised worker pool: retry policy, circuit
breaker, crash recovery, quarantine, and graceful interruption."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import BatchInterrupted, ReproError
from repro.runner import (
    CircuitBreaker,
    DEFAULT_CHAIN,
    RetryPolicy,
    RunJournal,
    resolve_chain,
    run_batch,
    run_fingerprint,
    schedule_block_resilient,
)
from repro.runner.bench import bench_blocks
from repro.runner.chaos import ChaosConfig
from repro.runner.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.workloads.kernels import straightline_source


def records(result):
    return [json.dumps(o.to_record(), sort_keys=True)
            for o in result.outcomes]


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.0)
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.25, jitter=0.0)
        assert policy.delay(0, 10) == pytest.approx(0.25)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3)
        first = policy.delay(7, 1)
        assert first == policy.delay(7, 1)  # seeded, reproducible
        assert 0.1 <= first <= 0.1 * 1.5
        # Different (block, attempt) pairs draw different jitter.
        draws = {policy.delay(i, a) for i in range(4)
                 for a in range(1, 4)}
        assert len(draws) > 1


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=2)
        breaker.record_failure("n2")
        breaker.record_failure("n2")
        assert breaker.state("n2") == BREAKER_CLOSED
        breaker.record_failure("n2")
        assert breaker.state("n2") == BREAKER_OPEN

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("n2")
        breaker.record_success("n2")
        breaker.record_failure("n2")
        assert breaker.state("n2") == BREAKER_CLOSED

    def test_open_breaker_skips_then_goes_half_open(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure("n2")
        assert breaker.state("n2") == BREAKER_OPEN
        assert not breaker.allow("n2")  # cooldown tick 1
        assert breaker.allow("n2")      # cooldown over: the probe
        assert breaker.state("n2") == BREAKER_HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("n2")
        assert breaker.allow("n2")
        breaker.record_success("n2")
        assert breaker.state("n2") == BREAKER_CLOSED
        assert breaker.allow("n2")

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("n2")
        assert breaker.allow("n2")
        breaker.record_failure("n2")
        assert breaker.state("n2") == BREAKER_OPEN
        # A fresh cooldown applies before the next probe.
        assert breaker.allow("n2")
        assert breaker.state("n2") == BREAKER_HALF_OPEN

    def test_half_open_admits_one_probe_at_a_time(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("n2")
        assert breaker.allow("n2")      # the probe
        assert not breaker.allow("n2")  # concurrent ask is refused

    def test_breakers_are_per_builder(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("n2")
        assert breaker.state("n2") == BREAKER_OPEN
        assert breaker.state("table-forward") == BREAKER_CLOSED
        assert breaker.allow("table-forward")

    def test_transitions_are_recorded(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("n2")
        breaker.allow("n2")
        breaker.record_success("n2")
        assert breaker.transitions == [
            ("n2", BREAKER_OPEN), ("n2", BREAKER_HALF_OPEN),
            ("n2", BREAKER_CLOSED)]

    def test_rejects_bad_configuration(self):
        with pytest.raises(ReproError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(cooldown=0)

    def test_open_breaker_routes_chain_to_next_entry(self, machine,
                                                     daxpy_block):
        breaker = CircuitBreaker(threshold=1, cooldown=100)
        first = DEFAULT_CHAIN[0]
        breaker.record_failure(first)
        chain = resolve_chain(DEFAULT_CHAIN, machine)
        outcome = schedule_block_resilient(
            daxpy_block, machine, chain, breaker=breaker)
        assert outcome.attempts[0].builder == first
        assert outcome.attempts[0].stage == "breaker-open"
        assert outcome.builder == DEFAULT_CHAIN[1]

    def test_skip_builders_matches_breaker_semantics(self, machine,
                                                     daxpy_block):
        chain = resolve_chain(DEFAULT_CHAIN, machine)
        outcome = schedule_block_resilient(
            daxpy_block, machine, chain,
            skip_builders=(DEFAULT_CHAIN[0],))
        assert outcome.attempts[0].stage == "breaker-open"
        assert outcome.builder == DEFAULT_CHAIN[1]


class TestSupervisedCrashRecovery:
    def test_clean_supervised_run_matches_serial(self, machine):
        blocks = bench_blocks(1)
        serial = run_batch(blocks, machine)
        supervised = run_batch(blocks, machine, jobs=3)
        assert records(serial) == records(supervised)
        assert supervised.supervisor_stats is not None
        assert supervised.supervisor_stats.crashes == 0
        assert supervised.supervisor_stats.quarantined == 0

    def test_crashed_blocks_are_retried_then_match_serial(self, machine):
        blocks = bench_blocks(1)
        serial = run_batch(blocks, machine)
        chaos = ChaosConfig(seed=5, exit_rate=0.5,
                            max_injected_attempts=1)
        crashed = run_batch(blocks, machine, jobs=3, chaos=chaos,
                            retry=RetryPolicy(base_delay=0.01,
                                              max_delay=0.05))
        assert records(serial) == records(crashed)
        assert crashed.supervisor_stats.crashes > 0
        assert crashed.supervisor_stats.retries > 0
        assert crashed.supervisor_stats.quarantined == 0

    def test_poisoned_block_is_quarantined_with_reproducer(
            self, machine, tmp_path):
        blocks = bench_blocks(1)
        chaos = ChaosConfig(seed=1, poison=frozenset({2}))
        result = run_batch(
            blocks, machine, jobs=2, chaos=chaos,
            retry=RetryPolicy(max_retries=1, base_delay=0.01),
            quarantine_dir=str(tmp_path))
        quarantined = [o for o in result.outcomes if o.quarantined]
        assert [o.index for o in quarantined] == [2]
        outcome = quarantined[0]
        assert outcome.degraded
        assert outcome.order == list(
            range(len(blocks[2].instructions)))
        assert outcome.reproducer is not None
        assert os.path.exists(outcome.reproducer)
        text = open(outcome.reproducer).read()
        assert "quarantine reproducer" in text
        # Every attempt is on the record: crashes then the verdict.
        assert outcome.attempts[-1].stage == "quarantined"
        assert all(a.stage == "crash" for a in outcome.attempts[:-1])

    def test_quarantined_record_resumes_without_recomputation(
            self, machine, tmp_path):
        blocks = bench_blocks(1)
        chaos = ChaosConfig(seed=1, poison=frozenset({0}))
        fp = run_fingerprint("chaos", "generic", list(DEFAULT_CHAIN))
        path = str(tmp_path / "run.jsonl")
        with RunJournal.open_fresh(path, fp) as journal:
            first = run_batch(
                blocks, machine, jobs=2, chaos=chaos, journal=journal,
                retry=RetryPolicy(max_retries=1, base_delay=0.01))
        # The journal round-trips the quarantined verdict ...
        _, completed = RunJournal.load(path)
        assert completed[0].quarantined
        # ... and a resumed run replays it instead of re-crashing.
        with RunJournal.open_resume(path, fp) as journal:
            resumed = run_batch(blocks, machine, journal=journal)
        assert resumed.n_replayed == len(first.outcomes)
        assert records(resumed) == records(first)
        assert resumed.outcomes[0].quarantined

    def test_unsupervised_pool_reports_typed_error_on_worker_death(
            self, machine, monkeypatch):
        if sys.platform != "linux":
            pytest.skip("fork start method required")
        import repro.runner.batch as batch_mod
        import repro.runner.supervisor as supervisor_mod
        monkeypatch.setattr(batch_mod, "_run_block", _exit_hard)
        monkeypatch.setattr(supervisor_mod, "_run_block", _exit_hard)
        blocks = bench_blocks(1)
        with pytest.raises(ReproError, match="worker process died"):
            run_batch(blocks, machine, jobs=2, supervise=False)


def _exit_hard(block, skip_builders=(), on_attempt=None):
    os._exit(3)


class TestGracefulInterrupt:
    def _interrupt_run(self, tmp_path, sig):
        """Start a journaled CLI run, signal it mid-batch, and return
        (returncode, stdout, journal_path)."""
        source = tmp_path / "big.s"
        source.write_text(straightline_source("daxpy", 400))
        journal = tmp_path / "run.jsonl"
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "schedule", str(source),
             "--window", "12", "--journal", str(journal)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        deadline = time.monotonic() + 60
        # Wait for real progress: the header plus a few block records.
        while time.monotonic() < deadline:
            if journal.exists() \
                    and len(journal.read_text().splitlines()) >= 4:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        assert proc.poll() is None, \
            "workload finished before it could be interrupted"
        proc.send_signal(sig)
        stdout, _ = proc.communicate(timeout=60)
        return proc.returncode, stdout, journal

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_interrupt_exits_130_with_resumable_journal(
            self, tmp_path, sig):
        returncode, stdout, journal = self._interrupt_run(tmp_path, sig)
        assert returncode == 130
        assert "interrupted" in stdout
        # Every journaled line but (at most) the in-flight final one
        # is a complete, CRC-clean frame: the interrupt flushed
        # cleanly.
        from repro.runner.journal import parse_record_line
        lines = journal.read_text().splitlines()
        assert len(lines) >= 4
        for line in lines[:-1]:
            record, kind, _ = parse_record_line(line)
            assert kind is None, kind
        header, completed = RunJournal.load(str(journal))
        assert completed  # at least one block checkpointed

    def test_batch_interrupted_carries_resume_context(self, machine):
        blocks = bench_blocks(1)
        boom = {"count": 0}

        def interrupt_soon(outcome):
            boom["count"] += 1
            if boom["count"] == 2:
                raise KeyboardInterrupt

        with pytest.raises(BatchInterrupted) as excinfo:
            run_batch(blocks, machine, on_block=interrupt_soon)
        assert excinfo.value.n_completed == 2
        assert excinfo.value.n_total == len(blocks)
