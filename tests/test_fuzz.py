"""Tests for the differential fuzz harness (repro.runner.fuzz)."""

import os
import random

import pytest

from repro.machine import generic_risc
from repro.runner import (
    check_block,
    fuzz,
    layered_block,
    minimize_block,
    mutate_kernel,
    random_arc_block,
)
from repro.runner.fuzz import _DisagreeingBuilder
from repro.dag.builders import ALL_BUILDERS
from repro.errors import ReproError


@pytest.fixture
def machine():
    return generic_risc()


class TestGenerators:
    def test_layered_block_is_deterministic(self):
        a = layered_block(random.Random("x"), "c")
        b = layered_block(random.Random("x"), "c")
        assert [i.render() for i in a.instructions] == \
            [i.render() for i in b.instructions]

    def test_random_arc_block_is_deterministic(self):
        a = random_arc_block(random.Random("y"), "c")
        b = random_arc_block(random.Random("y"), "c")
        assert [i.render() for i in a.instructions] == \
            [i.render() for i in b.instructions]

    def test_generated_ids_are_positions(self):
        block = layered_block(random.Random("z"), "c")
        assert [i.index for i in block.instructions] == \
            list(range(len(block.instructions)))
        assert 1 <= len(block.instructions) <= 24

    def test_mutated_kernel_parses(self):
        blocks = mutate_kernel(random.Random("m"))
        for block in blocks:
            assert block.instructions

    def test_mutation_survives_many_seeds(self):
        # No seed may crash the mutator (empty results are fine).
        for k in range(25):
            mutate_kernel(random.Random(f"m{k}"))


class TestOracle:
    def test_clean_generated_blocks_pass(self, machine):
        for k in range(5):
            block = layered_block(random.Random(f"ok{k}"), f"ok{k}")
            assert check_block(block, machine) is None

    def test_injected_disagreement_is_caught(self, machine):
        builders = list(ALL_BUILDERS) + [_DisagreeingBuilder]
        caught = 0
        for k in range(5):
            block = layered_block(random.Random(f"f{k}"), f"f{k}")
            description = check_block(block, machine, builders)
            if description is not None:
                assert "disagree" in description
                caught += 1
        assert caught > 0

    def test_minimizer_shrinks_and_preserves_failure(self, machine):
        builders = list(ALL_BUILDERS) + [_DisagreeingBuilder]
        block = next(
            b for b in (layered_block(random.Random(f"f{k}"), f"f{k}")
                        for k in range(10))
            if check_block(b, machine, builders) is not None)
        minimized = minimize_block(
            block, lambda b: check_block(b, machine, builders) is not None)
        assert len(minimized.instructions) <= len(block.instructions)
        assert check_block(minimized, machine, builders) is not None


class TestCampaign:
    def test_same_seed_same_campaign(self, tmp_path, machine):
        a = fuzz(seed=7, iterations=9, machine=machine,
                 out_dir=str(tmp_path / "a"))
        b = fuzz(seed=7, iterations=9, machine=machine,
                 out_dir=str(tmp_path / "b"))
        assert a.n_blocks == b.n_blocks
        assert a.n_skipped == b.n_skipped
        assert len(a.failures) == len(b.failures)

    def test_clean_run_finds_nothing(self, tmp_path, machine):
        result = fuzz(seed=0, iterations=12, machine=machine,
                      out_dir=str(tmp_path / "out"))
        assert result.passed
        assert result.n_blocks > 0
        assert not os.path.exists(str(tmp_path / "out"))

    def test_injected_fault_yields_minimized_reproducer(
            self, tmp_path, machine):
        result = fuzz(seed=0, iterations=3, machine=machine,
                      out_dir=str(tmp_path / "out"), inject_fault=True)
        assert not result.passed
        failure = result.failures[0]
        assert failure.minimized_size <= failure.original_size
        assert os.path.exists(failure.reproducer)
        text = open(failure.reproducer).read()
        assert text.startswith("! repro fuzz reproducer")
        assert "! failure:" in text
        body = [l for l in text.splitlines() if not l.startswith("!")]
        assert len(body) == failure.minimized_size

    def test_unknown_shape_rejected(self, machine):
        with pytest.raises(ReproError, match="unknown fuzz shape"):
            fuzz(seed=0, iterations=1, machine=machine,
                 shapes=("bogus",))

    def test_shape_subset(self, tmp_path, machine):
        result = fuzz(seed=1, iterations=4, machine=machine,
                      out_dir=str(tmp_path / "out"),
                      shapes=("layered",))
        assert result.n_blocks == 4
