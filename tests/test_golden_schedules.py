"""Golden schedules: exact expected orders for the hand-written kernels.

These freeze the observable behaviour of the whole pipeline (parser ->
builder -> passes -> scheduler -> tie-breaking) so that refactors
cannot silently change schedules.  If a deliberate algorithmic change
moves one of these, update the golden value alongside the change.
"""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.algorithms import (
    GibbonsMuchnick,
    Schlansker,
    Warren,
)
from repro.scheduling.list_scheduler import schedule_forward
from repro.pipeline import SECTION6_PRIORITY
from repro.workloads import kernel_source


def block_of(kernel: str):
    return partition_blocks(parse_asm(kernel_source(kernel)))[0]


class TestSection6Pipeline:
    def test_figure1_order_and_makespan(self):
        machine = generic_risc()
        dag = TableForwardBuilder(machine).build(block_of("figure1")).dag
        backward_pass(dag, require_est=False)
        result = schedule_forward(dag, machine, SECTION6_PRIORITY)
        assert [n.id for n in result.order] == [0, 1, 2]
        assert result.makespan == 24

    def test_daxpy_order_and_makespan(self):
        machine = generic_risc()
        dag = TableForwardBuilder(machine).build(block_of("daxpy")).dag
        backward_pass(dag, require_est=False)
        result = schedule_forward(dag, machine, SECTION6_PRIORITY)
        assert [n.id for n in result.order] == \
            [0, 5, 2, 7, 1, 6, 12, 10, 3, 8, 4, 9, 11, 13]
        assert result.makespan == 16

    def test_dot_product_order_and_makespan(self):
        machine = generic_risc()
        dag = TableForwardBuilder(machine).build(
            block_of("dot_product")).dag
        backward_pass(dag, require_est=False)
        result = schedule_forward(dag, machine, SECTION6_PRIORITY)
        assert result.order[0].instr.opcode.mnemonic == "ldd"
        assert result.order[-1].instr.opcode.mnemonic == "bg"
        assert result.makespan == 13

    def test_livermore1_makespan(self):
        machine = generic_risc()
        dag = TableForwardBuilder(machine).build(
            block_of("livermore1")).dag
        backward_pass(dag, require_est=False)
        result = schedule_forward(dag, machine, SECTION6_PRIORITY)
        original = 29  # simulated original order (pinned)
        from repro.scheduling.timing import simulate
        assert simulate(list(dag.real_nodes()), machine).makespan \
            == original
        assert result.makespan == 26


class TestAlgorithmsGolden:
    def test_warren_on_superscalar_mix(self):
        result = Warren(generic_risc()).schedule_block(
            block_of("superscalar_mix"))
        assert [n.id for n in result.order] == \
            [1, 0, 3, 2, 4, 6, 5, 8, 7, 9]
        assert result.makespan == 17

    def test_gibbons_muchnick_on_daxpy(self):
        result = GibbonsMuchnick(generic_risc()).schedule_block(
            block_of("daxpy"))
        assert result.makespan <= 20
        assert result.order[-1].instr.opcode.mnemonic == "bg"

    def test_schlansker_on_figure1(self):
        result = Schlansker(generic_risc()).schedule_block(
            block_of("figure1"))
        assert [n.id for n in result.order] == [0, 1, 2]
        assert result.makespan == 24
