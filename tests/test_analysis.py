"""Tests for table regeneration and text reports."""

from repro.analysis.report import format_table, render_rows
from repro.analysis.tables import (
    table1_rows,
    table2_rows,
    table3_row,
    table3_rows,
    table45_row,
)
from repro.dag.builders import TableForwardBuilder
from repro.machine import sparcstation2_like
from repro.scheduling.algorithms import ALL_ALGORITHMS
from repro.workloads import generate_blocks, scaled_profile


class TestTable1:
    def test_26_rows(self):
        assert len(table1_rows()) == 26

    def test_transitive_markers_present(self):
        rows = table1_rows()
        marked = [r for r in rows if r["heuristic"].endswith("**")]
        assert len(marked) == 9

    def test_pass_values_valid(self):
        assert {r["pass"] for r in table1_rows()} <= \
            {"a", "b", "f", "v", "f+b"}


class TestTable2:
    def test_six_rows(self):
        assert len(table2_rows(ALL_ALGORITHMS)) == 6

    def test_columns(self):
        row = table2_rows(ALL_ALGORITHMS)[0]
        assert set(row) == {"algorithm", "dag pass", "dag algorithm",
                            "sched pass", "combination", "heuristics"}

    def test_heuristic_rankings_included(self):
        rows = {r["algorithm"]: r for r in table2_rows(ALL_ALGORITHMS)}
        assert "1f+b slack time" in rows["Schlansker"]["heuristics"]


class TestTable3:
    def test_row_matches_profile(self):
        profile = scaled_profile("grep", 0.2)
        blocks = generate_blocks(profile)
        row = table3_row("grep", blocks)
        assert row["blocks"] == profile.n_blocks
        assert row["insts"] == profile.total_insts
        assert row["insts/bb max"] == profile.max_block

    def test_rows_for_multiple_benchmarks(self):
        benchmarks = {
            name: generate_blocks(scaled_profile(name, 0.05))
            for name in ("grep", "regex")
        }
        rows = table3_rows(benchmarks)
        assert [r["benchmark"] for r in rows] == ["grep", "regex"]


class TestTable45:
    def test_row_contents(self):
        machine = sparcstation2_like()
        blocks = generate_blocks(scaled_profile("linpack", 0.1))
        row = table45_row("linpack", blocks, machine,
                          lambda: TableForwardBuilder(machine))
        assert row["run time (s)"] >= 0
        assert row["children max"] > 0
        assert row["table probes"] > 0
        assert row["comparisons"] == 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "2.50" in text

    def test_render_rows(self):
        text = render_rows([{"x": 1, "y": "z"}], title="T")
        assert text.startswith("T")
        assert "x" in text and "z" in text

    def test_render_empty(self):
        assert render_rows([], title="none") == "none"
