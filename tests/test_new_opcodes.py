"""Semantics tests for the extended SPARC V8 opcode set.

The interesting additions all carry *implicit* resources: carry-chain
arithmetic threads %icc, multiply-step threads %icc AND %y, the %y
read/write pair serializes against multiplies, and the atomics are the
only instructions that both use and define a memory location.
"""

from repro.asm import parse_asm
from repro.asm.parser import parse_instruction_text
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.dep import DepType
from repro.isa.resources import defs_and_uses
from repro.machine import generic_risc


def du(text: str):
    defs, uses = defs_and_uses(parse_instruction_text(text))
    return [r.name for r in defs], [r.name for r in uses]


def arcs_of(source: str):
    blocks = partition_blocks(parse_asm(source))
    dag = TableForwardBuilder(generic_risc()).build(blocks[0]).dag
    return {(a.parent.id, a.child.id, a.dep) for a in dag.arcs()}


class TestCarryChain:
    def test_addx_reads_icc(self):
        defs, uses = du("addx %o1, %o2, %o3")
        assert "%icc" in uses
        assert "%icc" not in defs

    def test_addxcc_reads_and_writes_icc(self):
        defs, uses = du("addxcc %o1, %o2, %o3")
        assert "%icc" in uses
        assert "%icc" in defs

    def test_64bit_add_sequence_is_chained(self):
        # addcc (low word) -> addx (high word): a RAW through %icc.
        arcs = arcs_of("addcc %o1, %o3, %o5\naddx %o2, %o4, %l2")
        assert (0, 1, DepType.RAW) in arcs

    def test_carry_chain_not_reorderable(self):
        # Two independent 64-bit adds still serialize on %icc:
        # WAR from the first addx to the second addcc.
        arcs = arcs_of("""
            addcc %o1, %o3, %o5
            addx %o2, %o4, %l2
            addcc %l4, %l6, %i0
            addx %l5, %l7, %i1
        """)
        assert (1, 2, DepType.WAR) in arcs


class TestMultiplyStep:
    def test_mulscc_resources(self):
        defs, uses = du("mulscc %o1, %o2, %o1")
        assert "%icc" in defs and "%icc" in uses
        assert "%y" in defs and "%y" in uses

    def test_mulscc_sequence_fully_serialized(self):
        # The classic mulscc ladder cannot be reordered: each step
        # chains through both %icc and %y.
        arcs = arcs_of("""
            mulscc %o1, %o2, %o1
            mulscc %o1, %o2, %o1
            mulscc %o1, %o2, %o1
        """)
        assert (0, 1, DepType.RAW) in arcs
        assert (1, 2, DepType.RAW) in arcs


class TestYRegister:
    def test_rd_y(self):
        defs, uses = du("rd %y, %o0")
        assert (defs, uses) == (["%o0"], ["%y"])

    def test_wr_y(self):
        defs, uses = du("wr %o1, %y")
        assert (defs, uses) == (["%y"], ["%o1"])

    def test_multiply_then_rd_y_is_raw(self):
        # smul writes %y (the high bits); rd %y consumes them.
        arcs = arcs_of("smul %o1, %o2, %o3\nrd %y, %o4")
        assert (0, 1, DepType.RAW) in arcs

    def test_rd_y_then_multiply_is_war(self):
        arcs = arcs_of("rd %y, %o4\nsmul %o1, %o2, %o3")
        assert (0, 1, DepType.WAR) in arcs

    def test_wrong_y_position_rejected(self):
        import pytest
        from repro.errors import AsmSyntaxError
        with pytest.raises(AsmSyntaxError):
            parse_asm("rd %o0, %y")


class TestAtomics:
    def test_swap_uses_and_defines_everything(self):
        defs, uses = du("swap [%o0+4], %o1")
        assert defs == ["%o1", "%o0+4"]
        assert uses == ["%o0", "%o0+4", "%o1"]

    def test_ldstub_does_not_use_the_register(self):
        defs, uses = du("ldstub [%o0], %o1")
        assert defs == ["%o1", "%o0"]
        assert "%o1" not in uses

    def test_swap_orders_against_loads_and_stores(self):
        arcs = arcs_of("""
            ld [%l0], %o0
            swap [%l0], %o1
            st %o2, [%l0]
        """)
        # load -> swap (WAR on the location), swap -> store (WAR),
        # and swap defines it so the store is also WAW-ordered.
        assert (0, 1, DepType.WAR) in arcs
        assert any(p == 1 and c == 2 for p, c, _ in arcs)

    def test_two_swaps_serialize(self):
        arcs = arcs_of("swap [%l0], %o1\nswap [%l0], %o2")
        assert any(p == 0 and c == 1 for p, c, _ in arcs)


class TestSignedLoads:
    def test_ldsb_like_other_loads(self):
        defs, uses = du("ldsb [%fp-1], %o0")
        assert defs == ["%o0"]
        assert "%i6-1" in uses

    def test_new_branches_read_icc(self):
        for m in ("bpos", "bneg", "bvc", "bvs"):
            _, uses = du(f"{m} away")
            assert uses == ["%icc"]
