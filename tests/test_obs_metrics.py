"""Tests for the metrics registry: types, labels, snapshots, merging."""

import json

import pytest

from repro.obs import MetricsRegistry, read_metrics, write_metrics
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    record_block_structure,
    record_build,
    record_cache,
    record_incremental_repair,
    record_outcome,
    record_verify_check,
)


class TestCounter:
    def test_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "h", labels=("builder",))
        c.inc(2, builder="n2")
        c.inc(builder="n2")
        c.inc(5, builder="landskov")
        assert reg.value("hits", builder="n2") == 3
        assert reg.value("hits", builder="landskov") == 5

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "h", labels=("builder",))
        with pytest.raises(ValueError):
            c.inc(1, wrong="x")
        with pytest.raises(ValueError):
            c.inc(1)


class TestGauge:
    def test_max_aggregation(self):
        reg = MetricsRegistry()
        g = reg.gauge("peak", "p")
        g.set(3)
        g.set(7)
        g.set(5)
        assert reg.value("peak") == 7

    def test_last_aggregation(self):
        reg = MetricsRegistry()
        g = reg.gauge("state", "s", volatile=True, agg="last")
        g.set(3)
        g.set(1)
        assert reg.value("state") == 1

    def test_unknown_agg_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().gauge("g", "g", agg="sum")

    def test_stable_last_gauge_rejected(self):
        # agg="last" is merge-order dependent, so a stable (snapshot-
        # diffed) gauge may not use it: --jobs 4 could then legally
        # diverge from --jobs 1.
        with pytest.raises(ValueError, match="volatile"):
            MetricsRegistry().gauge("g", "g", agg="last")


class TestHistogram:
    def test_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", "s", buckets=(1, 4, 16))
        for value in (1, 2, 5, 100):
            h.observe(value)
        snap = h.snapshot()["values"][""]
        assert snap["count"] == 4
        assert snap["sum"] == 108
        assert snap["buckets"] == {"1": 1, "4": 2, "16": 3, "+Inf": 4}

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", "h", buckets=(4, 1))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("c", "help", labels=("x",))
        b = reg.counter("c", "ignored", labels=("x",))
        assert a is b

    def test_conflicting_redefinition_rejected(self):
        reg = MetricsRegistry()
        reg.counter("c", "h")
        with pytest.raises(ValueError):
            reg.gauge("c", "h")
        with pytest.raises(ValueError):
            reg.counter("c", "h", labels=("x",))

    def test_snapshot_sections_and_determinism(self):
        def build():
            reg = MetricsRegistry()
            # insertion order deliberately scrambled
            reg.counter("z_stable", "z").inc(1)
            reg.counter("a_volatile", "a", volatile=True).inc(2)
            reg.counter("a_stable", "a").inc(3)
            return reg

        one, two = build().snapshot(), build().snapshot()
        assert one == two
        assert one["schema_version"] == METRICS_SCHEMA_VERSION
        assert list(one["stable"]) == ["a_stable", "z_stable"]
        assert list(one["volatile"]) == ["a_volatile"]

    def test_dump_merge_equals_direct(self):
        def record(reg, amount):
            reg.counter("work", "w", labels=("b",)).inc(amount, b="x")
            reg.gauge("peak", "p").set(amount)
            reg.histogram("sizes", "s", buckets=(4, 16)).observe(amount)

        direct = MetricsRegistry()
        record(direct, 3)
        record(direct, 10)

        parent = MetricsRegistry()
        for amount in (3, 10):
            worker = MetricsRegistry()
            record(worker, amount)
            parent.merge(worker.dump())
        assert parent.snapshot() == direct.snapshot()

    def test_merge_is_commutative_for_counters_and_max_gauges(self):
        dumps = []
        for amount in (3, 10):
            reg = MetricsRegistry()
            reg.counter("c", "c").inc(amount)
            reg.gauge("g", "g").set(amount)
            dumps.append(reg.dump())
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(dumps[0]); ab.merge(dumps[1])
        ba.merge(dumps[1]); ba.merge(dumps[0])
        assert ab.snapshot() == ba.snapshot()

    def test_dump_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c", "c", labels=("x",), volatile=True).inc(4, x="a")
        reg.histogram("h", "h").observe(2)
        wire = json.loads(json.dumps(reg.dump()))
        other = MetricsRegistry()
        other.merge(wire)
        assert other.snapshot() == reg.snapshot()

    def test_write_read_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", "c").inc(7)
        path = tmp_path / "metrics.json"
        write_metrics(reg, str(path))
        assert read_metrics(str(path)) == reg.snapshot()


class _Stats:
    comparisons = 10
    table_probes = 20
    alias_checks = 3
    arcs_added = 5
    arcs_merged = 1
    arcs_suppressed = 2
    bitmap_ops = 4


class _Attempt:
    def __init__(self, builder, stage, work):
        self.builder, self.stage, self.work = builder, stage, work


class _Outcome:
    makespan = 9
    original_makespan = 14
    degraded = False
    attempts = [_Attempt("n2", "timeout", 100),
                _Attempt("table-forward", "ok", 30)]


class TestCatalogHelpers:
    def test_all_helpers_noop_without_registry(self):
        record_build(None, "n2", _Stats())
        record_block_structure(None, 5, 2)
        record_outcome(None, _Outcome())
        record_cache(None, 1, 2)
        record_verify_check(None, "timing", True)
        record_incremental_repair(None, 3, 10)

    def test_record_build(self):
        reg = MetricsRegistry()
        record_build(reg, "n2", _Stats(), words_touched=8)
        assert reg.value("repro_build_blocks_total", builder="n2") == 1
        assert reg.value("repro_build_comparisons_total",
                         builder="n2") == 10
        assert reg.value("repro_bitmap_words_touched_total",
                         builder="n2") == 8
        assert reg.value("repro_block_arcs_max") == 5

    def test_record_outcome_fallback_accounting(self):
        reg = MetricsRegistry()
        record_outcome(reg, _Outcome())
        assert reg.value("repro_makespan_cycles_total") == 9
        assert reg.value("repro_original_makespan_cycles_total") == 14
        assert reg.value("repro_fallback_attempts_total",
                         builder="n2", stage="timeout") == 1
        assert reg.value("repro_fallback_attempts_total",
                         builder="table-forward", stage="ok") == 1
        # wasted work counts the rejected attempt only
        assert reg.value("repro_fallback_wasted_work_total") == 100
        assert reg.value("repro_watchdog_work_spent_total") == 130
        assert "repro_blocks_degraded_total" not in reg

    def test_record_cache_is_volatile(self):
        reg = MetricsRegistry()
        record_cache(reg, 3, 2, entries=4, recipes=9)
        snap = reg.snapshot()
        assert "repro_cache_hits_total" in snap["volatile"]
        assert snap["stable"] == {}

    def test_record_verify_check_result_label(self):
        reg = MetricsRegistry()
        record_verify_check(reg, "timing", True)
        record_verify_check(reg, "timing", False)
        assert reg.value("repro_verify_checks_total",
                         check="timing", result="pass") == 1
        assert reg.value("repro_verify_checks_total",
                         check="timing", result="fail") == 1
