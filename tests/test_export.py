"""Tests for DAG export (DOT / networkx)."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableBackwardBuilder
from repro.dag.export import to_dot, to_networkx
from repro.dag.forest import attach_dummy_root
from repro.machine import generic_risc
from repro.workloads import kernel_source


def figure1_dag():
    blocks = partition_blocks(parse_asm(kernel_source("figure1")))
    return TableBackwardBuilder(generic_risc()).build(blocks[0]).dag


class TestToDot:
    def test_valid_digraph_shape(self):
        dot = to_dot(figure1_dag(), name="fig1")
        assert dot.startswith('digraph "fig1" {')
        assert dot.rstrip().endswith("}")

    def test_all_nodes_and_arcs_present(self):
        dag = figure1_dag()
        dot = to_dot(dag)
        for node in dag.nodes:
            assert f"n{node.id} [" in dot
        assert dot.count("->") == dag.n_arcs

    def test_dep_styles(self):
        dot = to_dot(figure1_dag())
        assert "style=dashed" in dot   # WAR
        assert "style=solid" in dot    # RAW

    def test_transitive_highlighting(self):
        dot = to_dot(figure1_dag(), highlight_transitive=True)
        # Figure 1's transitive arc is timing-essential: bold red.
        assert "color=red penwidth=2" in dot

    def test_dummy_nodes_rendered(self):
        dag = figure1_dag()
        attach_dummy_root(dag)
        dot = to_dot(dag)
        assert "entry/exit" in dot

    def test_label_escaping(self):
        dot = to_dot(figure1_dag(), name='we"ird')
        assert 'digraph "we\\"ird"' in dot


class TestToNetworkx:
    def test_structure_matches(self):
        dag = figure1_dag()
        graph = to_networkx(dag)
        assert graph.number_of_nodes() == len(dag)
        assert graph.number_of_edges() == dag.n_arcs

    def test_attributes(self):
        dag = figure1_dag()
        graph = to_networkx(dag)
        assert graph.nodes[0]["execution_time"] == 20
        assert graph.edges[0, 2]["delay"] == 20
        assert graph.edges[0, 1]["dep"] == "WAR"

    def test_is_a_dag(self):
        import networkx as nx
        assert nx.is_directed_acyclic_graph(to_networkx(figure1_dag()))

    def test_longest_path_matches_critical_length(self):
        import networkx as nx
        from repro.heuristics.critical_path import critical_path_length
        from repro.heuristics.passes import forward_pass
        dag = figure1_dag()
        forward_pass(dag)
        graph = to_networkx(dag)
        longest = nx.dag_longest_path_length(graph, weight="delay")
        # Longest delay path (20) + the final leaf's execution (4).
        assert longest + dag.nodes[2].execution_time == \
            critical_path_length(dag)
