"""Cross-module integration tests on generated workloads.

These exercise the full stack -- generator -> (parser) -> CFG ->
builders -> heuristic passes -> schedulers -> timing -- at workload
scale, checking the invariants that unit tests verify only on tiny
fixtures.
"""

import pytest

from repro.asm import parse_asm, render_program
from repro.cfg import apply_window, partition_blocks
from repro.dag.bitmap import compute_reachability
from repro.dag.builders import (
    ALL_BUILDERS,
    CompareAllBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc, rs6000_like, sparcstation2_like
from repro.scheduling.algorithms import ALL_ALGORITHMS
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate, verify_order
from repro.workloads import (
    generate_blocks,
    generate_program,
    scaled_profile,
)

CP = winnowing("max_path_to_leaf", "max_delay_to_leaf",
               "max_delay_to_child")


@pytest.fixture(scope="module")
def linpack_blocks():
    return [b for b in generate_blocks(scaled_profile("linpack", 0.1))
            if b.size]


@pytest.fixture(scope="module")
def grep_blocks():
    return [b for b in generate_blocks(scaled_profile("grep", 0.1))
            if b.size]


class TestBuildersAtScale:
    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS,
                             ids=lambda c: c.name)
    def test_all_blocks_build(self, linpack_blocks, builder_cls):
        machine = sparcstation2_like()
        for block in linpack_blocks:
            outcome = builder_cls(machine).build(block)
            assert len(outcome.dag) == block.size
            for arc in outcome.dag.arcs():
                assert arc.parent.id < arc.child.id
                assert arc.delay >= 0

    def test_closure_equivalence_at_scale(self, linpack_blocks):
        machine = sparcstation2_like()
        for block in linpack_blocks[:40]:
            n2 = CompareAllBuilder(machine).build(block).dag
            tf = TableForwardBuilder(machine).build(block).dag
            c1 = compute_reachability(n2)
            c2 = compute_reachability(tf)
            for i in range(len(n2)):
                assert c1.raw(i) == c2.raw(i), (block.index, i)

    def test_forward_backward_identical_at_scale(self, linpack_blocks):
        machine = sparcstation2_like()
        for block in linpack_blocks:
            fw = TableForwardBuilder(machine).build(block).dag
            bw = TableBackwardBuilder(machine).build(block).dag
            assert {(a.parent.id, a.child.id, a.delay)
                    for a in fw.arcs()} == \
                {(a.parent.id, a.child.id, a.delay) for a in bw.arcs()}


class TestSchedulersAtScale:
    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_all_blocks_schedule_legally(self, linpack_blocks,
                                         algorithm_cls):
        machine = generic_risc()
        for block in linpack_blocks[:60]:
            result = algorithm_cls(machine).schedule_block(block)
            verify_order(result.order, result.build.dag)

    def test_forward_scheduler_improves_workload(self, linpack_blocks):
        machine = sparcstation2_like()
        improved = worsened = 0
        for block in linpack_blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            backward_pass(dag, require_est=False)
            result = schedule_forward(dag, machine, CP)
            original = simulate(list(dag.real_nodes()), machine)
            if result.makespan < original.makespan:
                improved += 1
            elif result.makespan > original.makespan:
                worsened += 1
        assert worsened == 0
        assert improved > 0

    @pytest.mark.parametrize("machine_factory",
                             [generic_risc, sparcstation2_like,
                              rs6000_like],
                             ids=["generic", "sparc", "rs6000"])
    def test_scheduling_on_every_machine(self, grep_blocks,
                                         machine_factory):
        machine = machine_factory()
        for block in grep_blocks[:50]:
            dag = TableForwardBuilder(machine).build(block).dag
            backward_pass(dag, require_est=False)
            result = schedule_forward(dag, machine, CP)
            verify_order(result.order, dag)


class TestParserRoundTripAtScale:
    def test_generated_program_round_trips(self):
        program = generate_program(scaled_profile("dfa", 0.05))
        text = render_program(program)
        reparsed = parse_asm(text)
        assert [i.render() for i in program] == \
            [i.render() for i in reparsed]
        assert partition_blocks(program) is not None

    def test_block_boundaries_survive_round_trip(self):
        program = generate_program(scaled_profile("regex", 0.05))
        before = [b.size for b in partition_blocks(program)]
        after = [b.size for b in
                 partition_blocks(parse_asm(render_program(program)))]
        assert before == after


class TestWindowingAtScale:
    def test_window_preserves_schedulability(self):
        machine = sparcstation2_like()
        blocks = generate_blocks(scaled_profile("tomcatv", 0.2))
        for window in (16, 64, 256):
            for block in apply_window(blocks, window):
                if not block.size:
                    continue
                dag = TableForwardBuilder(machine).build(block).dag
                backward_pass(dag, require_est=False)
                verify_order(schedule_forward(dag, machine, CP).order,
                             dag)

    def test_smaller_windows_cannot_beat_unwindowed(self):
        # A windowed schedule is a constrained version of the
        # unwindowed one: concatenating per-chunk schedules is a legal
        # order of the full block, so the unwindowed scheduler can only
        # do at least as well per block.
        machine = generic_risc()
        blocks = [b for b in
                  generate_blocks(scaled_profile("tomcatv", 0.2))
                  if b.size >= 64][:5]
        for block in blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            backward_pass(dag, require_est=False)
            full = schedule_forward(dag, machine, CP).makespan
            windowed_total = 0
            for chunk in apply_window([block], 16):
                cdag = TableForwardBuilder(machine).build(chunk).dag
                backward_pass(cdag, require_est=False)
                windowed_total += schedule_forward(
                    cdag, machine, CP).makespan
            assert full <= windowed_total + block.size // 16 + 1


class TestStatisticsConsistency:
    def test_structural_stats_independent_of_builder_for_tables(self,
                                                                grep_blocks):
        # Table 3 statistics must not depend on the DAG builder at all.
        from repro.analysis.tables import table3_row
        row1 = table3_row("grep", grep_blocks)
        row2 = table3_row("grep", list(grep_blocks))
        assert row1 == row2

    def test_unique_mem_exprs_match_resource_space(self, linpack_blocks):
        # The resource space tracks word slots (a double access adds
        # its odd-word slot too), so it is an upper bound on — and at
        # most 2x — the Table 3 operand-level expression count.
        machine = sparcstation2_like()
        for block in linpack_blocks[:50]:
            outcome = TableForwardBuilder(machine).build(block)
            operands = len(block.unique_memory_exprs())
            assert operands <= outcome.space.n_memory_exprs <= 2 * operands
