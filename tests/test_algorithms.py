"""Tests for the six published algorithms of Table 2."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.machine import generic_risc, rs6000_like, sparcstation2_like
from repro.scheduling.algorithms import (
    ALL_ALGORITHMS,
    GibbonsMuchnick,
    Krishnamurthy,
    Schlansker,
    ShiehPapachristou,
    Tiemann,
    Warren,
)
from repro.scheduling.timing import simulate, verify_order
from repro.workloads import kernel_source


def block_of(source: str):
    return partition_blocks(parse_asm(source))[0]


STALL_HEAVY = """
    ld [%fp-8], %o0
    add %o0, 1, %o1
    ld [%fp-12], %o2
    add %o2, 1, %o3
    fdivd %f0, %f2, %f4
    faddd %f4, %f6, %f8
    st %o1, [%fp-8]
    st %o3, [%fp-12]
"""


class TestAllAlgorithms:
    @pytest.mark.parametrize("cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_legal_schedules_on_kernels(self, cls):
        machine = generic_risc()
        for kernel in ("figure1", "daxpy", "livermore1", "dot_product",
                       "superscalar_mix"):
            alg = cls(machine)
            result = alg.schedule_block(block_of(kernel_source(kernel)))
            verify_order(result.order, result.build.dag)

    @pytest.mark.parametrize("cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_never_worse_than_original_on_stall_heavy(self, cls):
        machine = generic_risc()
        result = cls(machine).schedule_block(block_of(STALL_HEAVY))
        assert result.makespan <= result.original_timing.makespan

    @pytest.mark.parametrize("cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_improves_stall_heavy_block(self, cls):
        # Every surveyed algorithm finds some overlap in this block.
        machine = generic_risc()
        result = cls(machine).schedule_block(block_of(STALL_HEAVY))
        assert result.makespan < result.original_timing.makespan
        assert result.speedup > 1.0

    @pytest.mark.parametrize("cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_deterministic(self, cls):
        machine = generic_risc()
        block = block_of(kernel_source("livermore1"))
        r1 = cls(machine).schedule_block(block)
        r2 = cls(machine).schedule_block(block)
        assert [n.id for n in r1.order] == [n.id for n in r2.order]

    @pytest.mark.parametrize("cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_terminator_stays_last(self, cls):
        machine = generic_risc()
        result = cls(machine).schedule_block(block_of(
            "ld [%fp-8], %o0\nadd %o0, 1, %o1\ncmp %o1, 3\nbe out"))
        assert result.order[-1].instr.opcode.mnemonic == "be"


class TestTable2Metadata:
    def test_all_six_present(self):
        assert len(ALL_ALGORITHMS) == 6

    def test_construction_columns(self):
        assert (GibbonsMuchnick.dag_pass, GibbonsMuchnick.dag_algorithm) \
            == ("b", "n**2")
        assert (Krishnamurthy.dag_pass, Krishnamurthy.dag_algorithm) \
            == ("f", "table building")
        assert Schlansker.dag_algorithm == "n.g."
        assert ShiehPapachristou.dag_algorithm == "n.g."
        assert (Tiemann.dag_pass, Tiemann.dag_algorithm) \
            == ("f", "table building")
        assert (Warren.dag_pass, Warren.dag_algorithm) == ("f", "n**2")

    def test_scheduling_passes(self):
        assert GibbonsMuchnick.sched_pass == "f"
        assert Krishnamurthy.sched_pass == "f+postpass"
        assert Schlansker.sched_pass == "b"
        assert ShiehPapachristou.sched_pass == "f"
        assert Tiemann.sched_pass == "b"
        assert Warren.sched_pass == "f"

    def test_priority_fn_vs_winnowing(self):
        assert not GibbonsMuchnick.priority_fn
        assert Krishnamurthy.priority_fn
        assert Schlansker.priority_fn
        assert not ShiehPapachristou.priority_fn
        assert Tiemann.priority_fn
        assert not Warren.priority_fn

    def test_ranking_lengths(self):
        assert len(GibbonsMuchnick.ranking) == 4
        assert len(Krishnamurthy.ranking) == 5
        assert len(Schlansker.ranking) == 2
        assert len(ShiehPapachristou.ranking) == 5
        assert len(Tiemann.ranking) == 3
        assert len(Warren.ranking) == 6


class TestAlgorithmSpecifics:
    def test_gibbons_muchnick_avoids_interlocks(self):
        # After the load, G&M picks a non-dependent instruction.
        machine = generic_risc()
        result = GibbonsMuchnick(machine).schedule_block(block_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            mov 5, %o2
        """))
        ids = [n.id for n in result.order]
        assert ids.index(2) == 1  # the mov fills the load slot

    def test_krishnamurthy_fixup_not_worse_than_no_fixup(self):
        machine = generic_risc()
        block = block_of(STALL_HEAVY)
        result = Krishnamurthy(machine).schedule_block(block)
        assert result.makespan <= result.original_timing.makespan

    def test_schlansker_schedules_critical_path_first(self):
        machine = generic_risc()
        result = Schlansker(machine).schedule_block(
            block_of(kernel_source("figure1")))
        # The divide (zero slack) must be first.
        assert result.order[0].id == 0
        assert result.makespan == 24

    def test_shieh_drop_path_to_root_variant(self):
        # The paper: the fifth heuristic "could possibly be omitted or
        # replaced with little effect".
        machine = generic_risc()
        block = block_of(kernel_source("livermore1"))
        with_it = ShiehPapachristou(machine).schedule_block(block)
        without = ShiehPapachristou(machine,
                                    drop_path_to_root=True
                                    ).schedule_block(block)
        assert abs(with_it.makespan - without.makespan) <= 1

    def test_tiemann_birthing_biases_raw_parents(self):
        machine = generic_risc()
        result = Tiemann(machine).schedule_block(block_of("""
            mov 1, %o0
            mov 2, %o1
            add %o0, %o1, %o2
        """))
        verify_order(result.order, result.build.dag)

    def test_tiemann_gcc2_variant_runs(self):
        machine = generic_risc()
        result = Tiemann(machine, gcc2_registers_killed=True) \
            .schedule_block(block_of(STALL_HEAVY))
        assert result.makespan <= result.original_timing.makespan

    def test_warren_alternates_types_on_superscalar_mix(self):
        machine = generic_risc()
        result = Warren(machine).schedule_block(
            block_of(kernel_source("superscalar_mix")))
        classes = [n.instr.opcode.issue_class for n in result.order]
        alternations = sum(1 for a, b in zip(classes, classes[1:])
                           if a is not b)
        # The original order already alternates heavily; Warren must
        # keep a high alternation count.
        assert alternations >= len(classes) // 2

    def test_warren_postpass_variant_skips_liveness(self):
        machine = rs6000_like()
        block = block_of(STALL_HEAVY)
        prepass = Warren(machine, prepass=True).schedule_block(block)
        postpass = Warren(machine, prepass=False).schedule_block(block)
        verify_order(prepass.order, prepass.build.dag)
        verify_order(postpass.order, postpass.build.dag)

    def test_speedup_property(self):
        machine = generic_risc()
        result = Warren(machine).schedule_block(block_of(STALL_HEAVY))
        assert result.speedup == pytest.approx(
            result.original_timing.makespan / result.makespan)
