"""Tests for the whole-program scheduling transformation."""

import pytest

from repro.asm import parse_asm, render_program
from repro.cfg import partition_blocks
from repro.machine import generic_risc
from repro.transform import schedule_program
from repro.workloads import generate_program, kernel_source, scaled_profile

SOURCE = """
entry:
    ld [%fp-8], %o0
    add %o0, 1, %o1
    st %o1, [%fp-16]
    cmp %o0, 5
    bl entry
    nop
    mov 0, %o0
    retl
    nop
"""


class TestScheduleProgram:
    def test_produces_same_multiset_of_instructions(self):
        program = parse_asm(kernel_source("daxpy"))
        scheduled, report = schedule_program(program, generic_risc(),
                                             fill_slots=False)
        assert sorted(i.render() for i in program) == \
            sorted(i.render() for i in scheduled)

    def test_report_counts(self):
        program = parse_asm(SOURCE)
        _, report = schedule_program(program, generic_risc())
        assert report.n_blocks >= 2
        assert report.scheduled_cycles <= report.original_cycles
        assert report.speedup >= 1.0

    def test_delay_slot_filled_and_nop_removed(self):
        program = parse_asm(SOURCE)
        scheduled, report = schedule_program(program, generic_risc(),
                                             fill_slots=True)
        assert report.delay_slots_filled >= 1
        assert report.nops_removed >= 1
        assert len(scheduled) == len(program) - report.nops_removed

    def test_slot_filling_can_be_disabled(self):
        program = parse_asm(SOURCE)
        scheduled, report = schedule_program(program, generic_risc(),
                                             fill_slots=False)
        assert report.delay_slots_filled == 0
        assert len(scheduled) == len(program)

    def test_branch_stays_before_its_slot(self):
        program = parse_asm(SOURCE)
        scheduled, report = schedule_program(program, generic_risc())
        mnemonics = [i.opcode.mnemonic for i in scheduled]
        bl_pos = mnemonics.index("bl")
        # Exactly one instruction (the filled slot) follows the branch
        # before the next block's label position.
        assert scheduled.labels["entry"] == 0
        assert bl_pos + 1 < len(scheduled)

    def test_labels_reanchored_to_block_starts(self):
        program = parse_asm(SOURCE)
        scheduled, _ = schedule_program(program, generic_risc())
        assert scheduled.labels["entry"] == 0
        first = scheduled.instructions[0]
        assert first.label == "entry"

    def test_round_trip_parses(self):
        program = parse_asm(SOURCE)
        scheduled, _ = schedule_program(program, generic_risc())
        text = render_program(scheduled)
        reparsed = parse_asm(text)
        assert len(reparsed) == len(scheduled)

    def test_blocks_do_not_interleave(self):
        # Every output block must contain exactly the input block's
        # instructions (scheduling is block-local).
        program = parse_asm(SOURCE)
        scheduled, _ = schedule_program(program, generic_risc(),
                                        fill_slots=False)
        original_blocks = partition_blocks(program)
        scheduled_blocks = partition_blocks(scheduled)
        assert len(original_blocks) == len(scheduled_blocks)
        for a, b in zip(original_blocks, scheduled_blocks):
            assert sorted(i.render() for i in a) == \
                sorted(i.render() for i in b)

    def test_synthetic_program_end_to_end(self):
        program = generate_program(scaled_profile("grep", 0.05))
        scheduled, report = schedule_program(program, generic_risc())
        assert report.n_blocks > 10
        assert report.speedup >= 1.0
        # Still parseable after rendering.
        parse_asm(render_program(scheduled))

    def test_window_option(self):
        program = generate_program(scaled_profile("linpack", 0.05))
        _, unwindowed = schedule_program(program, generic_risc())
        _, windowed = schedule_program(program, generic_risc(), window=8)
        assert windowed.n_blocks >= unwindowed.n_blocks

    def test_inherit_latencies_never_worse(self):
        program = generate_program(scaled_profile("lloops", 0.1))
        machine = generic_risc()
        _, local = schedule_program(program, machine,
                                    inherit_latencies=False)
        _, inherited = schedule_program(program, machine,
                                        inherit_latencies=True)
        # Same blocks scheduled; the inherited variant reports its
        # (inheritance-aware) cycles -- both must be valid reports.
        assert inherited.n_blocks == local.n_blocks

    def test_empty_program(self):
        program = parse_asm("")
        scheduled, report = schedule_program(program, generic_risc())
        assert len(scheduled) == 0
        assert report.n_blocks == 0
        assert report.speedup == 1.0
