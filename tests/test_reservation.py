"""Tests for the resource reservation table."""

import pytest

from repro.machine.reservation import (
    ReservationTable,
    UnitUse,
    UsagePattern,
)
from repro.machine.units import FunctionUnit, FunctionUnitSet


def units():
    return FunctionUnitSet(
        [FunctionUnit("ialu"), FunctionUnit("fdiv", pipelined=False),
         FunctionUnit("mem", copies=2)],
        unit_of_class={})


def pat(unit: str, duration: int, start: int = 0) -> UsagePattern:
    return UsagePattern((UnitUse(unit, start, duration),))


class TestFits:
    def test_empty_table_fits_everything(self):
        table = ReservationTable(units())
        assert table.fits_at(pat("ialu", 1), 0)
        assert table.fits_at(pat("fdiv", 20), 5)

    def test_conflict_detected(self):
        table = ReservationTable(units())
        table.place(pat("fdiv", 3), 0)
        assert not table.fits_at(pat("fdiv", 1), 0)
        assert not table.fits_at(pat("fdiv", 1), 2)
        assert table.fits_at(pat("fdiv", 1), 3)

    def test_earliest_fit_skips_busy_cycles(self):
        table = ReservationTable(units())
        table.place(pat("fdiv", 4), 0)
        assert table.earliest_fit(pat("fdiv", 2), 0) == 4

    def test_earliest_fit_respects_not_before(self):
        table = ReservationTable(units())
        assert table.earliest_fit(pat("ialu", 1), 7) == 7

    def test_multiple_instances(self):
        table = ReservationTable(units())
        table.place(pat("mem", 1), 0)
        # Second copy of the mem unit still free at cycle 0.
        assert table.fits_at(pat("mem", 1), 0)
        table.place(pat("mem", 1), 0)
        assert not table.fits_at(pat("mem", 1), 0)

    def test_place_conflict_raises(self):
        table = ReservationTable(units())
        table.place(pat("fdiv", 2), 0)
        with pytest.raises(ValueError):
            table.place(pat("fdiv", 1), 1)

    def test_offset_usage(self):
        table = ReservationTable(units())
        # Busy cycles 2..3 relative to issue at 0.
        table.place(pat("ialu", 2, start=2), 0)
        assert table.fits_at(pat("ialu", 2), 0)
        assert not table.fits_at(pat("ialu", 1), 2)

    def test_busy_until(self):
        table = ReservationTable(units())
        table.place(pat("fdiv", 5), 3)
        assert table.busy_until("fdiv") == 8
        assert table.busy_until("ialu") == 0

    def test_next_free(self):
        table = ReservationTable(units())
        table.place(pat("fdiv", 3), 0)
        assert table.next_free("fdiv", 0) == 3
        assert table.next_free("fdiv", 5) == 5

    def test_pattern_span(self):
        p = UsagePattern((UnitUse("a", 0, 1), UnitUse("b", 2, 3)))
        assert p.span == 5
