"""Tests for the chaos harness: seeded fault injection, clean-run
identity for healthy blocks, accounting, and the resilience report."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.machine.presets import generic_risc
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_markdown, report_from
from repro.runner import (
    DEFAULT_CHAIN,
    ChaosConfig,
    RetryPolicy,
    RunJournal,
    run_batch,
    run_chaos,
    run_fingerprint,
)
from repro.runner.bench import bench_blocks


class TestChaosConfig:
    def test_plan_is_deterministic(self):
        config = ChaosConfig(seed=3, exit_rate=0.3, kill_rate=0.3)
        plans = [config.plan(i, a) for i in range(20)
                 for a in range(3)]
        again = [config.plan(i, a) for i in range(20)
                 for a in range(3)]
        assert plans == again
        assert any(p is not None for p in plans)

    def test_poisoned_blocks_always_crash(self):
        config = ChaosConfig(seed=0, poison=frozenset({5}))
        for attempt in range(10):
            assert config.plan(5, attempt) == ("exit", 23)
        assert config.plan(4, 0) is None  # rates are all zero

    def test_injection_stops_past_the_attempt_bound(self):
        config = ChaosConfig(seed=0, exit_rate=1.0,
                             max_injected_attempts=2)
        assert config.plan(1, 0) is not None
        assert config.plan(1, 1) is not None
        assert config.plan(1, 2) is None

    def test_rates_partition_one_roll(self):
        config = ChaosConfig(seed=9, exit_rate=0.25, kill_rate=0.25,
                             delay_rate=0.25, corrupt_rate=0.25)
        kinds = {config.plan(i, 0)[0] for i in range(60)}
        assert kinds == {"exit", "kill", "delay", "corrupt"}


class TestChaosDeterminism:
    def test_chaotic_parallel_run_matches_clean_serial(self, machine):
        # The acceptance-criteria scenario: kill/exit injection well
        # above 10%, jobs=4, every healthy block byte-identical to a
        # clean jobs=1 run and every block accounted for.
        config = ChaosConfig(seed=11, exit_rate=0.15, kill_rate=0.15,
                             delay_rate=0.05, corrupt_rate=0.05,
                             delay_s=0.01, poison=frozenset({1}))
        report = run_chaos(machine, config, copies=2, jobs=4,
                           expect_quarantined=frozenset({1}))
        assert report.ok, report.mismatches
        assert report.accounted
        assert report.crashes > 0
        assert report.retries > 0
        assert report.quarantined_indices == [1]

    def test_same_seed_same_quarantine_set(self, machine):
        config = ChaosConfig(seed=4, poison=frozenset({0, 3}))
        first = run_chaos(machine, config, copies=1, jobs=2,
                          retry=RetryPolicy(max_retries=1,
                                            base_delay=0.01))
        second = run_chaos(machine, config, copies=1, jobs=2,
                           retry=RetryPolicy(max_retries=1,
                                             base_delay=0.01))
        assert first.quarantined_indices == [0, 3]
        assert first.quarantined_indices == second.quarantined_indices

    def test_corrupted_payloads_are_survived(self, machine):
        blocks = bench_blocks(1)
        serial = run_batch(blocks, machine)
        config = ChaosConfig(seed=2, corrupt_rate=0.7,
                             max_injected_attempts=1)
        corrupted = run_batch(blocks, machine, jobs=2, chaos=config,
                              retry=RetryPolicy(base_delay=0.01))
        assert ([json.dumps(o.to_record(), sort_keys=True)
                 for o in serial.outcomes]
                == [json.dumps(o.to_record(), sort_keys=True)
                    for o in corrupted.outcomes])
        stats = corrupted.supervisor_stats
        assert stats.crash_kinds.get("task-error", 0) > 0

    def test_chaos_requires_the_supervised_pool(self, machine):
        with pytest.raises(ReproError, match="jobs >= 2"):
            run_chaos(machine, ChaosConfig(), jobs=1)

    def test_oom_deaths_are_attributed_under_memory_ceiling(
            self, machine):
        # Satellite: with a per-worker RLIMIT_AS ceiling, an injected
        # allocation burst dies as a MemoryError inside the worker --
        # an *attributed* "oom" crash, not an anonymous SIGKILL --
        # and the block still recovers on retry.
        metrics = MetricsRegistry()
        config = ChaosConfig(seed=0, alloc_rate=1.0,
                             alloc_bytes=1 << 30,
                             max_injected_attempts=1)
        report = run_chaos(machine, config, copies=1, jobs=2,
                           metrics=metrics, mem_limit_mb=256)
        assert report.ok, report.mismatches
        assert report.crash_kinds.get("oom", 0) > 0
        assert "kill" not in report.crash_kinds
        snap = metrics.snapshot()["volatile"]
        values = snap["repro_worker_crashes_total"]["values"]
        assert values.get("kind=oom", 0) == report.crash_kinds["oom"]

    def test_alloc_without_ceiling_is_survivable(self, machine):
        # The same burst with no ceiling is just a brief allocation:
        # no crash, outcomes identical to clean.
        config = ChaosConfig(seed=0, alloc_rate=1.0,
                             alloc_bytes=1 << 20,
                             max_injected_attempts=1)
        report = run_chaos(machine, config, copies=1, jobs=2)
        assert report.ok, report.mismatches
        assert report.crash_kinds.get("oom", 0) == 0


class TestResilienceReport:
    def test_report_accounts_for_every_block(self, machine, tmp_path):
        config = ChaosConfig(seed=1, exit_rate=0.3,
                             poison=frozenset({0}))
        registry = MetricsRegistry()
        fp = run_fingerprint("chaos", "generic", list(DEFAULT_CHAIN))
        path = str(tmp_path / "run.jsonl")
        blocks = bench_blocks(1)
        with RunJournal.open_fresh(path, fp) as journal:
            run_batch(blocks, machine, jobs=3, chaos=config,
                      retry=RetryPolicy(max_retries=1,
                                        base_delay=0.01),
                      journal=journal, metrics=registry)
        from repro.obs.report import load_journal_blocks
        journal_blocks = load_journal_blocks(path)
        assert len(journal_blocks) == len(blocks)
        doc = report_from(journal_blocks, registry.snapshot())
        resilience = doc["resilience"]
        accounting = resilience["accounting"]
        assert accounting["accounted"]
        assert accounting["total"] == len(blocks)
        assert accounting["quarantined"] == 1
        assert (accounting["scheduled"] + accounting["degraded"]
                + accounting["quarantined"]) == accounting["total"]
        assert resilience["quarantined blocks"] == 1
        assert sum(resilience["worker crashes"].values()) > 0
        markdown = render_markdown(doc)
        assert "## Resilience" in markdown
        assert "Quarantined blocks" in markdown

    def test_clean_run_report_has_no_resilience_section(self, machine):
        registry = MetricsRegistry()
        result = run_batch(bench_blocks(1), machine, metrics=registry)
        doc = report_from(
            [o.to_record(volatile=True) for o in result.outcomes],
            registry.snapshot())
        assert doc["resilience"] is None
        assert "## Resilience" not in render_markdown(doc)

    def test_volatile_metrics_stay_out_of_the_stable_section(
            self, machine):
        registry = MetricsRegistry()
        config = ChaosConfig(seed=1, exit_rate=0.4,
                             max_injected_attempts=1)
        run_batch(bench_blocks(1), machine, jobs=2, chaos=config,
                  retry=RetryPolicy(base_delay=0.01),
                  metrics=registry)
        snapshot = registry.snapshot()
        for name in ("repro_worker_crashes_total",
                     "repro_retries_total",
                     "repro_worker_restarts_total"):
            assert name not in snapshot["stable"]


class TestChaosCli:
    def test_quick_chaos_smoke_exits_clean(self, tmp_path):
        lines = []
        status = main(["chaos", "--quick", "--seed", "7",
                       "--quarantine-dir", str(tmp_path / "q")],
                      out=lines.append)
        assert status == 0
        text = "\n".join(lines)
        assert "accounting:" in text
        assert "identical to clean serial run: True" in text

    def test_chaos_writes_metrics_snapshot(self, tmp_path):
        metrics_path = tmp_path / "chaos-metrics.json"
        status = main(["chaos", "--quick", "--seed", "7",
                       "--quarantine-dir", str(tmp_path / "q"),
                       "--metrics", str(metrics_path)],
                      out=lambda line: None)
        assert status == 0
        snapshot = json.loads(metrics_path.read_text())
        assert "repro_worker_crashes_total" in snapshot["volatile"]
        assert "repro_quarantined_blocks_total" in snapshot["volatile"]
