"""Tests for parser error diagnostics and the lenient parse mode."""

import pytest

from repro.asm import parse_asm
from repro.asm.lexer import LexError, lex_lines, split_operands_spans
from repro.asm.program import SkippedLine
from repro.errors import AsmSyntaxError


class TestDiagnostics:
    def test_unknown_opcode_has_line_and_column(self):
        with pytest.raises(AsmSyntaxError) as info:
            parse_asm("add %o0, %o1, %o2\n   bogusop %o0\n")
        err = info.value
        assert err.line_number == 2
        assert err.column == 4  # after the leading spaces
        assert "bogusop" in str(err)
        assert "line 2, col 4" in str(err)

    def test_bad_operand_points_at_operand_column(self):
        with pytest.raises(AsmSyntaxError) as info:
            parse_asm("add %o0, %bogus9, %o2\n")
        err = info.value
        assert err.line_number == 1
        assert err.column == 10  # start of the second operand

    def test_filename_is_stamped(self):
        with pytest.raises(AsmSyntaxError) as info:
            parse_asm("bogusop %o0\n", "kernel.s")
        err = info.value
        assert err.filename == "kernel.s"
        assert str(err).startswith("kernel.s: line 1, col 1:")

    def test_offending_text_is_recorded(self):
        with pytest.raises(AsmSyntaxError) as info:
            parse_asm("\tfoo %o0, [%o1\n")
        assert info.value.line_text is not None
        assert "[%o1" in info.value.line_text

    def test_operand_spans_report_columns(self):
        texts, columns = split_operands_spans("%o0, [%fp-8], 12", 1,
                                              base_column=9)
        assert list(texts) == ["%o0", "[%fp-8]", "12"]
        assert columns == (9, 14, 23)

    def test_unbalanced_bracket_column(self):
        with pytest.raises(AsmSyntaxError) as info:
            split_operands_spans("%o0, [%o1", 3, base_column=5)
        assert info.value.line_number == 3
        assert info.value.column == 10


class TestLenientMode:
    SOURCE = ("start:\n"
              "\tadd %o0, %o1, %o2\n"
              "\tbogusop %o3\n"
              "\tsub %o2, 1, %o4\n"
              "\tadd %o4, )( , %o5\n"
              "\tor %o4, %o2, %o5\n")

    def test_strict_mode_raises(self):
        with pytest.raises(AsmSyntaxError):
            parse_asm(self.SOURCE)

    def test_lenient_mode_skips_and_continues(self):
        program = parse_asm(self.SOURCE, lenient=True)
        assert len(program) == 3
        assert [s.number for s in program.skipped_lines] == [3, 5]
        assert program.instructions[0].label == "start"

    def test_skipped_lines_carry_diagnostics(self):
        program = parse_asm(self.SOURCE, lenient=True)
        skipped = program.skipped_lines[0]
        assert isinstance(skipped, SkippedLine)
        assert "bogusop" in skipped.text
        assert "bogusop" in skipped.error
        assert skipped.column >= 1

    def test_lenient_mode_with_unlexable_line(self):
        program = parse_asm("add %o0, %o1, %o2\nld [%o0, %o3\n",
                            lenient=True)
        assert len(program) == 1
        assert [s.number for s in program.skipped_lines] == [2]

    def test_label_before_skipped_line_attaches_to_next(self):
        program = parse_asm("loop:\nbogusop %o0\nadd %o0, 1, %o1\n",
                            lenient=True)
        assert len(program) == 1
        assert program.instructions[0].label == "loop"

    def test_clean_source_has_no_skips(self):
        program = parse_asm("add %o0, %o1, %o2\n", lenient=True)
        assert program.skipped_lines == []


class TestLexErrorCollection:
    def test_errors_list_collects_instead_of_raising(self):
        errors: list[LexError] = []
        lines = lex_lines("add %o0, %o1, %o2\nld [%o0, %o1\n",
                          errors=errors)
        assert len(lines) == 1
        assert len(errors) == 1
        assert errors[0].number == 2
        assert "[%o0" in errors[0].text

    def test_without_errors_list_raises(self):
        with pytest.raises(AsmSyntaxError):
            lex_lines("ld [%o0, %o1\n")
