"""Durability: v2 CRC framing, fsck, the serve WAL, snapshots, the
daemon supervisor, and the kill-daemon chaos harness.

The contract under test, end to end: nothing is acknowledged before
it is fsynced, every byte of damage is classified (torn tail vs
mid-file corruption) rather than guessed at, a restarted daemon
replays acknowledged-but-unfinished work without double-scheduling a
single block, and a crash-looping daemon stops with a typed error
instead of flapping forever.
"""

import json
import os
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.errors import JournalError, ReproError, SupervisorError
from repro.runner.fsck import (
    KIND_JOURNAL,
    KIND_SNAPSHOT,
    KIND_WAL,
    STATUS_CLEAN,
    STATUS_CORRUPT,
    STATUS_REPAIRABLE,
    STATUS_REPAIRED,
    fsck_file,
    fsck_paths,
    render_fsck_report,
)
from repro.runner.journal import (
    DAMAGE_BLANK_INTERIOR,
    DAMAGE_CRC_MISMATCH,
    DAMAGE_TORN_TAIL,
    DAMAGE_TRUNCATED_FRAME,
    frame_record,
    parse_record_line,
    read_snapshot,
    scan_lines,
    write_snapshot,
)
from repro.serve import protocol
from repro.serve.loadtest import LoadtestConfig, run_loadtest
from repro.serve.protocol import parse_address
from repro.serve.server import BackgroundServer, ServeConfig
from repro.serve.supervise import DaemonSupervisor, SupervisorPolicy
from repro.serve.wal import (
    FINISHED_ABANDONED,
    FINISHED_OK,
    WriteAheadLog,
)


# -- v2 framing --------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        record = {"type": "block", "index": 3, "makespan": 12}
        line = frame_record(record)
        assert line.startswith("~2 ")
        parsed, kind, detail = parse_record_line(line)
        assert parsed == record
        assert kind is None

    def test_v1_plain_json_still_parses(self):
        parsed, kind, _ = parse_record_line('{"type": "block", "index": 1}')
        assert parsed == {"type": "block", "index": 1}
        assert kind is None

    def test_flipped_byte_is_a_crc_mismatch(self):
        line = frame_record({"type": "block", "index": 3})
        damaged = line.replace('"index": 3', '"index": 4')
        parsed, kind, detail = parse_record_line(damaged)
        assert parsed is None
        assert kind == DAMAGE_CRC_MISMATCH
        assert "crc32" in detail

    def test_cut_frame_is_truncated(self):
        line = frame_record({"type": "block", "index": 3})
        parsed, kind, _ = parse_record_line(line[:len(line) // 2])
        assert parsed is None
        assert kind == DAMAGE_TRUNCATED_FRAME

    def test_scan_promotes_only_the_tail_to_torn(self):
        good = frame_record({"type": "block", "index": 0})
        torn = frame_record({"type": "block", "index": 1})[:10]
        records, damage = scan_lines([good, torn])
        assert [r for _, r in records] == [{"type": "block", "index": 0}]
        assert [d.kind for d in damage] == [DAMAGE_TORN_TAIL]
        assert damage[0].repairable

    def test_crc_mismatch_at_tail_is_never_torn(self):
        # The frame is complete; its bytes changed after the write.
        # Truncating it away would hide real corruption.
        good = frame_record({"type": "block", "index": 0})
        bad = frame_record({"type": "block", "index": 1}).replace(
            '"index": 1', '"index": 9')
        _, damage = scan_lines([good, bad])
        assert [d.kind for d in damage] == [DAMAGE_CRC_MISMATCH]
        assert not damage[0].repairable

    def test_blank_interior_is_damage(self):
        good = frame_record({"type": "block", "index": 0})
        _, damage = scan_lines([good, "", good])
        assert [d.kind for d in damage] == [DAMAGE_BLANK_INTERIOR]


# -- snapshots ---------------------------------------------------------------


class TestSnapshots:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "warm.json")
        write_snapshot(path, {"cache": {"hits": 7}})
        assert read_snapshot(path) == {"cache": {"hits": 7}}
        assert not os.path.exists(path + ".tmp")

    def test_corruption_is_detected(self, tmp_path):
        path = str(tmp_path / "warm.json")
        write_snapshot(path, {"tokens": 41.5})
        text = open(path).read().replace("41.5", "99.9")
        open(path, "w").write(text)
        with pytest.raises(JournalError, match="crc32|CRC32"):
            read_snapshot(path)

    def test_not_a_snapshot_is_typed(self, tmp_path):
        path = str(tmp_path / "other.json")
        open(path, "w").write('{"type": "something-else"}\n')
        with pytest.raises(JournalError, match="not a snapshot"):
            read_snapshot(path)


# -- fsck --------------------------------------------------------------------


def _write_lines(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


def _journal_lines(n_blocks=2):
    lines = [frame_record({"type": "header", "version": 2,
                           "fingerprint": {"machine": "generic"}})]
    for i in range(n_blocks):
        lines.append(frame_record({"type": "block", "index": i}))
    return lines


class TestFsck:
    def test_clean_journal(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _write_lines(path, _journal_lines())
        finding = fsck_file(path)
        assert finding.kind == KIND_JOURNAL
        assert finding.status == STATUS_CLEAN
        assert finding.ok

    def test_torn_tail_is_repairable_then_repaired(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        lines = _journal_lines()
        lines.append('{"type": "blo')  # killed mid-write
        _write_lines(path, lines)
        assert fsck_file(path).status == STATUS_REPAIRABLE
        finding = fsck_file(path, repair=True)
        assert finding.status == STATUS_REPAIRED
        assert finding.ok
        # The original is untouched; the copy reads back clean.
        assert open(path).read().count("\n") == 4
        repaired = fsck_file(finding.repaired_path)
        assert repaired.status == STATUS_CLEAN
        assert repaired.n_records == 3

    def test_mid_file_corruption_is_never_repaired(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        lines = _journal_lines()
        lines[1] = lines[1].replace('"index": 0', '"index": 7')
        _write_lines(path, lines)
        finding = fsck_file(path, repair=True)
        assert finding.status == STATUS_CORRUPT
        assert not finding.ok
        assert finding.repaired_path is None
        assert [d.kind for d in finding.damage] == [DAMAGE_CRC_MISMATCH]

    def test_snapshot_and_wal_kinds(self, tmp_path):
        snap = str(tmp_path / "warm.json")
        write_snapshot(snap, {"x": 1})
        wal_path = str(tmp_path / "serve.wal")
        wal, _ = WriteAheadLog.open(wal_path)
        wal.close()
        by_kind = {f.kind: f for f in fsck_paths([str(tmp_path)])}
        assert by_kind[KIND_SNAPSHOT].status == STATUS_CLEAN
        assert by_kind[KIND_WAL].status == STATUS_CLEAN

    def test_directory_scan_skips_derived_files(self, tmp_path):
        _write_lines(str(tmp_path / "run.jsonl"), _journal_lines())
        _write_lines(str(tmp_path / "run.jsonl.repaired"),
                     _journal_lines())
        open(tmp_path / "daemon.pid", "w").write("1\n")
        findings = fsck_paths([str(tmp_path)])
        assert [os.path.basename(f.path) for f in findings] \
            == ["run.jsonl"]

    def test_render_report_counts(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _write_lines(path, _journal_lines())
        text = render_fsck_report(fsck_paths([path]))
        assert "1 files checked, 1 clean, 0 torn, 0 corrupt" in text


class TestCLIFsck:
    def _run(self, argv):
        lines = []
        status = main(argv, out=lines.append)
        return status, "\n".join(lines)

    def test_clean_exits_zero(self, tmp_path):
        _write_lines(str(tmp_path / "run.jsonl"), _journal_lines())
        status, text = self._run(["fsck", str(tmp_path)])
        assert status == 0
        assert "clean" in text

    def test_torn_exits_one_and_repair_writes_copy(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        _write_lines(path, _journal_lines() + ['{"type": "blo'])
        status, _ = self._run(["fsck", path])
        assert status == 1
        status, text = self._run(["fsck", path, "--repair"])
        assert status == 1
        assert os.path.exists(path + ".repaired")
        assert "good prefix" in text

    def test_corrupt_exits_two_typed(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        lines = _journal_lines()
        lines[1] = lines[1].replace('"index": 0', '"index": 7')
        _write_lines(path, lines)
        status, text = self._run(["fsck", path])
        assert status == 2
        assert "unrepairable" in text

    def test_no_files_is_typed(self, tmp_path):
        status, text = self._run(["fsck", str(tmp_path)])
        assert status == 2
        assert "no journal" in text


# -- resume fingerprint guard (satellite 1) ----------------------------------


class TestResumeConfigGuard:
    ASM = "add %r1, %r2, %r3\nsub %r3, %r1, %r4\nor %r2, %r4, %r5\n"

    def test_resume_under_different_budget_is_typed(self, tmp_path):
        source = tmp_path / "kernel.s"
        source.write_text(self.ASM)
        journal = str(tmp_path / "run.jsonl")
        lines = []
        assert main(["schedule", str(source), "--journal", journal,
                     "--block-timeout", "5.0"],
                    out=lines.append) == 0
        # Same journal, different watchdog budget: a different run.
        lines = []
        assert main(["schedule", str(source), "--journal", journal,
                     "--resume", "--block-timeout", "1.0"],
                    out=lines.append) == 2
        text = "\n".join(lines)
        assert "block_timeout" in text and "different run" in text
        # The matching budget resumes fine.
        lines = []
        assert main(["schedule", str(source), "--journal", journal,
                     "--resume", "--block-timeout", "5.0"],
                    out=lines.append) == 0


# -- the write-ahead log -----------------------------------------------------


def _request_message(key, rid=None, copies=2):
    return {"op": "schedule", "id": rid or f"id-{key}", "key": key,
            "workload": {"kernel": "daxpy", "copies": copies}}


class TestWriteAheadLog:
    def test_finished_key_lands_in_the_dedup_index(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        wal, recovery = WriteAheadLog.open(path)
        assert recovery.replayed == 0
        wal.log_accepted("k1", _request_message("k1"), 2)
        wal.log_block("k1", {"type": "block", "index": 0})
        wal.log_block("k1", {"type": "block", "index": 1})
        wal.log_finished("k1", FINISHED_OK, {"scheduled": 2})
        wal.close()
        _, recovery = WriteAheadLog.open(path)
        assert recovery.incomplete == []
        entry = recovery.finished["k1"]
        assert entry["status"] == FINISHED_OK
        assert entry["summary"] == {"scheduled": 2}
        assert sorted(entry["blocks"]) == [0, 1]

    def test_unfinished_key_is_reenqueued_with_its_blocks(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        wal, _ = WriteAheadLog.open(path)
        wal.log_accepted("k1", _request_message("k1", copies=3), 3)
        wal.log_block("k1", {"type": "block", "index": 0,
                             "makespan": 4})
        wal.log_shed("k1", 1, "deadline")
        wal.close()
        _, recovery = WriteAheadLog.open(path)
        assert recovery.finished == {}
        (entry,) = recovery.incomplete
        assert entry["key"] == "k1"
        completed = recovery.completed_map(entry)
        assert completed[0]["makespan"] == 4
        assert completed[1] == {"type": "shed", "index": 1,
                                "reason": "deadline"}
        assert 2 not in completed

    def test_torn_tail_is_truncated_and_counted(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        wal, _ = WriteAheadLog.open(path)
        wal.log_accepted("k1", _request_message("k1"), 1)
        wal.log_finished("k1", FINISHED_OK, {})
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('~2 57 0abc')  # killed mid-append
        _, recovery = WriteAheadLog.open(path)
        assert recovery.dropped == 1
        assert "k1" in recovery.finished
        # The file was surgically truncated: a third open is clean.
        _, recovery = WriteAheadLog.open(path)
        assert recovery.dropped == 0

    def test_interior_corruption_refuses_to_open(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        wal, _ = WriteAheadLog.open(path)
        wal.log_accepted("k1", _request_message("k1"), 1)
        wal.log_finished("k1", FINISHED_OK, {})
        wal.close()
        lines = open(path).read().splitlines()
        lines[1] = lines[1].replace("k1", "kX")
        _write_lines(path, lines)
        with pytest.raises(JournalError, match="repro fsck"):
            WriteAheadLog.open(path)

    def test_duplicate_accept_keeps_the_first_recorded_work(self, tmp_path):
        # A daemon killed after recovery re-logged nothing: the replay
        # of an old 'accepted' must not reset the recorded blocks.
        path = str(tmp_path / "serve.wal")
        wal, _ = WriteAheadLog.open(path)
        wal.log_accepted("k1", _request_message("k1"), 2)
        wal.log_block("k1", {"type": "block", "index": 0})
        wal.log_accepted("k1", _request_message("k1"), 2)
        wal.close()
        _, recovery = WriteAheadLog.open(path)
        (entry,) = recovery.incomplete
        assert sorted(entry["blocks"]) == [0]

    def test_append_after_close_is_a_silent_noop(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        wal, _ = WriteAheadLog.open(path)
        wal.close()
        wal.log_shed("k1", 0, "drain")  # wedged engine thread, post-drain
        _, recovery = WriteAheadLog.open(path)
        assert recovery.replayed == 0


# -- the daemon with a WAL ---------------------------------------------------


class _Client:
    """Minimal synchronous NDJSON client (mirrors test_serve)."""

    def __init__(self, address):
        kind = parse_address(address)
        assert kind[0] == "unix"
        self.sock = socket.socket(socket.AF_UNIX)
        self.sock.connect(kind[1])
        self.file = self.sock.makefile("rwb")

    def send(self, message):
        self.file.write(protocol.encode(message))
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def stream_until_terminal(self, rid):
        frames = []
        while True:
            frame = self.recv()
            if frame.get("id") != rid:
                continue
            frames.append(frame)
            if frame["type"] in ("done", "rejected", "error"):
                return frames

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()


def _wal_config(tmp_path, **overrides):
    options = dict(address=f"unix:{tmp_path}/wal.sock", workers=2,
                   drain_grace_s=5.0, wal_dir=str(tmp_path / "state"))
    options.update(overrides)
    return ServeConfig(**options)


def _wal_records(tmp_path):
    path = tmp_path / "state" / "serve.wal"
    lines = path.read_text().splitlines()
    records, damage = scan_lines(lines[1:], first_lineno=2)
    assert not damage
    return [record for _, record in records]


class TestServerWal:
    def test_request_is_logged_accepted_blocks_finished(self, tmp_path):
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            client = _Client(background.address)
            try:
                client.send(_request_message("w1", rid="r1", copies=2))
                accepted = client.recv()
                assert accepted["type"] == "accepted"
                assert accepted["key"] == "w1"
                frames = client.stream_until_terminal("r1")
                assert frames[-1]["type"] == "done"
                assert "deduped" not in frames[-1]
            finally:
                client.close()
        finally:
            background.drain()
        types = [r["type"] for r in _wal_records(tmp_path)]
        assert types.count("accepted") == 1
        assert types.count("block-done") == 2
        assert types.count("finished") == 1
        # accepted precedes every block, finished comes last
        assert types.index("accepted") < types.index("block-done")
        assert types.index("finished") == len(types) - 1

    def test_auto_key_is_assigned_when_absent(self, tmp_path):
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            client = _Client(background.address)
            try:
                client.send({"op": "schedule", "id": "r1",
                             "workload": {"kernel": "daxpy",
                                          "copies": 1}})
                accepted = client.recv()
                assert accepted["key"].startswith("auto-")
                client.stream_until_terminal("r1")
            finally:
                client.close()
        finally:
            background.drain()

    def test_finished_key_resend_is_deduped_live(self, tmp_path):
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            client = _Client(background.address)
            try:
                client.send(_request_message("w1", rid="r1", copies=2))
                first = client.stream_until_terminal("r1")
                client.send(_request_message("w1", rid="r2", copies=2))
                second = client.stream_until_terminal("r2")
                assert second[-1]["type"] == "done"
                assert second[-1]["deduped"] is True
                # The replay streams the same recorded blocks.
                assert [f["block"]["index"] for f in second if
                        f["type"] == "block"] \
                    == [f["block"]["index"] for f in first[:-1] if
                        f["type"] == "block"]
            finally:
                client.close()
            assert background.server.stats.requests_deduped == 1
        finally:
            background.drain()
        # Dedup never re-executes: still exactly 2 block-done records.
        types = [r["type"] for r in _wal_records(tmp_path)]
        assert types.count("block-done") == 2

    def test_restart_dedups_from_the_wal(self, tmp_path):
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            client = _Client(background.address)
            try:
                client.send(_request_message("w1", rid="r1", copies=2))
                client.stream_until_terminal("r1")
            finally:
                client.close()
        finally:
            background.drain()
        # Same WAL dir, fresh daemon: the finished key must be served
        # from the recovered result store, not re-executed.
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            assert background.server.stats.wal_replayed > 0
            client = _Client(background.address)
            try:
                client.send(_request_message("w1", rid="r2", copies=2))
                frames = client.stream_until_terminal("r2")
                assert frames[-1]["deduped"] is True
                client.send({"op": "health"})
                health = client.recv()
                assert health["wal"]["enabled"]
                assert health["wal"]["deduped"] == 1
            finally:
                client.close()
        finally:
            background.drain()
        types = [r["type"] for r in _wal_records(tmp_path)]
        assert types.count("block-done") == 2

    def test_restart_completes_unfinished_request(self, tmp_path):
        # Hand-craft the aftermath of a crash: accepted + one block
        # recorded, no finished record.  The next daemon generation
        # must finish the request -- re-emitting the recorded block
        # verbatim, scheduling only the missing one.
        state = tmp_path / "state"
        state.mkdir()
        wal, _ = WriteAheadLog.open(str(state / "serve.wal"))
        wal.log_accepted("w1", _request_message("w1", copies=2), 2)
        wal.log_block("w1", {"type": "block", "index": 0,
                             "builder": "recorded", "makespan": 1,
                             "original_makespan": 1, "degraded": False,
                             "quarantined": False, "attempts": [],
                             "order": [0]})
        wal.close()
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if background.server.stats.requests_recovered:
                    records = _wal_records(tmp_path)
                    if any(r["type"] == "finished" for r in records):
                        break
                time.sleep(0.02)
            records = _wal_records(tmp_path)
            finished = [r for r in records if r["type"] == "finished"]
            assert finished and finished[0]["key"] == "w1"
            assert finished[0]["status"] == FINISHED_OK
            done = [r for r in records if r["type"] == "block-done"]
            # Only the missing block was scheduled and logged; the
            # recorded one was replayed, not re-run.
            assert sorted(r["index"] for r in done) == [0, 1]
            assert finished[0]["summary"]["replayed"] == 1
        finally:
            background.drain()

    def test_duplicate_key_in_flight_is_rejected(self, tmp_path,
                                                 monkeypatch):
        from repro.serve.engine import run_request as real_run_request

        def slow(request, machine, blocks, emit, **kwargs):
            time.sleep(0.3)
            return real_run_request(request, machine, blocks, emit,
                                    **kwargs)

        monkeypatch.setattr("repro.serve.server.run_request", slow)
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            first = _Client(background.address)
            second = _Client(background.address)
            try:
                first.send(_request_message("w1", rid="r1", copies=1))
                assert first.recv()["type"] == "accepted"
                second.send(_request_message("w1", rid="r2", copies=1))
                frame = second.stream_until_terminal("r2")[-1]
                assert frame["type"] == "rejected"
                assert frame["reason"] == "duplicate-in-flight"
                assert first.stream_until_terminal("r1")[-1]["type"] \
                    == "done"
            finally:
                first.close()
                second.close()
        finally:
            background.drain()

    def test_warm_snapshot_survives_restart(self, tmp_path):
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            client = _Client(background.address)
            try:
                message = _request_message("w1", rid="r1", copies=1)
                message["tenant"] = "acme"
                client.send(message)
                client.stream_until_terminal("r1")
            finally:
                client.close()
        finally:
            background.drain()
        snapshot = read_snapshot(str(tmp_path / "state" / "warm.json"))
        assert "acme" in snapshot["admission"]["tenants"]
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            assert "acme" in background.server.admission.tenants
        finally:
            background.drain()

    def test_drain_force_abandons_into_the_wal(self, tmp_path,
                                               monkeypatch):
        # Satellite: a request cut loose by the --drain-force backstop
        # is recorded as shed + abandoned, so the next generation does
        # NOT resurrect it -- the operator explicitly dropped it.
        def wedged(request, machine, blocks, emit, **kwargs):
            time.sleep(2.0)
            return {"n_blocks": len(blocks), "scheduled": 0,
                    "degraded": 0, "quarantined": 0,
                    "shed": len(blocks)}

        with monkeypatch.context() as patch:
            patch.setattr("repro.serve.server.run_request", wedged)
            config = _wal_config(tmp_path, workers=1,
                                 block_wall_s=None,
                                 drain_grace_s=0.05, drain_force_s=0.1)
            background = BackgroundServer(config).start()
            client = _Client(background.address)
            try:
                client.send(_request_message("w1", rid="hang",
                                             copies=1))
                assert client.recv()["type"] == "accepted"
                background.drain(timeout=10.0)
                assert background.server.drain_abandoned == ["hang"]
            finally:
                client.close()
        records = _wal_records(tmp_path)
        finished = [r for r in records if r["type"] == "finished"]
        assert finished[-1]["status"] == FINISHED_ABANDONED
        assert any(r["type"] == "block-shed" and r["reason"] == "drain"
                   for r in records)
        # Fresh generation (unwedged): nothing to recover, and a
        # resend of the abandoned key is answered from the record --
        # a typed terminal error, not a silent re-execution.
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            assert background.server.stats.requests_recovered == 0
            client = _Client(background.address)
            try:
                client.send(_request_message("w1", rid="r2", copies=1))
                frame = client.stream_until_terminal("r2")[-1]
                assert frame["type"] == "error"
                assert "abandoned" in frame["error"]
            finally:
                client.close()
        finally:
            background.drain()


# -- loadtest idempotency-retry phase ----------------------------------------


class TestLoadtestIdempotency:
    def test_every_resend_is_deduped(self, tmp_path):
        background = BackgroundServer(_wal_config(tmp_path)).start()
        try:
            config = LoadtestConfig(address=background.address,
                                    seed=4, requests=6, concurrency=3,
                                    copies_max=2,
                                    idempotency_retry=1.0)
            report = run_loadtest(config)
            assert report.completed == 6
            assert report.retries_sent == 6
            assert report.retries_deduped == 6
            assert report.duplicate_results == 0
        finally:
            background.drain()

    def test_keys_stay_off_the_plain_mix(self):
        from repro.serve.loadtest import generate_mix
        plain = generate_mix(LoadtestConfig(address="unix:x", seed=1))
        keyed = generate_mix(LoadtestConfig(address="unix:x", seed=1,
                                            idempotency_retry=0.5))
        assert all("key" not in m for m in plain)
        assert all("key" in m for m in keyed)


# -- the supervisor ----------------------------------------------------------


class _FakeChild:
    def __init__(self, code, pid):
        self.code = code
        self.pid = pid
        self.signals = []
        self._done = False

    def wait(self):
        self._done = True
        return self.code

    def poll(self):
        return self.code if self._done else None

    def send_signal(self, sig):
        self.signals.append(sig)


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class TestSupervisor:
    def _supervisor(self, codes, policy, pid_path=None):
        clock = _FakeClock()
        children = []

        def spawn():
            child = _FakeChild(codes[len(children)],
                               pid=1000 + len(children))
            children.append(child)
            return child

        supervisor = DaemonSupervisor(
            spawn, policy=policy, pid_path=pid_path,
            clock=clock, sleep=clock.sleep, log=lambda line: None)
        return supervisor, children, clock

    def test_clean_exit_returns_without_restart(self):
        supervisor, children, _ = self._supervisor(
            [0], SupervisorPolicy())
        assert supervisor.run() == 0
        assert len(children) == 1
        assert supervisor.generation == 1

    def test_crash_restarts_with_exponential_backoff(self):
        policy = SupervisorPolicy(max_restarts=5, backoff_base_s=0.1,
                                  backoff_max_s=5.0)
        supervisor, children, clock = self._supervisor(
            [1, 1, 0], policy)
        assert supervisor.run() == 0
        assert len(children) == 3
        assert clock.now == pytest.approx(0.1 + 0.2)

    def test_backoff_is_capped(self):
        policy = SupervisorPolicy(backoff_base_s=0.1, backoff_max_s=0.4)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 9)] \
            == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_crash_loop_is_a_typed_error(self):
        policy = SupervisorPolicy(max_restarts=2, window_s=60.0,
                                  backoff_base_s=0.0)
        supervisor, children, _ = self._supervisor(
            [1] * 10, policy)
        with pytest.raises(SupervisorError, match="crash loop") as info:
            supervisor.run()
        assert info.value.restarts == 3
        assert info.value.window_s == 60.0
        assert "repro fsck" in str(info.value)
        assert len(children) == 3

    def test_old_crashes_age_out_of_the_window(self):
        policy = SupervisorPolicy(max_restarts=2, window_s=10.0,
                                  backoff_base_s=20.0,
                                  backoff_max_s=20.0)
        # Each 20s backoff pushes earlier crashes out of the 10s
        # window, so an occasional crasher never trips the loop guard.
        supervisor, children, _ = self._supervisor(
            [1, 1, 1, 1, 0], policy)
        assert supervisor.run() == 0
        assert len(children) == 5

    def test_stop_request_ends_the_loop(self):
        supervisor, children, _ = self._supervisor(
            [7], SupervisorPolicy())
        supervisor.request_stop()
        assert supervisor.run() == 7
        assert len(children) == 1
        assert children[0].signals  # the stop was forwarded down

    def test_pid_file_tracks_generations_then_clears(self, tmp_path):
        pid_path = str(tmp_path / "daemon.pid")
        observed = []
        policy = SupervisorPolicy(backoff_base_s=0.0)
        clock = _FakeClock()
        children = []

        def spawn():
            child = _FakeChild([1, 0][len(children)],
                               pid=2000 + len(children))
            children.append(child)
            observed.append(open(pid_path).read().strip()
                            if os.path.exists(pid_path) else None)
            return child

        supervisor = DaemonSupervisor(
            spawn, policy=policy, pid_path=pid_path,
            clock=clock, sleep=clock.sleep, log=lambda line: None)
        assert supervisor.run() == 0
        assert not os.path.exists(pid_path)
        # Spawn #2 saw generation 1's pid on disk.
        assert observed == [None, "2000"]

    def test_pid_path_parent_dir_is_created(self, tmp_path):
        # The pid file lives in the WAL dir, which the *child* daemon
        # creates on startup; the supervisor must not lose the race.
        pid_path = str(tmp_path / "state" / "daemon.pid")
        supervisor, _, _ = self._supervisor(
            [0], SupervisorPolicy(), pid_path=pid_path)
        assert supervisor.run() == 0

    def test_supervisor_error_is_a_repro_error(self):
        assert issubclass(SupervisorError, ReproError)


# -- kill-daemon chaos (real subprocesses, real SIGKILL) ---------------------


class TestKillDaemonChaos:
    def test_quick_run_loses_nothing(self):
        from repro.serve.chaosserve import (
            KillDaemonConfig,
            run_kill_daemon_chaos,
        )
        report = run_kill_daemon_chaos(KillDaemonConfig(
            seed=3, requests=3, copies=2, kills=1,
            kill_interval_s=0.3, wall_timeout_s=60.0))
        assert report.kills_delivered == 1
        assert report.lost_acknowledged == 0
        assert report.duplicate_blocks == 0
        assert report.supervisor_exit == 0
        assert report.fsck_clean
        assert report.ok
        assert report.generations >= 2
