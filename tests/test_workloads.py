"""Tests for the synthetic workload generators."""

import pytest

from repro.cfg import partition_blocks
from repro.errors import WorkloadError
from repro.workloads import (
    KERNELS,
    generate_blocks,
    generate_program,
    get_profile,
    kernel_source,
    scaled_profile,
)
from repro.workloads.profiles import PROFILES, TABLE_ORDER, WorkloadProfile
from repro.asm import parse_asm


SMALL = scaled_profile("linpack", 0.2)


class TestProfiles:
    def test_all_nine_benchmarks_present(self):
        assert set(TABLE_ORDER) <= set(PROFILES)
        assert len(TABLE_ORDER) == 9

    def test_table3_figures_recorded(self):
        grep = get_profile("grep")
        assert (grep.n_blocks, grep.total_insts, grep.max_block) \
            == (730, 1739, 34)
        fpppp = get_profile("fpppp")
        assert (fpppp.n_blocks, fpppp.total_insts, fpppp.max_block) \
            == (662, 25545, 11750)

    def test_avg_block(self):
        grep = get_profile("grep")
        assert grep.avg_block == pytest.approx(2.38, abs=0.01)

    def test_unknown_profile_raises(self):
        with pytest.raises(WorkloadError):
            get_profile("doom")

    def test_fp_benchmarks_flagged(self):
        for name in ("linpack", "lloops", "tomcatv", "nasa7", "fpppp"):
            assert get_profile(name).fp_fraction > 0
        for name in ("grep", "regex", "dfa", "cccp"):
            assert get_profile(name).fp_fraction == 0

    def test_fpppp_mem_at_end(self):
        assert get_profile("fpppp").mem_at_end

    def test_invalid_profile_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile("bad", n_blocks=2, total_insts=10, max_block=5,
                            giant_blocks=(4,), typical_cap=4,
                            mem_max_per_block=1, mem_avg_per_block=0.1,
                            fp_fraction=0.0)

    def test_scaled_profile_keeps_giants(self):
        scaled = scaled_profile("fpppp", 0.1)
        assert scaled.max_block == 11750
        assert scaled.n_blocks < 662

    def test_scaled_profile_bounds(self):
        with pytest.raises(WorkloadError):
            scaled_profile("grep", 0.0)
        assert scaled_profile("grep", 1.0) is get_profile("grep")


class TestGenerateBlocks:
    def test_block_count_exact(self):
        blocks = generate_blocks(SMALL)
        assert len(blocks) == SMALL.n_blocks

    def test_instruction_total_exact(self):
        blocks = generate_blocks(SMALL)
        assert sum(b.size for b in blocks) == SMALL.total_insts

    def test_max_block_exact(self):
        blocks = generate_blocks(SMALL)
        assert max(b.size for b in blocks) == SMALL.max_block

    def test_deterministic(self):
        a = generate_blocks(SMALL)
        b = generate_blocks(SMALL)
        assert [i.render() for blk in a for i in blk] == \
            [i.render() for blk in b for i in blk]

    def test_seed_changes_stream(self):
        a = generate_blocks(SMALL, seed=1)
        b = generate_blocks(SMALL, seed=2)
        assert [i.render() for blk in a for i in blk] != \
            [i.render() for blk in b for i in blk]

    def test_indices_global_and_sequential(self):
        blocks = generate_blocks(SMALL)
        indices = [i.index for blk in blocks for i in blk]
        assert indices == list(range(len(indices)))

    def test_mem_expr_budget_respected(self):
        blocks = generate_blocks(SMALL)
        assert all(len(b.unique_memory_exprs()) <= SMALL.mem_max_per_block
                   for b in blocks)

    def test_mem_expr_average_near_target(self):
        profile = get_profile("lloops")
        blocks = generate_blocks(profile)
        avg = sum(len(b.unique_memory_exprs()) for b in blocks) / len(blocks)
        assert avg == pytest.approx(profile.mem_avg_per_block, rel=0.35)

    def test_fp_mix_present_for_fp_profiles(self):
        blocks = generate_blocks(SMALL)
        fp = sum(1 for b in blocks for i in b if i.opcode.is_float)
        assert fp > 0.2 * SMALL.total_insts

    def test_integer_profiles_have_no_fp(self):
        blocks = generate_blocks(scaled_profile("grep", 0.3))
        assert not any(i.opcode.is_float for b in blocks for i in b)

    def test_terminators_only_at_block_ends(self):
        blocks = generate_blocks(SMALL)
        for block in blocks:
            for instr in block.instructions[:-1]:
                assert not instr.opcode.ends_block

    def test_fpppp_concentrates_memory_at_end(self):
        profile = scaled_profile("fpppp", 0.05)
        blocks = generate_blocks(profile)
        giant = max(blocks, key=lambda b: b.size)
        n = giant.size
        first = sum(1 for i in giant.instructions[:n // 2]
                    if i.opcode.is_memory)
        second = sum(1 for i in giant.instructions[n // 2:]
                     if i.opcode.is_memory)
        assert second > first


class TestGenerateProgram:
    def test_round_trip_through_partitioner(self):
        profile = scaled_profile("grep", 0.1)
        direct = generate_blocks(profile)
        program = generate_program(profile)
        reparsed = partition_blocks(program)
        assert [b.size for b in reparsed] == [b.size for b in direct]

    def test_program_parseable_after_rendering(self):
        from repro.asm import render_program
        profile = scaled_profile("dfa", 0.05)
        program = generate_program(profile)
        text = render_program(program)
        reparsed = parse_asm(text)
        assert len(reparsed) == len(program)


class TestKernels:
    def test_all_kernels_parse(self):
        for name in KERNELS:
            program = parse_asm(kernel_source(name), name)
            assert len(program) > 0

    def test_unknown_kernel_raises(self):
        with pytest.raises(WorkloadError):
            kernel_source("missing")

    def test_figure1_is_three_instructions(self):
        assert len(parse_asm(kernel_source("figure1"))) == 3

    def test_kernels_form_expected_blocks(self):
        blocks = partition_blocks(parse_asm(kernel_source("daxpy")))
        # Body block (ending in bg) + delay-slot nop block.
        assert len(blocks) == 2
        assert blocks[0].terminator is not None
