"""Prometheus exposition rendering and the sliding-window aggregator.

The exposition renderer is the wire half of the telemetry plane: it
turns a :meth:`MetricsRegistry.snapshot` into Prometheus text format
0.0.4, and ``parse_exposition`` inverts it far enough for the CI
smoke to assert on scraped series.  ``RollingWindow`` supplies the
time-windowed aggregates (p50/p99, reject/shed rates) that the
cumulative registry cannot express.
"""

import math

from repro.obs import MetricsRegistry
from repro.obs.expo import (
    EXPOSITION_CONTENT_TYPE,
    RollingWindow,
    parse_exposition,
    render_exposition,
)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def sample_registry():
    reg = MetricsRegistry()
    reg.counter("repro_blocks_total", "Blocks.").inc(3)
    reg.counter("repro_requests_total", "Requests.",
                labels=("tenant", "status")).inc(
        2, tenant="t0", status="ok")
    reg.gauge("repro_block_size_max", "Biggest block.").set(17)
    reg.histogram("repro_sizes", "Sizes.", buckets=(1, 4, 16)) \
        .observe(3)
    return reg


class TestRender:
    def test_help_type_and_value_lines(self):
        text = render_exposition(sample_registry().snapshot())
        assert "# HELP repro_blocks_total Blocks.\n" in text
        assert "# TYPE repro_blocks_total counter\n" in text
        assert "\nrepro_blocks_total 3\n" in text
        assert text.endswith("\n")

    def test_labels_sorted_and_quoted(self):
        text = render_exposition(sample_registry().snapshot())
        assert 'repro_requests_total{status="ok",tenant="t0"} 2' \
            in text

    def test_histogram_expansion(self):
        text = render_exposition(sample_registry().snapshot())
        # cumulative buckets, +Inf, _sum, _count
        assert 'repro_sizes_bucket{le="1"} 0' in text
        assert 'repro_sizes_bucket{le="4"} 1' in text
        assert 'repro_sizes_bucket{le="16"} 1' in text
        assert 'repro_sizes_bucket{le="+Inf"} 1' in text
        assert "repro_sizes_sum 3" in text
        assert "repro_sizes_count 1" in text

    def test_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", 'a "quoted" \\ back\nslash').inc(1)
        reg.counter("lv", "l", labels=("p",)).inc(
            1, p='x"y\\z\nw')
        text = render_exposition(reg.snapshot())
        assert "# HELP c a \"quoted\" \\\\ back\\nslash" in text
        assert 'lv{p="x\\"y\\\\z\\nw"} 1' in text

    def test_deterministic_and_sorted(self):
        a = render_exposition(sample_registry().snapshot())
        b = render_exposition(sample_registry().snapshot())
        assert a == b
        names = [line.split()[2] for line in a.splitlines()
                 if line.startswith("# TYPE")]
        assert names == sorted(names)

    def test_content_type_pinned(self):
        assert EXPOSITION_CONTENT_TYPE \
            == "text/plain; version=0.0.4; charset=utf-8"


class TestParse:
    def test_round_trip(self):
        text = render_exposition(sample_registry().snapshot())
        families, samples = parse_exposition(text)
        assert families["repro_blocks_total"] == "counter"
        assert families["repro_sizes"] == "histogram"
        assert samples["repro_blocks_total"] == 3
        assert samples[
            'repro_requests_total{status="ok",tenant="t0"}'] == 2
        assert samples['repro_sizes_bucket{le="+Inf"}'] == 1

    def test_non_finite_values(self):
        reg = MetricsRegistry()
        reg.gauge("g", "g").set(math.inf)
        text = render_exposition(reg.snapshot())
        assert "g +Inf" in text
        _, samples = parse_exposition(text)
        assert samples["g"] == math.inf


class TestRollingWindow:
    def test_counts_and_quantiles(self):
        clock = FakeClock()
        w = RollingWindow(window_s=60.0, n_buckets=12, clock=clock)
        for _ in range(98):
            w.observe_request("ok", 0.004)
        w.observe_request("ok", 0.9)
        w.observe_request("error", 2.0)
        snap = w.snapshot()
        assert snap["requests"] == 100
        assert snap["ok"] == 99
        assert snap["errors"] == 1
        assert snap["p50_s"] == 0.005   # smallest bound >= median
        assert snap["p99_s"] >= 0.9

    def test_expiry(self):
        clock = FakeClock()
        w = RollingWindow(window_s=60.0, n_buckets=12, clock=clock)
        w.observe_request("ok", 0.01)
        w.observe_shed(5)
        w.observe_rejection()
        assert w.snapshot()["requests"] == 1
        clock.advance(61.0)
        snap = w.snapshot()
        assert snap["requests"] == 0
        assert snap["shed_blocks"] == 0
        assert snap["rejections"] == 0
        assert snap["p50_s"] is None

    def test_partial_expiry_keeps_recent(self):
        clock = FakeClock()
        w = RollingWindow(window_s=60.0, n_buckets=12, clock=clock)
        w.observe_request("ok", 0.01)
        clock.advance(30.0)
        w.observe_request("ok", 0.01)
        clock.advance(35.0)   # first slot aged out, second alive
        assert w.snapshot()["requests"] == 1

    def test_queue_depth_is_windowed_max(self):
        clock = FakeClock()
        w = RollingWindow(window_s=60.0, n_buckets=12, clock=clock)
        w.observe_queue_depth(3)
        w.observe_queue_depth(9)
        w.observe_queue_depth(4)
        assert w.snapshot()["queue_depth_max"] == 9
        clock.advance(61.0)
        assert w.snapshot()["queue_depth_max"] == 0

    def test_exposition_series(self):
        clock = FakeClock()
        w = RollingWindow(clock=clock)
        w.observe_request("ok", 0.02)
        text = w.exposition()
        families, samples = parse_exposition(text)
        assert families["repro_window_requests"] == "gauge"
        assert samples["repro_window_requests"] == 1
        assert "repro_window_request_p50_seconds" in families
        assert "repro_window_request_p99_seconds" in families
