"""Tests for the overload sentinel: pressure scoring, the
degradation ladder's hysteresis (no flapping, dwell enforcement,
byte-reproducible sequences under an injectable clock), the monitor's
lag measurement, admission's priority-aware shed gates, the honest
retry hint, the short-horizon telemetry window, and the resilient
``repro top`` loop."""

import io
import json

import pytest

from repro.errors import ReproError, RequestRejected
from repro.obs.expo import RollingWindow
from repro.obs.metrics import MetricsRegistry
from repro.serve import top as top_mod
from repro.serve.admission import (AdmissionController,
                                   FALLBACK_RETRY_AFTER_S)
from repro.serve.overload import (DEFAULT_ENTER, DEFAULT_EXIT,
                                  L_BROWNOUT, L_EMERGENCY, L_NORMAL,
                                  L_PRIORITIZED_SHED,
                                  L_SHED_OPTIONAL, LEVEL_NAMES,
                                  DegradationLadder, OverloadConfig,
                                  OverloadMonitor, OverloadSignals,
                                  Transition, is_priority_tenant,
                                  pressure_score, process_rss_mb)


class FakeClock:
    """Deterministic monotonic clock: advances ``step`` per call."""

    def __init__(self, step=0.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now

    def advance(self, seconds):
        self.now += seconds


def occ(score, capacity=1000):
    """Signals whose pressure score is exactly ``score`` (<= 1.0),
    driven by the occupancy signal alone."""
    return OverloadSignals(occupancy=int(round(score * capacity)),
                           capacity=capacity)


def lag(score, budget=0.25):
    """Signals whose score is ``score`` via loop lag (works > 1.0)."""
    return OverloadSignals(capacity=1000, loop_lag_s=score * budget)


class TestPressureScore:

    def config(self, **kwargs):
        return OverloadConfig(**kwargs)

    def test_occupancy_normalised_against_capacity(self):
        score, dominant = pressure_score(
            OverloadSignals(occupancy=3, capacity=4), self.config())
        assert score == pytest.approx(0.75)
        assert dominant == "occupancy"

    def test_queue_depth_latch_capped_at_point_nine(self):
        # The latched saturation marker alone reaches brownout
        # (0.9 >= enter[2]) but can never clear enter[3]: L3+ takes
        # a live signal.
        score, dominant = pressure_score(
            OverloadSignals(queue_depth=4, capacity=4), self.config())
        assert score == pytest.approx(0.9)
        assert dominant == "queue-depth"
        assert score >= DEFAULT_ENTER[L_BROWNOUT]
        assert score < DEFAULT_ENTER[L_PRIORITIZED_SHED]

    def test_rss_ignored_without_budget(self):
        score, dominant = pressure_score(
            OverloadSignals(capacity=8, rss_mb=10_000.0),
            self.config(rss_budget_mb=None))
        assert dominant != "rss"
        assert score == 0.0

    def test_rss_scored_against_budget(self):
        score, dominant = pressure_score(
            OverloadSignals(capacity=8, rss_mb=300.0),
            self.config(rss_budget_mb=200.0))
        assert dominant == "rss"
        assert score == pytest.approx(1.5)

    def test_p99_and_backlog_signals(self):
        score, dominant = pressure_score(
            OverloadSignals(capacity=8, p99_s=4.0),
            self.config(p99_budget_s=2.0))
        assert (score, dominant) == (pytest.approx(2.0), "p99")
        score, dominant = pressure_score(
            OverloadSignals(capacity=8, wal_backlog=96),
            self.config(backlog_budget=64))
        assert (score, dominant) == (pytest.approx(1.5), "wal-backlog")

    def test_dominant_ties_break_alphabetically(self):
        # occupancy 1.0 and loop-lag 1.0: "loop-lag" < "occupancy".
        score, dominant = pressure_score(
            OverloadSignals(occupancy=4, capacity=4,
                            loop_lag_s=0.25), self.config())
        assert score == pytest.approx(1.0)
        assert dominant == "loop-lag"

    def test_zero_capacity_does_not_divide_by_zero(self):
        score, _ = pressure_score(
            OverloadSignals(occupancy=2, capacity=0), self.config())
        assert score == pytest.approx(2.0)


class TestOverloadConfig:

    def test_defaults_validate(self):
        cfg = OverloadConfig()
        assert cfg.enter == DEFAULT_ENTER
        assert cfg.exit == DEFAULT_EXIT

    def test_wrong_arity_rejected(self):
        with pytest.raises(ReproError, match="levels"):
            OverloadConfig(enter=(0.0, 0.5, 1.0))

    def test_non_increasing_enter_rejected(self):
        with pytest.raises(ReproError, match="strictly"):
            OverloadConfig(enter=(0.0, 0.7, 0.7, 1.0, 1.3))

    def test_exit_above_enter_rejected(self):
        bad = list(DEFAULT_EXIT)
        bad[2] = 0.95  # above enter[2]=0.85: no hysteresis band
        with pytest.raises(ReproError, match="hysteresis"):
            OverloadConfig(exit=tuple(bad))

    def test_bad_interval_rejected(self):
        with pytest.raises(ReproError, match="interval"):
            OverloadConfig(interval_s=0.0)
        with pytest.raises(ReproError, match="dwell_up"):
            OverloadConfig(dwell_up_s=-1.0)


class TestDegradationLadder:

    def ladder(self, clock, **kwargs):
        kwargs.setdefault("dwell_s", (0.0, 1.0, 1.0, 1.5, 2.0))
        kwargs.setdefault("dwell_up_s", 0.25)
        return DegradationLadder(OverloadConfig(**kwargs), clock=clock)

    def test_starts_normal(self):
        ladder = self.ladder(FakeClock())
        assert ladder.level == L_NORMAL
        assert ladder.level_name == "normal"
        assert ladder.observe(occ(0.1)) is None

    def test_ascent_jumps_to_highest_qualifying_level(self):
        clock = FakeClock()
        ladder = self.ladder(clock)
        clock.advance(1.0)  # past dwell_up
        event = ladder.observe(lag(1.4))
        assert event is not None
        assert (event.from_level, event.to_level) == (0, L_EMERGENCY)
        assert event.direction == "ascend"
        assert ladder.max_level == L_EMERGENCY

    def test_descent_steps_one_level_at_a_time(self):
        clock = FakeClock()
        ladder = self.ladder(clock)
        clock.advance(1.0)
        ladder.observe(lag(1.4))  # -> L4
        for expected in (3, 2, 1, 0):
            clock.advance(5.0)  # past every dwell
            event = ladder.observe(occ(0.0))
            assert event is not None and event.to_level == expected
            assert event.direction == "descend"
        assert ladder.level == L_NORMAL
        assert ladder.ascents_total == 1
        assert ladder.descents_total == 4

    def test_dwell_enforced_at_every_boundary(self):
        # At each level L >= 1, a score at the exit threshold must
        # not descend until dwell_s[L] has elapsed -- and must
        # descend on the first observation after.
        clock = FakeClock()
        dwell = (0.0, 1.0, 1.0, 1.5, 2.0)
        ladder = self.ladder(clock, dwell_s=dwell)
        clock.advance(1.0)
        ladder.observe(lag(1.4))  # straight to L4
        for level in (4, 3, 2, 1):
            calm = occ(0.0)
            clock.advance(dwell[level] - 0.05)
            assert ladder.observe(calm) is None, \
                f"descended from L{level} before its dwell"
            assert ladder.level == level
            clock.advance(0.1)
            event = ladder.observe(calm)
            assert event is not None
            assert event.to_level == level - 1

    def test_dwell_up_spaces_consecutive_ascents(self):
        clock = FakeClock()
        ladder = self.ladder(clock, dwell_up_s=0.25)
        clock.advance(1.0)
        ladder.observe(occ(0.75))  # -> L1
        # Immediately qualifying for L2: blocked by dwell_up.
        assert ladder.observe(occ(0.90)) is None
        assert ladder.level == L_SHED_OPTIONAL
        clock.advance(0.3)
        event = ladder.observe(occ(0.90))
        assert event is not None and event.to_level == L_BROWNOUT

    def test_no_flap_inside_hysteresis_band(self):
        # Oscillating between exit[1] and enter[1] (exclusive) must
        # produce zero transitions once at L1, no matter how long.
        clock = FakeClock()
        ladder = self.ladder(clock)
        clock.advance(1.0)
        ladder.observe(occ(0.75))  # -> L1
        assert ladder.level == L_SHED_OPTIONAL
        for i in range(200):
            clock.advance(0.5)
            inside = 0.60 if i % 2 else 0.69  # (0.55, 0.70) band
            assert ladder.observe(occ(inside)) is None
        assert ladder.level == L_SHED_OPTIONAL
        assert ladder.transitions_total == 1

    def test_transition_sequence_is_reproducible(self):
        # Same signal trace + same clock schedule -> byte-identical
        # transition records, run twice.
        trace = ([occ(0.0)] * 3 + [occ(0.95)] * 8 + [occ(0.72)] * 8
                 + [occ(0.0)] * 40)

        def run():
            clock = FakeClock()
            ladder = self.ladder(clock)
            events = []
            for signals in trace:
                clock.advance(0.5)
                event = ladder.observe(signals)
                if event is not None:
                    events.append(event.to_dict())
            return json.dumps(events, sort_keys=True)

        first, second = run(), run()
        assert first == second
        levels = [e["to_level"] for e in json.loads(first)]
        assert levels[0] == L_BROWNOUT  # the storm ascends first
        assert levels[-1] == L_NORMAL  # and calm walks it back down
        assert ladder_is_monotone_descent(json.loads(first)[1:])

    def test_transition_to_dict_shape(self):
        event = Transition(at_s=1.5, from_level=0, to_level=2,
                           score=0.91, dominant="queue-depth")
        doc = event.to_dict()
        assert doc["from"] == "normal" and doc["to"] == "brownout"
        assert doc["direction"] == "ascend"
        descent = Transition(at_s=2.0, from_level=2, to_level=1,
                             score=0.1, dominant="occupancy")
        assert descent.direction == "descend"

    def test_snapshot_and_callback(self):
        seen = []
        clock = FakeClock()
        ladder = DegradationLadder(OverloadConfig(),
                                   clock=clock,
                                   on_transition=seen.append)
        clock.advance(1.0)
        ladder.observe(lag(1.4))
        assert [t.to_level for t in seen] == [L_EMERGENCY]
        doc = ladder.snapshot()
        assert doc["enabled"] is True
        assert doc["level_name"] == "emergency"
        assert doc["max_level"] == L_EMERGENCY
        assert doc["transitions_total"] == 1
        assert len(doc["recent_transitions"]) == 1
        assert doc["recent_transitions"][0]["dominant"] == "loop-lag"

    def test_recent_transitions_are_capped(self):
        clock = FakeClock()
        ladder = self.ladder(clock, dwell_s=(0.0,) * 5, dwell_up_s=0.0)
        for _ in range(40):
            clock.advance(1.0)
            ladder.observe(occ(0.75))  # ascend to L1
            clock.advance(1.0)
            ladder.observe(occ(0.0))  # descend to L0
        assert ladder.transitions_total == 80
        assert len(ladder.recent) == 16


def ladder_is_monotone_descent(events):
    return all(e["direction"] == "descend" for e in events) and \
        [e["to_level"] for e in events] == \
        list(range(events[0]["to_level"],
                   events[0]["to_level"] - len(events), -1))


class TestOverloadMonitor:

    def test_measures_loop_lag_from_overshoot(self):
        clock = FakeClock()
        monitor = OverloadMonitor(
            DegradationLadder(OverloadConfig(), clock=clock),
            sample=OverloadSignals, interval_s=0.25, clock=clock,
            rss=None)
        monitor.tick()  # first tick: no due time yet
        assert monitor.last_signals.loop_lag_s == 0.0
        clock.advance(0.75)  # due at +0.25, fired 0.5s late
        monitor.tick()
        assert monitor.last_signals.loop_lag_s == pytest.approx(0.5)
        assert monitor.ticks == 2

    def test_fills_rss_and_reports_snapshot(self):
        clock = FakeClock()
        monitor = OverloadMonitor(
            DegradationLadder(
                OverloadConfig(rss_budget_mb=100.0), clock=clock),
            sample=OverloadSignals, interval_s=0.25, clock=clock,
            rss=lambda: 150.0)
        clock.advance(1.0)
        event = monitor.tick()
        assert event is not None  # rss 1.5 -> emergency
        doc = monitor.snapshot()
        assert doc["signals"]["rss_mb"] == pytest.approx(150.0)
        assert doc["ticks"] == 1
        assert doc["interval_s"] == 0.25

    def test_process_rss_mb_reads_something_positive(self):
        rss = process_rss_mb()
        assert rss is not None and rss > 1.0


class TestPriorityClassification:

    def test_explicit_registration(self):
        assert is_priority_tenant("gold", frozenset({"gold"}))
        assert not is_priority_tenant("lead", frozenset({"gold"}))

    def test_name_convention(self):
        assert is_priority_tenant("priority-7")
        assert is_priority_tenant("priority")
        assert not is_priority_tenant("besteffort-1")


class TestAdmissionOverloadGates:

    def controller(self, level, **kwargs):
        kwargs.setdefault("clock", FakeClock())
        kwargs.setdefault("overload_level", lambda: level)
        return AdmissionController(**kwargs)

    def test_emergency_rejects_everyone(self):
        metrics = MetricsRegistry()
        ctrl = self.controller(
            L_EMERGENCY, metrics=metrics,
            priority_tenants=frozenset({"gold"}))
        for tenant in ("gold", "priority-1", "anon"):
            with pytest.raises(RequestRejected) as err:
                ctrl.admit(tenant, 1)
            assert err.value.reason == "overload"
            assert err.value.retry_after_s >= FALLBACK_RETRY_AFTER_S
        values = metrics.snapshot()["volatile"][
            "repro_overload_rejections_total"]["values"]
        assert values == {"tenant_class=priority": 2,
                          "tenant_class=best-effort": 1}

    def test_prioritized_shed_keeps_priority_flowing(self):
        ctrl = self.controller(L_PRIORITIZED_SHED,
                               priority_tenants=frozenset({"gold"}))
        ticket = ctrl.admit("gold", 1)  # explicit registration
        ticket.release()
        ticket = ctrl.admit("priority-app", 1)  # name convention
        ticket.release()
        with pytest.raises(RequestRejected) as err:
            ctrl.admit("anon", 1)
        assert err.value.reason == "overload"
        assert "prioritized shed" in str(err.value)

    def test_brownout_admits_everyone(self):
        ctrl = self.controller(L_BROWNOUT)
        ctrl.admit("anon", 1).release()

    def test_retry_hint_derived_from_completion_rate(self):
        ctrl = self.controller(L_EMERGENCY,
                               completion_rate=lambda: 2.0)
        with pytest.raises(RequestRejected) as err:
            ctrl.admit("anon", 1)
        assert err.value.retry_after_s == pytest.approx(0.5)

    def test_retry_hint_falls_back_on_empty_window(self):
        for rate in (None, 0.0):
            ctrl = self.controller(
                L_EMERGENCY,
                completion_rate=(lambda r=rate: r))
            with pytest.raises(RequestRejected) as err:
                ctrl.admit("anon", 1)
            assert err.value.retry_after_s == FALLBACK_RETRY_AFTER_S

    def test_retry_hint_clamped_to_thirty_seconds(self):
        ctrl = self.controller(L_EMERGENCY,
                               completion_rate=lambda: 1e-9)
        with pytest.raises(RequestRejected) as err:
            ctrl.admit("anon", 1)
        assert err.value.retry_after_s == pytest.approx(30.0)

    def test_priority_class_accessor(self):
        ctrl = self.controller(0, priority_tenants=frozenset({"g"}))
        assert ctrl.priority_class("g") == "priority"
        assert ctrl.priority_class("priority-x") == "priority"
        assert ctrl.priority_class("other") == "best-effort"

    def test_snapshot_carries_overload_level(self):
        ctrl = self.controller(L_BROWNOUT)
        assert ctrl.snapshot()["overload_level"] == L_BROWNOUT

    def test_queue_depth_gauge_tracks_occupancy_not_high_water(self):
        # Regression: the gauge fed the monotone high-water mark,
        # freezing the telemetry window's queue depth at its
        # all-time peak after any burst.
        metrics = MetricsRegistry()
        ctrl = self.controller(0, metrics=metrics, max_active=4)

        def gauge():
            return metrics.snapshot()["volatile"][
                "repro_queue_depth_max"]["values"][""]

        a, b = ctrl.admit("t", 1), ctrl.admit("t", 1)
        assert gauge() == 2
        a.release()
        b.release()
        ctrl.admit("t", 1).release()
        assert gauge() == 1  # would be 2 with the high-water bug


class TestRollingWindowRecent:

    def test_recent_decays_faster_than_full_window(self):
        clock = FakeClock()
        window = RollingWindow(window_s=60.0, n_buckets=12,
                               clock=clock)
        window.observe_queue_depth(8)
        window.observe_request("completed", 4.0)
        clock.advance(21.0)  # four buckets later
        recent = window.recent(10.0)
        assert recent["horizon_s"] == pytest.approx(10.0)
        assert recent["queue_depth_max"] == 0
        assert recent["p99_s"] is None
        # The dashboard window still remembers the burst.
        assert window.snapshot()["queue_depth_max"] == 8

    def test_recent_sees_fresh_saturation(self):
        clock = FakeClock()
        window = RollingWindow(window_s=60.0, n_buckets=12,
                               clock=clock)
        clock.advance(1.0)
        window.observe_queue_depth(5)
        recent = window.recent(10.0)
        assert recent["queue_depth_max"] == 5

    def test_horizon_clamped_to_at_least_one_bucket(self):
        window = RollingWindow(window_s=60.0, n_buckets=12,
                               clock=FakeClock())
        assert window.recent(0.0)["horizon_s"] == pytest.approx(5.0)


class TestTopResilience:

    def frames(self, level=None):
        health = {"uptime_s": 3.0, "workers": 2, "occupancy": 0,
                  "wal": {"enabled": False}}
        if level is not None:
            health["overload"] = {"level": level,
                                  "level_name": LEVEL_NAMES[level],
                                  "score": 0.91,
                                  "dominant": "queue-depth"}
        return {"health": health, "stats": {"server": {}},
                "metrics": {"window": {}}}

    def test_panel_shows_overload_line(self):
        panel = top_mod.render_top(self.frames(level=2), "addr")
        assert "overload: L2 brownout, score 0.91" in panel
        assert "(dominant queue-depth)" in panel

    def test_panel_omits_overload_line_when_disabled(self):
        assert "overload:" not in top_mod.render_top(self.frames())

    def test_render_unreachable(self):
        panel = top_mod.render_unreachable("unix:/tmp/x.sock",
                                           "boom", misses=3)
        assert "unreachable, retrying (x3)" in panel
        assert "boom" in panel

    def test_once_propagates_poll_errors(self, monkeypatch):
        def explode(address, *a, **k):
            raise ReproError("daemon down")
        monkeypatch.setattr(top_mod, "poll_ops", explode)
        with pytest.raises(ReproError, match="daemon down"):
            top_mod.run_top("unix:/nope.sock", once=True,
                            out=io.StringIO())

    def test_interactive_survives_unreachable_daemon(self,
                                                     monkeypatch):
        # First two polls fail, the third succeeds, then stop: the
        # loop must render the retry panel (with a running miss
        # count) instead of crashing.
        calls = {"n": 0}

        def flaky(address, *a, **k):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ReproError("connection refused")
            return self.frames(level=1)

        def stop_after_three(_interval):
            if calls["n"] >= 3:
                raise KeyboardInterrupt

        out = io.StringIO()
        monkeypatch.setattr(top_mod, "poll_ops", flaky)
        top_mod.run_top("unix:/flaky.sock", interval_s=0.0,
                        out=out, sleep=stop_after_three)
        text = out.getvalue()
        assert "unreachable, retrying (x1)" in text
        assert "unreachable, retrying (x2)" in text
        assert "shed-optional" in text  # recovered panel rendered
