"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, BUILDERS, MACHINES, main
from repro.workloads import kernel_source


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "kernel.s"
    path.write_text(kernel_source("daxpy"))
    return str(path)


def run_cli(argv):
    lines: list[str] = []
    status = main(argv, out=lines.append)
    return status, "\n".join(lines)


class TestScheduleCommand:
    def test_section6_default(self, asm_file):
        status, text = run_cli(["schedule", asm_file])
        assert status == 0
        assert "total:" in text
        assert "ldd" in text

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm(self, asm_file, algorithm):
        status, text = run_cli(["schedule", asm_file,
                                "--algorithm", algorithm])
        assert status == 0
        assert "block 0:" in text

    @pytest.mark.parametrize("machine", sorted(MACHINES))
    def test_every_machine(self, asm_file, machine):
        status, _ = run_cli(["schedule", asm_file, "--machine", machine])
        assert status == 0

    def test_schedule_reports_improvement(self, asm_file):
        _, text = run_cli(["schedule", asm_file, "--machine", "sparc"])
        summary = [l for l in text.splitlines() if l.startswith("! total")]
        assert len(summary) == 1
        assert "->" in summary[0]

    def test_window_option(self, asm_file):
        status, text = run_cli(["schedule", asm_file, "--window", "4"])
        assert status == 0
        assert text.count("! block") >= 3  # daxpy split into chunks

    def test_emits_all_instructions(self, asm_file):
        _, text = run_cli(["schedule", asm_file])
        body = [l for l in text.splitlines() if l.startswith("\t")]
        from repro.asm import parse_asm
        assert len(body) == len(parse_asm(kernel_source("daxpy")))


class TestDagCommand:
    @pytest.mark.parametrize("builder", sorted(BUILDERS))
    def test_every_builder(self, asm_file, builder):
        status, text = run_cli(["dag", asm_file, "--builder", builder])
        assert status == 0
        assert "arcs" in text
        assert "RAW" in text

    def test_dag_lists_nodes(self, asm_file):
        _, text = run_cli(["dag", asm_file])
        assert "fmuld" in text

    def test_dag_dot_output(self, asm_file):
        status, text = run_cli(["dag", asm_file, "--dot"])
        assert status == 0
        assert text.startswith("digraph")
        assert "->" in text


class TestStatsCommand:
    def test_table3_row(self, asm_file):
        status, text = run_cli(["stats", asm_file])
        assert status == 0
        assert "insts/bb max" in text

    def test_stats_with_window(self, asm_file):
        _, unwindowed = run_cli(["stats", asm_file])
        _, windowed = run_cli(["stats", asm_file, "--window", "3"])
        assert unwindowed != windowed


class TestMinicCommand:
    @pytest.fixture
    def c_file(self, tmp_path):
        path = tmp_path / "kernel.c"
        path.write_text("double a, b, c; int i;\n"
                        "c = a * b + c / a;\n"
                        "i = (i + 1) % 5;\n")
        return str(path)

    def test_compile_only(self, c_file):
        status, text = run_cli(["minic", c_file])
        assert status == 0
        assert "fdivd" in text
        assert "sdiv" in text

    def test_compile_and_schedule(self, c_file):
        status, text = run_cli(["minic", c_file, "--schedule"])
        assert status == 0
        assert "-> " in text and "cycles" in text

    def test_machine_option(self, c_file):
        status, _ = run_cli(["minic", c_file, "--schedule",
                             "--machine", "sparc"])
        assert status == 0


class TestParser:
    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            run_cli(["bogus"])

    def test_unknown_algorithm_fails(self, asm_file):
        with pytest.raises(SystemExit):
            run_cli(["schedule", asm_file, "--algorithm", "nope"])

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            run_cli(["schedule", "/nonexistent/file.s"])


class TestVerifyCommand:
    def test_clean_file_passes(self, asm_file):
        status, text = run_cli(["verify", asm_file])
        assert status == 0
        assert "PASS" in text
        assert "FAIL" not in text
        assert "0 failed" in text

    def test_figure1_flags_landskov(self, tmp_path):
        path = tmp_path / "figure1.s"
        path.write_text(kernel_source("figure1"))
        status, text = run_cli(["verify", str(path)])
        assert status == 1
        assert "[landskov]: FAIL (timing)" in text
        assert "[n2]: PASS" in text

    def test_single_builder_option(self, asm_file):
        status, text = run_cli(["verify", asm_file,
                                "--builder", "table-forward"])
        assert status == 0
        assert "[table-forward]" in text
        assert "[landskov]" not in text

    def test_no_semantics_option(self, asm_file):
        status, _ = run_cli(["verify", asm_file, "--no-semantics"])
        assert status == 0


class TestErrorDiagnostics:
    def test_parse_error_exits_2(self, tmp_path):
        path = tmp_path / "bad.s"
        path.write_text("bogusop %o0, %o1\n")
        status, text = run_cli(["schedule", str(path)])
        assert status == 2
        assert "repro: error:" in text

    def test_verify_parse_error_exits_2(self, tmp_path):
        path = tmp_path / "bad.s"
        path.write_text("add %o0\n")
        status, text = run_cli(["verify", str(path)])
        assert status == 2
        assert "repro: error:" in text


class TestExitStatuses:
    """Exit-status contract: 0 success, 1 check failure, 2 ReproError --
    across every subcommand."""

    @pytest.fixture
    def bad_file(self, tmp_path):
        path = tmp_path / "bad.s"
        path.write_text("add %o0, %o1, %o2\nbogusop %o9\n")
        return str(path)

    @pytest.mark.parametrize("argv", [
        ["schedule", "{f}"],
        ["dag", "{f}"],
        ["stats", "{f}"],
        ["verify", "{f}"],
    ])
    def test_success_is_0(self, asm_file, argv):
        status, _ = run_cli([a.format(f=asm_file) for a in argv])
        assert status == 0

    @pytest.mark.parametrize("argv", [
        ["schedule", "{f}"],
        ["dag", "{f}"],
        ["stats", "{f}"],
        ["verify", "{f}"],
    ])
    def test_parse_error_is_2(self, bad_file, argv):
        status, text = run_cli([a.format(f=bad_file) for a in argv])
        assert status == 2
        assert "repro: error:" in text

    def test_fuzz_clean_is_0(self, tmp_path):
        status, text = run_cli(["fuzz", "--seed", "0",
                                "--iterations", "4",
                                "--out", str(tmp_path / "fz")])
        assert status == 0
        assert "0 disagreements" in text

    def test_fuzz_disagreement_is_1(self, tmp_path):
        status, text = run_cli(["fuzz", "--seed", "0",
                                "--iterations", "2", "--inject-fault",
                                "--out", str(tmp_path / "fz")])
        assert status == 1
        assert "FAIL" in text
        assert "reproducer:" in text

    def test_verify_broken_builder_is_1(self, asm_file, monkeypatch):
        from repro import cli
        from repro.dag.builders import CompareAllBuilder

        class _Pruning(CompareAllBuilder):
            """Deliberately drops every arc: schedules built from it
            must fail independent verification."""

            name = "pruning"

            def _construct(self, dag, space, oracle, stats):
                pass

        monkeypatch.setitem(cli.BUILDERS, "n2", _Pruning)
        status, text = run_cli(["verify", asm_file, "--builder", "n2"])
        assert status == 1
        assert "FAIL" in text
        assert "failed" in text.splitlines()[-1]


class TestResilientScheduleFlags:
    def test_chain_option(self, asm_file):
        status, text = run_cli(["schedule", asm_file,
                                "--chain", "n2"])
        assert status == 0
        assert "total:" in text

    def test_unknown_chain_is_2(self, asm_file):
        status, text = run_cli(["schedule", asm_file,
                                "--chain", "bogus"])
        assert status == 2
        assert "unknown builder" in text

    def test_max_work_degrades_not_crashes(self, asm_file):
        status, text = run_cli(["schedule", asm_file,
                                "--max-work", "2"])
        assert status == 0
        assert "degraded to original order" in text
        assert "timeout failed" in text
        assert "total:" in text

    def test_verify_flag(self, asm_file):
        status, text = run_cli(["schedule", asm_file, "--verify"])
        assert status == 0
        assert "total:" in text

    def test_resume_without_journal_is_2(self, asm_file):
        status, text = run_cli(["schedule", asm_file, "--resume"])
        assert status == 2
        assert "--resume requires --journal" in text

    def test_resume_with_missing_journal_starts_fresh(self, asm_file,
                                                      tmp_path):
        journal = tmp_path / "run.jsonl"
        status, _ = run_cli(["schedule", asm_file, "--journal",
                             str(journal), "--resume"])
        assert status == 0
        assert journal.exists()

    def test_journal_fingerprint_mismatch_is_2(self, asm_file, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        status, _ = run_cli(["schedule", asm_file, "--journal", journal])
        assert status == 0
        status, text = run_cli(["schedule", asm_file, "--journal",
                                journal, "--resume",
                                "--machine", "sparc"])
        assert status == 2
        assert "different run" in text


class TestLenientFlag:
    @pytest.fixture
    def messy_file(self, tmp_path):
        path = tmp_path / "messy.s"
        path.write_text("add %o0, %o1, %o2\n"
                        "bogusop %o0\n"
                        "add %o2, 1, %o3\n")
        return str(path)

    def test_lenient_schedule_recovers(self, messy_file):
        status, text = run_cli(["schedule", messy_file, "--lenient"])
        assert status == 0
        assert "! skipped line 2:" in text
        assert "bogusop" in text  # the diagnostic quotes the line
        assert text.count("add") == 2

    def test_lenient_stats_and_dag(self, messy_file):
        for command in ("stats", "dag"):
            status, text = run_cli([command, messy_file, "--lenient"])
            assert status == 0
            assert "! skipped line 2:" in text
