"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, BUILDERS, MACHINES, main
from repro.workloads import kernel_source


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "kernel.s"
    path.write_text(kernel_source("daxpy"))
    return str(path)


def run_cli(argv):
    lines: list[str] = []
    status = main(argv, out=lines.append)
    return status, "\n".join(lines)


class TestScheduleCommand:
    def test_section6_default(self, asm_file):
        status, text = run_cli(["schedule", asm_file])
        assert status == 0
        assert "total:" in text
        assert "ldd" in text

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm(self, asm_file, algorithm):
        status, text = run_cli(["schedule", asm_file,
                                "--algorithm", algorithm])
        assert status == 0
        assert "block 0:" in text

    @pytest.mark.parametrize("machine", sorted(MACHINES))
    def test_every_machine(self, asm_file, machine):
        status, _ = run_cli(["schedule", asm_file, "--machine", machine])
        assert status == 0

    def test_schedule_reports_improvement(self, asm_file):
        _, text = run_cli(["schedule", asm_file, "--machine", "sparc"])
        summary = [l for l in text.splitlines() if l.startswith("! total")]
        assert len(summary) == 1
        assert "->" in summary[0]

    def test_window_option(self, asm_file):
        status, text = run_cli(["schedule", asm_file, "--window", "4"])
        assert status == 0
        assert text.count("! block") >= 3  # daxpy split into chunks

    def test_emits_all_instructions(self, asm_file):
        _, text = run_cli(["schedule", asm_file])
        body = [l for l in text.splitlines() if l.startswith("\t")]
        from repro.asm import parse_asm
        assert len(body) == len(parse_asm(kernel_source("daxpy")))


class TestDagCommand:
    @pytest.mark.parametrize("builder", sorted(BUILDERS))
    def test_every_builder(self, asm_file, builder):
        status, text = run_cli(["dag", asm_file, "--builder", builder])
        assert status == 0
        assert "arcs" in text
        assert "RAW" in text

    def test_dag_lists_nodes(self, asm_file):
        _, text = run_cli(["dag", asm_file])
        assert "fmuld" in text

    def test_dag_dot_output(self, asm_file):
        status, text = run_cli(["dag", asm_file, "--dot"])
        assert status == 0
        assert text.startswith("digraph")
        assert "->" in text


class TestStatsCommand:
    def test_table3_row(self, asm_file):
        status, text = run_cli(["stats", asm_file])
        assert status == 0
        assert "insts/bb max" in text

    def test_stats_with_window(self, asm_file):
        _, unwindowed = run_cli(["stats", asm_file])
        _, windowed = run_cli(["stats", asm_file, "--window", "3"])
        assert unwindowed != windowed


class TestMinicCommand:
    @pytest.fixture
    def c_file(self, tmp_path):
        path = tmp_path / "kernel.c"
        path.write_text("double a, b, c; int i;\n"
                        "c = a * b + c / a;\n"
                        "i = (i + 1) % 5;\n")
        return str(path)

    def test_compile_only(self, c_file):
        status, text = run_cli(["minic", c_file])
        assert status == 0
        assert "fdivd" in text
        assert "sdiv" in text

    def test_compile_and_schedule(self, c_file):
        status, text = run_cli(["minic", c_file, "--schedule"])
        assert status == 0
        assert "-> " in text and "cycles" in text

    def test_machine_option(self, c_file):
        status, _ = run_cli(["minic", c_file, "--schedule",
                             "--machine", "sparc"])
        assert status == 0


class TestParser:
    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            run_cli(["bogus"])

    def test_unknown_algorithm_fails(self, asm_file):
        with pytest.raises(SystemExit):
            run_cli(["schedule", asm_file, "--algorithm", "nope"])

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            run_cli(["schedule", "/nonexistent/file.s"])


class TestVerifyCommand:
    def test_clean_file_passes(self, asm_file):
        status, text = run_cli(["verify", asm_file])
        assert status == 0
        assert "PASS" in text
        assert "FAIL" not in text
        assert "0 failed" in text

    def test_figure1_flags_landskov(self, tmp_path):
        path = tmp_path / "figure1.s"
        path.write_text(kernel_source("figure1"))
        status, text = run_cli(["verify", str(path)])
        assert status == 1
        assert "[landskov]: FAIL (timing)" in text
        assert "[n2]: PASS" in text

    def test_single_builder_option(self, asm_file):
        status, text = run_cli(["verify", asm_file,
                                "--builder", "table-forward"])
        assert status == 0
        assert "[table-forward]" in text
        assert "[landskov]" not in text

    def test_no_semantics_option(self, asm_file):
        status, _ = run_cli(["verify", asm_file, "--no-semantics"])
        assert status == 0


class TestErrorDiagnostics:
    def test_parse_error_exits_2(self, tmp_path):
        path = tmp_path / "bad.s"
        path.write_text("bogusop %o0, %o1\n")
        status, text = run_cli(["schedule", str(path)])
        assert status == 2
        assert "repro: error:" in text

    def test_verify_parse_error_exits_2(self, tmp_path):
        path = tmp_path / "bad.s"
        path.write_text("add %o0\n")
        status, text = run_cli(["verify", str(path)])
        assert status == 2
        assert "repro: error:" in text
