"""Tests for the random mini-C workload generator."""

import pytest

from repro.machine import generic_risc
from repro.minic import compile_minic
from repro.scheduling.algorithms import Warren
from repro.scheduling.timing import verify_order
from repro.workloads.minic_programs import (
    MiniCWorkloadSpec,
    generate_minic_blocks,
    generate_minic_source,
    minic_workload,
)


class TestSourceGeneration:
    def test_deterministic(self):
        spec = MiniCWorkloadSpec(seed=5)
        assert generate_minic_source(spec) == generate_minic_source(spec)

    def test_seed_varies_output(self):
        a = generate_minic_source(MiniCWorkloadSpec(seed=1))
        b = generate_minic_source(MiniCWorkloadSpec(seed=2))
        assert a != b

    def test_statement_count(self):
        spec = MiniCWorkloadSpec(n_statements=9, seed=3)
        source = generate_minic_source(spec)
        assert source.count(";") == 9 + 2  # + the two declarations

    def test_every_source_compiles(self):
        for seed in range(25):
            source = generate_minic_source(MiniCWorkloadSpec(seed=seed))
            assert compile_minic(source)

    def test_double_fraction_zero_is_int_only(self):
        spec = MiniCWorkloadSpec(double_fraction=0.0, seed=4,
                                 n_statements=8)
        asm = compile_minic(generate_minic_source(spec))
        assert "faddd" not in asm and "ldd" not in asm

    def test_mixing_produces_conversions(self):
        spec = MiniCWorkloadSpec(double_fraction=1.0, allow_mixing=True,
                                 n_statements=12, seed=6)
        asm = compile_minic(generate_minic_source(spec))
        assert "fitod" in asm

    def test_no_mixing_no_conversions(self):
        spec = MiniCWorkloadSpec(double_fraction=1.0, allow_mixing=False,
                                 n_statements=12, seed=6)
        asm = compile_minic(generate_minic_source(spec))
        assert "fitod" not in asm


class TestBlocks:
    def test_single_block_per_program(self):
        blocks = generate_minic_blocks(MiniCWorkloadSpec(seed=7))
        assert len(blocks) == 1
        assert blocks[0].size > 5

    def test_workload_batch(self):
        blocks = minic_workload(n_programs=5, seed=11)
        assert len(blocks) == 5
        assert [b.index for b in blocks] == list(range(5))

    def test_blocks_schedule_legally(self):
        machine = generic_risc()
        for block in minic_workload(n_programs=8, seed=13):
            result = Warren(machine).schedule_block(block)
            verify_order(result.order, result.build.dag)
            assert result.makespan <= result.original_timing.makespan

    def test_scheduling_finds_real_overlap(self):
        machine = generic_risc()
        total = original = 0
        for block in minic_workload(n_programs=10, seed=17,
                                    double_fraction=0.7):
            result = Warren(machine).schedule_block(block)
            total += result.makespan
            original += result.original_timing.makespan
        # Compiler output is stall-rich enough for a double-digit win
        # (1640 vs 1931 cycles at this seed).
        assert total < 0.9 * original

    def test_semantics_preserved_on_workload(self):
        from repro.interp import execute
        import sys
        sys.path.insert(0, "tests")
        from test_semantics import initial_state
        machine = generic_risc()
        for block in minic_workload(n_programs=6, seed=23):
            reference = execute(block.instructions,
                                initial_state()).snapshot()
            result = Warren(machine).schedule_block(block)
            scheduled = execute([n.instr for n in result.order],
                                initial_state()).snapshot()
            assert scheduled == reference
