"""Tests for scheduling-decision recording and heuristic forensics."""

import pytest

from repro.analysis.decisions import decision_histogram, deciding_rank
from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.list_scheduler import Decision, schedule_forward
from repro.scheduling.priority import winnowing
from repro.workloads import kernel_source

TERMS = ("max_path_to_leaf", "max_delay_to_leaf", "max_delay_to_child")
PRIORITY = winnowing(*TERMS)


def run_with_decisions(source: str):
    machine = generic_risc()
    blocks = partition_blocks(parse_asm(source))
    dag = TableForwardBuilder(machine).build(blocks[0]).dag
    backward_pass(dag, require_est=False)
    decisions: list[Decision] = []
    result = schedule_forward(dag, machine, PRIORITY,
                              decisions=decisions)
    return result, decisions


class TestDecisionRecording:
    def test_one_decision_per_pick(self):
        result, decisions = run_with_decisions(kernel_source("daxpy"))
        assert len(decisions) == len(result.order)

    def test_chosen_matches_order(self):
        result, decisions = run_with_decisions(kernel_source("daxpy"))
        assert [d.chosen for d in decisions] == \
            [n.id for n in result.order]

    def test_chosen_in_candidates(self):
        _, decisions = run_with_decisions(kernel_source("livermore1"))
        for d in decisions:
            assert d.chosen in d.candidates
            assert set(d.priorities) == set(d.candidates)

    def test_chosen_has_max_priority(self):
        _, decisions = run_with_decisions(kernel_source("livermore1"))
        for d in decisions:
            best = max(d.priorities.values())
            assert d.priorities[d.chosen] == best

    def test_no_recording_by_default(self):
        machine = generic_risc()
        blocks = partition_blocks(parse_asm("nop"))
        dag = TableForwardBuilder(machine).build(blocks[0]).dag
        backward_pass(dag, require_est=False)
        result = schedule_forward(dag, machine, PRIORITY)
        assert result.order  # simply runs without a decisions list


class TestDecidingRank:
    def test_single_candidate_is_no_choice(self):
        d = Decision(0, 5, (5,), {5: (1, 2, 3)})
        assert deciding_rank(d) is None

    def test_first_rank_decides(self):
        d = Decision(0, 1, (1, 2), {1: (5, 0, 0), 2: (3, 9, 9)})
        assert deciding_rank(d) == 0

    def test_later_rank_decides_after_tie(self):
        d = Decision(0, 1, (1, 2), {1: (5, 7, 0), 2: (5, 3, 9)})
        assert deciding_rank(d) == 1

    def test_full_tie_falls_to_original_order(self):
        d = Decision(0, 1, (1, 2), {1: (5, 7, 2), 2: (5, 7, 2)})
        assert deciding_rank(d) is None

    def test_three_way(self):
        d = Decision(0, 3, (1, 2, 3),
                     {1: (4, 9, 9), 2: (5, 1, 9), 3: (5, 2, 0)})
        assert deciding_rank(d) == 1

    def test_non_tuple_priorities_rejected(self):
        d = Decision(0, 1, (1, 2), {1: 10, 2: 5})
        with pytest.raises(TypeError):
            deciding_rank(d)


class TestHistogram:
    def test_counts_sum_to_decisions(self):
        _, decisions = run_with_decisions(kernel_source("livermore1"))
        hist = decision_histogram(decisions, TERMS)
        assert sum(hist.values()) == len(decisions)

    def test_all_terms_present(self):
        _, decisions = run_with_decisions(kernel_source("daxpy"))
        hist = decision_histogram(decisions, TERMS)
        assert set(hist) == {*TERMS, "original order", "no choice"}

    def test_critical_path_dominates_on_daxpy(self):
        _, decisions = run_with_decisions(kernel_source("daxpy"))
        hist = decision_histogram(decisions, TERMS)
        contested = sum(hist.values()) - hist["no choice"]
        assert contested > 0
        # The first two critical-path ranks decide most contested picks.
        assert hist["max_path_to_leaf"] + hist["max_delay_to_leaf"] \
            >= hist["original order"]
