"""Shared fixtures: machines, the paper's Figure 1 block, kernels."""

from __future__ import annotations

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.machine import (
    generic_risc,
    rs6000_like,
    sparcstation2_like,
    superscalar2,
)
from repro.workloads import kernel_source


@pytest.fixture
def machine():
    """The default scalar machine (Figure 1 latencies)."""
    return generic_risc()


@pytest.fixture
def sparc_machine():
    return sparcstation2_like()


@pytest.fixture
def rs6000_machine():
    return rs6000_like()


@pytest.fixture
def wide_machine():
    return superscalar2()


@pytest.fixture
def figure1_block():
    """The paper's Figure 1 three-instruction block."""
    program = parse_asm(kernel_source("figure1"), "figure1")
    blocks = partition_blocks(program)
    assert len(blocks) == 1
    return blocks[0]


def block_from(source: str, index: int = 0):
    """Parse assembly text and return one of its basic blocks."""
    blocks = partition_blocks(parse_asm(source))
    return blocks[index]


@pytest.fixture
def daxpy_block():
    """The daxpy kernel's main block."""
    return block_from(kernel_source("daxpy"))


@pytest.fixture
def mixed_block():
    """A block mixing int/FP/memory work with a branch terminator."""
    return block_from("""
    loop:
        ld [%fp-8], %o1
        ld [%fp-12], %o2
        add %o1, %o2, %o3
        smul %o3, %o1, %o4
        st %o4, [%fp-16]
        fdivd %f0, %f2, %f4
        faddd %f6, %f8, %f0
        faddd %f0, %f4, %f10
        cmp %o4, 100
        bl loop
        nop
    """)
