"""Crafted scenarios exercising each algorithm's *ranked* heuristics.

Each test constructs a block where the algorithm's top-ranked
heuristic disagrees with a lower-ranked one and checks the documented
rank order wins -- the behavioural content of Table 2, beyond "it
schedules legally".
"""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.machine import generic_risc
from repro.scheduling.algorithms import (
    GibbonsMuchnick,
    Krishnamurthy,
    Schlansker,
    ShiehPapachristou,
    Tiemann,
    Warren,
)


def block_of(source: str):
    blocks = partition_blocks(parse_asm(source))
    assert len(blocks) == 1
    return blocks[0]


class TestGibbonsMuchnickRanking:
    def test_no_interlock_beats_path_length(self):
        # After the load issues, its consumer interlocks; G&M rank 1
        # (no interlock with previous) must prefer the independent mov
        # even though the consumer chain is longer (rank 4 would pick
        # the chain).
        result = GibbonsMuchnick(generic_risc()).schedule_block(block_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            add %o1, 1, %o2
            add %o2, 1, %o3
            mov 7, %o5
        """))
        ids = [n.id for n in result.order]
        assert ids[0] == 0          # load first (longest path)
        assert ids[1] == 4          # mov fills the interlock slot

    def test_interlock_with_child_rank2(self):
        # Two ready roots, neither interlocking with the previous
        # instruction; rank 2 prefers the one whose child interlocks
        # (the load, delay 2) over the plain mov chain.
        result = GibbonsMuchnick(generic_risc()).schedule_block(block_of("""
            mov 1, %o0
            ld [%fp-8], %o1
            add %o1, 1, %o2
            add %o0, 1, %o3
        """))
        assert result.order[0].id == 1  # the load goes first


class TestKrishnamurthyRanking:
    def test_earliest_time_dominates(self):
        # Both candidates ready at time 0 initially; after issuing the
        # load, its consumer is NOT ready (eet=2) while the mov is --
        # the rank 1 earliest-time term picks the mov regardless of the
        # consumer's longer path to leaf.
        result = Krishnamurthy(generic_risc()).schedule_block(block_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            add %o1, 1, %o2
            mov 7, %o5
        """))
        ids = [n.id for n in result.order]
        assert ids.index(3) == 1

    def test_execution_time_rank4_breaks_path_ties(self):
        # Equal max-path-to-leaf (both leaves, both ready): the
        # longer-latency divide is chosen first by rank 4.
        result = Krishnamurthy(generic_risc()).schedule_block(block_of("""
            faddd %f0, %f2, %f4
            fdivd %f6, %f8, %f10
        """))
        assert result.order[0].id == 1


class TestSchlanskerRanking:
    def test_zero_slack_chain_scheduled_contiguously_first(self):
        # Critical chain (divide + dependent add) vs slack-rich movs:
        # the backward pass places the movs at the end, critical ops at
        # the front.
        result = Schlansker(generic_risc()).schedule_block(block_of("""
            mov 1, %o0
            mov 2, %o1
            fdivd %f0, %f2, %f4
            faddd %f4, %f6, %f8
        """))
        ids = [n.id for n in result.order]
        assert ids[0] == 2  # the divide leads


class TestShiehPapachristouRanking:
    def test_max_delay_to_leaf_rank1(self):
        # The divide has the largest total delay to a leaf and must be
        # issued first even though the loads have more children.
        result = ShiehPapachristou(generic_risc()).schedule_block(block_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            fdivd %f0, %f2, %f4
            faddd %f4, %f6, %f8
        """))
        assert result.order[0].id == 2

    def test_n_children_rank3_breaks_ties(self):
        # Equal delay/exec profiles; the mov feeding two consumers
        # outranks the mov feeding one.
        result = ShiehPapachristou(generic_risc()).schedule_block(block_of("""
            mov 1, %o0
            mov 2, %o1
            add %o0, %o0, %o2
            add %o0, 3, %o3
            add %o1, 4, %o4
        """))
        ids = [n.id for n in result.order]
        assert ids.index(0) < ids.index(1)


class TestTiemannRanking:
    def test_max_delay_from_root_places_deep_nodes_late(self):
        # Backward pass: the node deepest from a root (largest
        # max-delay-from-root) is picked first, i.e. placed last.
        result = Tiemann(generic_risc()).schedule_block(block_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            mov 7, %o5
        """))
        assert result.order[-1].id == 1

    def test_original_order_rank3(self):
        # All-independent movs: backward tie-breaking reproduces the
        # original order exactly.
        result = Tiemann(generic_risc()).schedule_block(block_of(
            "mov 1, %o0\nmov 2, %o1\nmov 3, %o2"))
        assert [n.id for n in result.order] == [0, 1, 2]


class TestWarrenRanking:
    def test_earliest_time_rank1(self):
        # A candidate whose data is not yet ready loses to a ready one
        # regardless of critical path.
        result = Warren(generic_risc()).schedule_block(block_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            add %o1, 1, %o2
            mov 7, %o5
        """))
        ids = [n.id for n in result.order]
        assert ids.index(3) == 1  # mov covers the load delay

    def test_alternate_type_rank2(self):
        # Two ready candidates with equal timing: Warren prefers the
        # one whose issue class differs from the last scheduled.
        result = Warren(generic_risc()).schedule_block(block_of("""
            add %o0, 1, %o1
            sub %o0, 2, %o2
            faddd %f0, %f2, %f4
            fsubd %f6, %f8, %f10
        """))
        classes = [n.instr.opcode.issue_class.value for n in result.order]
        # Perfect alternation (the starting class falls to the lower-
        # ranked liveness tiebreak).
        assert all(a != b for a, b in zip(classes, classes[1:]))

    def test_uncovered_children_rank5(self):
        # Timing/type/delay all tie; the candidate that uncovers a
        # child wins over one that uncovers none.
        result = Warren(generic_risc()).schedule_block(block_of("""
            mov 1, %o0
            mov 2, %o1
            add %o0, 3, %o2
        """))
        ids = [n.id for n in result.order]
        assert ids.index(0) < ids.index(1)
