"""Tests for the branch delay-slot filler."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.delay_slots import fill_delay_slot
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing


def scheduled(source: str):
    machine = generic_risc()
    block = partition_blocks(parse_asm(source))[0]
    dag = TableForwardBuilder(machine).build(block).dag
    backward_pass(dag)
    result = schedule_forward(dag, machine, winnowing("max_delay_to_leaf"))
    return dag, result.order


class TestFillDelaySlot:
    def test_moves_safe_instruction_after_branch(self):
        dag, order = scheduled("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            st %o1, [%fp-16]
            cmp %o0, 5
            bl loop
        """)
        new_order, filler = fill_delay_slot(order, dag)
        assert filler is not None
        assert new_order[-1] is filler
        assert new_order[-2].instr.opcode.mnemonic == "bl"
        # The store is the natural filler: leaf node, branch-independent.
        assert filler.instr.opcode.mnemonic == "st"

    def test_branch_feeder_not_moved(self):
        dag, order = scheduled("""
            ld [%fp-8], %o0
            cmp %o0, 5
            bl loop
        """)
        new_order, filler = fill_delay_slot(order, dag)
        # Both remaining instructions feed the branch via %icc/%o0.
        assert filler is None
        assert new_order == order

    def test_instruction_with_consumers_not_moved(self):
        dag, order = scheduled("""
            mov 4, %o3
            add %o3, 1, %o4
            cmp %o1, 5
            bl loop
        """)
        new_order, filler = fill_delay_slot(order, dag)
        # mov feeds add, so only add (a leaf, branch-independent) can
        # fill the slot.
        assert filler is not None
        assert filler.instr.opcode.mnemonic == "add"

    def test_annulled_branch_never_filled(self):
        # be,a executes its slot only when taken: filling it would
        # remove the filler from the fall-through path.
        dag, order = scheduled("""
            st %o0, [%fp-8]
            cmp %o1, 5
            be,a loop
        """)
        new_order, filler = fill_delay_slot(order, dag)
        assert filler is None
        assert new_order == order

    def test_non_delayed_terminator_untouched(self):
        dag, order = scheduled("""
            add %i0, %i1, %l0
            mov 1, %l1
            save %sp, -96, %sp
        """)
        new_order, filler = fill_delay_slot(order, dag)
        assert filler is None

    def test_no_terminator(self):
        dag, order = scheduled("mov 1, %o0\nmov 2, %o1")
        new_order, filler = fill_delay_slot(order, dag)
        assert filler is None
        assert new_order == order

    def test_empty_order(self):
        from repro.dag.graph import Dag
        assert fill_delay_slot([], Dag()) == ([], None)

    def test_prefers_latest_legal_instruction(self):
        dag, order = scheduled("""
            st %o0, [%fp-8]
            st %o1, [%fp-12]
            cmp %o2, 5
            bl loop
        """)
        _, filler = fill_delay_slot(order, dag)
        # Both stores are legal; the one nearest the branch moves.
        assert filler.instr.render() == "st %o1, [%i6-12]"
