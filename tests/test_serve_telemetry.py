"""The live telemetry plane: ``metrics`` op, HTTP exposition
endpoint, the S2 health additions, and ``repro top``.

Everything here drives a real in-process daemon (BackgroundServer)
through real sockets; the HTTP endpoint is scraped with a raw socket
client so the test pins the wire format, not an HTTP library's
tolerance.
"""

import io
import json
import socket

import pytest

from repro.errors import ReproError
from repro.obs.expo import parse_exposition
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.protocol import parse_address
from repro.serve.server import BackgroundServer, ServeConfig
from repro.serve.top import poll_ops, render_top, run_top


def _workload_message(rid="r", copies=4, **extra):
    return {"op": "schedule", "id": rid,
            "workload": {"kernel": "daxpy", "copies": copies}, **extra}


class _Client:
    def __init__(self, address):
        kind = parse_address(address)
        if kind[0] == "unix":
            self.sock = socket.socket(socket.AF_UNIX)
            self.sock.connect(kind[1])
        else:
            self.sock = socket.create_connection(kind[1:])
        self.file = self.sock.makefile("rwb")

    def send(self, message):
        self.file.write(protocol.encode(message))
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def stream_until_terminal(self, rid):
        frames = []
        while True:
            frame = self.recv()
            if frame.get("id") != rid:
                continue
            frames.append(frame)
            if frame["type"] in ("done", "rejected", "error"):
                return frames

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()


@pytest.fixture
def server(tmp_path):
    config = ServeConfig(address=f"unix:{tmp_path}/serve.sock",
                         workers=2, max_queued=4, drain_grace_s=5.0,
                         telemetry="127.0.0.1:0")
    background = BackgroundServer(config).start()
    yield background
    if background._thread.is_alive():
        background.drain()


def _http_get(address, path):
    """Raw HTTP/1.1 GET: returns (status, headers, body)."""
    _, host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                     f"Connection: close\r\n\r\n".encode())
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode()


def _run_one(server, rid="tel-1"):
    client = _Client(server.address)
    try:
        client.send(_workload_message(rid))
        return client.stream_until_terminal(rid)
    finally:
        client.close()


class TestMetricsOp:
    def test_metrics_frame_shape(self, server):
        _run_one(server)
        client = _Client(server.address)
        try:
            client.send({"op": "metrics", "id": "m1"})
            frame = client.recv()
        finally:
            client.close()
        assert frame["type"] == "metrics"
        assert frame["content_type"].startswith("text/plain")
        families, samples = parse_exposition(frame["exposition"])
        assert families["repro_requests_total"] == "counter"
        assert frame["window"]["requests"] >= 1
        assert frame["window"]["p50_s"] is not None

    def test_window_tracks_latency_and_queue(self, server):
        for i in range(3):
            _run_one(server, rid=f"tel-w{i}")
        client = _Client(server.address)
        try:
            client.send({"op": "metrics", "id": "m2"})
            window = client.recv()["window"]
        finally:
            client.close()
        assert window["requests"] >= 3
        assert window["ok"] >= 3
        assert window["latency_sum_s"] > 0


class TestHttpEndpoint:
    def test_scrape_parses_with_core_series(self, server):
        _run_one(server)
        address = server.server.bound_telemetry_address()
        assert address is not None
        status, headers, body = _http_get(address, "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        families, samples = parse_exposition(body)
        # core series: cumulative registry + sliding window + server
        assert families["repro_requests_total"] == "counter"
        assert "repro_window_request_p50_seconds" in families
        assert "repro_window_request_p99_seconds" in families
        assert "repro_serve_uptime_seconds" in families
        assert samples["repro_serve_draining"] == 0
        ok_series = [v for k, v in samples.items()
                     if k.startswith("repro_requests_total{")
                     and 'status="ok"' in k]
        assert sum(ok_series) >= 1

    def test_healthz(self, server):
        status, _, body = _http_get(
            server.server.bound_telemetry_address(), "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["type"] == "health"
        assert health["draining"] is False

    def test_unknown_path_404(self, server):
        status, _, _ = _http_get(
            server.server.bound_telemetry_address(), "/nope")
        assert status == 404

    def test_non_loopback_telemetry_bind_refused(self, tmp_path):
        config = ServeConfig(address=f"unix:{tmp_path}/s.sock",
                             telemetry="0.0.0.0:0")
        with pytest.raises(ReproError, match="loopback"):
            BackgroundServer(config).start()

    def test_no_telemetry_no_endpoint(self, tmp_path):
        config = ServeConfig(address=f"unix:{tmp_path}/s.sock")
        background = BackgroundServer(config).start()
        try:
            assert background.server.bound_telemetry_address() is None
        finally:
            background.drain()


class TestHealthDetails:
    """S2: health reports the columnar flag and per-thread caches."""

    def test_columnar_flag_and_cache_threads(self, server):
        _run_one(server)
        client = _Client(server.address)
        try:
            client.send({"op": "health", "id": "h1"})
            health = client.recv()
        finally:
            client.close()
        assert health["columnar"] is False
        threads = health["cache_threads"]
        assert threads, "warm caches should exist after a request"
        for row in threads:
            assert set(row) >= {"thread", "machine", "hits", "misses",
                                "bundle_hits", "entries",
                                "max_entries"}
            assert row["machine"] == "generic"


class TestTop:
    def test_poll_and_render(self, server):
        _run_one(server)
        frames = poll_ops(server.address)
        assert set(frames) == {"health", "stats", "metrics"}
        panel = render_top(frames, server.address)
        assert "repro top" in panel
        assert "serving" in panel
        assert "p50" in panel
        assert "warm caches:" in panel

    def test_run_top_once(self, server):
        out = io.StringIO()
        run_top(server.address, once=True, out=out)
        assert "repro top" in out.getvalue()

    def test_render_is_pure_and_total(self):
        # Renders a panel even from empty frames (daemon mid-start).
        panel = render_top({}, "unix:x.sock")
        assert "repro top" in panel

    def test_unreachable_daemon_is_typed_error(self, tmp_path):
        with pytest.raises(ReproError, match="connect"):
            poll_ops(f"unix:{tmp_path}/absent.sock")
