"""The bench-trajectory regression gate: ``compare_bench`` policy
plus the ``repro bench --compare`` / ``--out`` CLI surface.

Policy under test (docs/observability.md): deterministic counters
must match *exactly* -- any drift is a correctness or work regression
by definition -- while wall-clock fields are noise-aware, gating only
at ``--wall-ratio`` and only above a 10ms floor.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.runner.bench import (
    DEFAULT_BENCH_PATH,
    MIN_GATED_WALL_S,
    compare_bench,
    load_bench,
    render_compare,
)


def sample_doc(**overrides):
    doc = {
        "version": 3,
        "machine": "sparc",
        "quick": True,
        "workload": {"kernels": ["daxpy"], "copies": 2,
                     "window": 16, "n_blocks": 2,
                     "n_instructions": 40},
        "builders": {
            "n2": {"comparisons": 100, "table_probes": 0,
                   "alias_checks": 10, "arcs_added": 30,
                   "arcs_merged": 5, "arcs_suppressed": 0,
                   "bitmap_ops": 0, "build_s": 0.5},
            "bitmap-backward": {"comparisons": 40, "table_probes": 20,
                                "alias_checks": 10, "arcs_added": 30,
                                "arcs_merged": 5, "arcs_suppressed": 2,
                                "bitmap_ops": 8, "build_s": 0.2,
                                "bitmap_words_touched": 64},
        },
        "heuristics": {"incremental": {"arcs_repaired": 4,
                                       "repair_s": 0.02}},
        "batch": {"baseline_s": 0.9, "cached_s": 0.6,
                  "parallel_s": None, "reduction_fraction": 0.33,
                  "schedules_identical": True,
                  "build_counters": {"comparisons": 140}},
        "timing_note": "min of 1",
    }
    doc.update(overrides)
    return doc


class TestPolicy:
    def test_identical_docs_pass(self):
        result = compare_bench(sample_doc(), sample_doc())
        assert result["ok"] is True
        assert result["counter_mismatches"] == []
        assert result["wall_regressions"] == []
        assert result["compared_counters"] > 0

    def test_counter_drift_fails_exactly(self):
        new = sample_doc()
        new["builders"]["n2"]["comparisons"] = 101  # off by one
        result = compare_bench(sample_doc(), new)
        assert result["ok"] is False
        (miss,) = result["counter_mismatches"]
        assert miss["field"] == "builders.n2.comparisons"
        assert (miss["old"], miss["new"]) == (100, 101)

    def test_wall_regression_gated_by_ratio(self):
        new = sample_doc()
        new["batch"]["baseline_s"] = 0.9 * 2.5
        assert compare_bench(sample_doc(), new,
                             wall_ratio=2.0)["ok"] is False
        assert compare_bench(sample_doc(), new,
                             wall_ratio=3.0)["ok"] is True

    def test_tiny_walls_never_gate(self):
        old, new = sample_doc(), sample_doc()
        old["heuristics"]["incremental"]["repair_s"] = \
            MIN_GATED_WALL_S / 10
        new["heuristics"]["incremental"]["repair_s"] = \
            MIN_GATED_WALL_S * 5  # 50x, but below the floor
        result = compare_bench(old, new)
        assert result["ok"] is True
        assert "heuristics.incremental.repair_s" \
            in result["skipped_walls"]

    def test_wall_improvement_passes(self):
        new = sample_doc()
        new["batch"]["baseline_s"] = 0.1
        assert compare_bench(sample_doc(), new)["ok"] is True

    def test_config_mismatch_is_typed_error(self):
        with pytest.raises(ReproError, match="machine"):
            compare_bench(sample_doc(),
                          sample_doc(machine="rs6000"))
        with pytest.raises(ReproError, match="quick"):
            compare_bench(sample_doc(), sample_doc(quick=False))

    def test_one_sided_fpppp_skipped(self):
        # fpppp timings only exist on hosts that ran the full bench;
        # a missing section is host config, not a regression.
        old = sample_doc(fpppp={"n_blocks": 3, "build_s": 0.4,
                                "comparisons": 999})
        result = compare_bench(old, sample_doc())
        assert result["ok"] is True

    def test_render_compare_mentions_verdict(self):
        ok = compare_bench(sample_doc(), sample_doc())
        text = render_compare(ok, "a.json", "b.json", 2.0)
        assert "OK" in text
        new = sample_doc()
        new["builders"]["n2"]["comparisons"] = 1
        bad = compare_bench(sample_doc(), new)
        text = render_compare(bad, "a.json", "b.json", 2.0)
        assert "REGRESSION" in text
        assert "builders.n2.comparisons" in text


class TestLoadBench:
    def test_load_rejects_garbage(self, tmp_path):
        missing = tmp_path / "missing.json"
        with pytest.raises(ReproError):
            load_bench(str(missing))
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ReproError):
            load_bench(str(bad))

    def test_round_trip(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(sample_doc()))
        assert load_bench(str(path))["machine"] == "sparc"


class TestCLI:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_compare_two_files_exit_codes(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", sample_doc())
        same = self.write(tmp_path, "same.json", sample_doc())
        assert main(["bench", "--compare", old, same]) == 0
        regressed = copy.deepcopy(sample_doc())
        regressed["builders"]["n2"]["comparisons"] *= 2
        new = self.write(tmp_path, "new.json", regressed)
        assert main(["bench", "--compare", old, new]) == 1

    def test_compare_config_mismatch_exits_2(self, tmp_path):
        old = self.write(tmp_path, "old.json", sample_doc())
        other = self.write(tmp_path, "other.json",
                           sample_doc(machine="rs6000"))
        assert main(["bench", "--compare", old, other]) == 2

    def test_too_many_compare_paths_rejected(self, tmp_path):
        paths = [self.write(tmp_path, f"d{i}.json", sample_doc())
                 for i in range(3)]
        assert main(["bench", "--compare", *paths]) == 2

    def test_default_out_is_versioned(self):
        assert DEFAULT_BENCH_PATH == "BENCH_v3.json"

    def test_run_write_then_self_compare(self, tmp_path):
        # The acceptance loop: a quick run gates cleanly against its
        # own output (exit 0), via --out and single-path --compare.
        out_path = str(tmp_path / "fresh.json")
        assert main(["bench", "--quick", "--jobs", "1",
                     "--machine", "generic",
                     "--out", out_path]) == 0
        assert main(["bench", "--quick", "--jobs", "1",
                     "--machine", "generic",
                     "--out", str(tmp_path / "fresh2.json"),
                     "--compare", out_path]) == 0
