"""Extended interpreter semantics: the remaining opcode behaviours and
the C-semantics guarantees the mini-C compiler relies on."""

import math

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.interp import MachineState, execute
from repro.minic import compile_to_program


def run(source: str, state: MachineState | None = None) -> MachineState:
    return execute(parse_asm(source).instructions,
                   state or MachineState())


def run_minic(source: str, ints: dict[str, int] | None = None
              ) -> MachineState:
    program = compile_to_program(source)
    state = MachineState()
    # Pre-store initial variable values.
    from repro.interp import assign_symbols
    assign_symbols(state, program.instructions)
    for name, value in (ints or {}).items():
        state.store_bytes(state.symbols[name], 4, value & 0xFFFFFFFF)
    return execute(program.instructions, state)


def minic_int(state: MachineState, name: str) -> int:
    value = state.load_bytes(state.symbols[name], 4)
    return value - (1 << 32) if value >= (1 << 31) else value


class TestRemainingAluOps:
    def test_andn_orn_xnor(self):
        state = run("""
            mov 12, %o0
            mov 10, %o1
            andn %o0, %o1, %o2
            orn %o0, %o1, %o3
            xnor %o0, %o1, %o4
        """)
        assert state.read_int("%o2") == 12 & ~10 & 0xFFFFFFFF
        assert state.read_int("%o3") == (12 | ~10) & 0xFFFFFFFF
        assert state.read_int("%o4") == ~(12 ^ 10) & 0xFFFFFFFF

    def test_tagged_arithmetic(self):
        state = run("mov 8, %o0\ntaddcc %o0, 4, %o1\ntsubcc %o1, 2, %o2")
        assert state.read_int("%o1") == 12
        assert state.read_int("%o2") == 10

    def test_umul(self):
        state = MachineState()
        state.write_int("%o0", 0xFFFFFFFF)
        out = run("umul %o0, %o0, %o1\nrd %y, %o2", state)
        product = 0xFFFFFFFF * 0xFFFFFFFF
        assert out.read_int("%o1") == product & 0xFFFFFFFF
        assert out.read_int("%o2") == product >> 32

    def test_udiv(self):
        state = MachineState()
        state.write_int("%o0", 0xFFFFFFFE)
        out = run("udiv %o0, 2, %o1", state)
        assert out.read_int("%o1") == 0x7FFFFFFF

    def test_sdiv_truncates_toward_zero(self):
        # C semantics: -7 / 2 == -3 (not floor -4).
        state = run("mov -7, %o0\nsdiv %o0, 2, %o1")
        assert state.read_int("%o1") == 0xFFFFFFFF & -3

    def test_mulscc_deterministic(self):
        a = run("mov 5, %o0\nmov 3, %o1\nmulscc %o0, %o1, %o2").snapshot()
        b = run("mov 5, %o0\nmov 3, %o1\nmulscc %o0, %o1, %o2").snapshot()
        assert a == b


class TestRemainingFpOps:
    def test_fsqrtd(self):
        state = MachineState()
        state.write_double("%f0", 16.0)
        out = run("fsqrtd %f0, %f2", state)
        assert out.read_double("%f2") == 4.0

    def test_fsqrt_negative_uses_abs(self):
        state = MachineState()
        state.write_double("%f0", -9.0)
        out = run("fsqrtd %f0, %f2", state)
        assert out.read_double("%f2") == 3.0

    def test_fstoi(self):
        state = MachineState()
        state.write_single("%f1", -2.75)
        out = run("fstoi %f1, %f2", state)
        assert out.read_fp_word("%f2") == 0xFFFFFFFF & -2

    def test_fdtoi_clamps(self):
        state = MachineState()
        state.write_double("%f0", 1e300)
        out = run("fdtoi %f0, %f2", state)
        assert out.read_fp_word("%f2") == (1 << 31) - 1

    def test_fcmps_orders(self):
        state = MachineState()
        state.write_single("%f1", 5.0)
        state.write_single("%f2", 3.0)
        out = run("fcmps %f1, %f2", state)
        assert out.fcc == 2  # greater


class TestBranchConditionMatrix:
    @pytest.mark.parametrize("setup,branch,taken", [
        ("mov 5, %o0\ncmp %o0, 5", "be", True),
        ("mov 5, %o0\ncmp %o0, 5", "bne", False),
        ("mov 3, %o0\ncmp %o0, 5", "bl", True),
        ("mov 7, %o0\ncmp %o0, 5", "bg", True),
        ("mov 5, %o0\ncmp %o0, 5", "bge", True),
        ("mov 5, %o0\ncmp %o0, 5", "ble", True),
        ("mov 3, %o0\ncmp %o0, 5", "bcs", True),   # borrow = carry
        ("mov 7, %o0\ncmp %o0, 5", "bcc", True),
        ("mov -1, %o0\ncmp %o0, 0", "bneg", True),
        ("mov 1, %o0\ncmp %o0, 0", "bpos", True),
        ("mov 3, %o0\ncmp %o0, 5", "bgu", False),
        ("mov 7, %o0\ncmp %o0, 5", "bleu", False),
    ])
    def test_condition(self, setup, branch, taken):
        from repro.interp import UnsupportedInstruction
        source = f"{setup}\n{branch} away\nnop"
        if taken:
            with pytest.raises(UnsupportedInstruction):
                run(source)
        else:
            run(source)  # falls through quietly


class TestMinicCSemantics:
    def test_remainder_matches_c(self):
        # C: -5 % 7 == -5 (remainder has the dividend's sign).
        state = run_minic("int i, j; j = i % 7;", ints={"i": -5})
        assert minic_int(state, "j") == -5

    def test_division_matches_c(self):
        state = run_minic("int i, j; j = i / 3;", ints={"i": -7})
        assert minic_int(state, "j") == -2

    def test_shift_mask_pipeline(self):
        state = run_minic("int i, j; j = (i << 4 & 255) >> 2;",
                          ints={"i": 0x3F})
        assert minic_int(state, "j") == ((0x3F << 4) & 255) >> 2

    def test_double_expression_value(self):
        state = run_minic("double x; int i; x = (i + 1) * 2.5;",
                          ints={"i": 3})
        address = state.symbols["x"]
        import struct
        raw = state.load_bytes(address, 8)
        value = struct.unpack(">d", raw.to_bytes(8, "big"))[0]
        assert value == 10.0

    def test_array_store_lands_at_scaled_offset(self):
        state = run_minic("int v[8], i; v[i] = 99;", ints={"i": 3})
        assert state.load_bytes(state.symbols["v"] + 12, 4) == 99

    def test_negation(self):
        state = run_minic("int i, j; j = -i;", ints={"i": 17})
        assert minic_int(state, "j") == -17

    def test_large_constant(self):
        state = run_minic("int j; j = 1000000;")
        assert minic_int(state, "j") == 1000000
