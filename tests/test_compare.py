"""Tests for the paper-vs-measured shape comparison helpers."""

import pytest

from repro.analysis.compare import (
    comparison_rows,
    log_ratio_spread,
    rank_correlation,
)


class TestRankCorrelation:
    def test_identical_ordering(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) \
            == pytest.approx(1.0)

    def test_reversed_ordering(self):
        assert rank_correlation([1, 2, 3, 4], [40, 30, 20, 10]) \
            == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        a = [1, 5, 2, 9, 3]
        b = [x ** 3 for x in a]
        assert rank_correlation(a, b) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rank_correlation([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            rank_correlation([1, 2], [2, 1])


class TestLogRatioSpread:
    def test_constant_factor_is_zero(self):
        assert log_ratio_spread([2, 4, 6], [1, 2, 3]) \
            == pytest.approx(0.0)

    def test_varying_factor_positive(self):
        assert log_ratio_spread([1, 20, 3], [1, 2, 3]) > 0.3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_ratio_spread([0, 1], [1, 1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            log_ratio_spread([1], [1, 2])


class TestComparisonRows:
    def test_rows_in_paper_order(self):
        rows = comparison_rows({"a": 2.0, "b": 3.0}, {"b": 1.0, "a": 1.0})
        assert [r["item"] for r in rows] == ["b", "a"]
        assert rows[0]["ratio"] == 3.0

    def test_missing_measured_items_skipped(self):
        rows = comparison_rows({"a": 2.0}, {"a": 1.0, "b": 5.0})
        assert len(rows) == 1

    def test_zero_paper_value(self):
        rows = comparison_rows({"a": 2.0}, {"a": 0.0})
        assert rows[0]["ratio"] == float("inf")


class TestPaperTablesShape:
    """The actual shape checks against the embedded paper columns,
    using the library's own measurements (small scale for speed)."""

    def test_table5_arc_density_ordering_matches_paper(self):
        from repro.dag.builders import TableForwardBuilder
        from repro.machine import sparcstation2_like
        from repro.pipeline import run_pipeline
        from repro.workloads import generate_blocks, scaled_profile

        machine = sparcstation2_like()
        paper_arcs_avg = {"grep": 1.23, "linpack": 8.88, "lloops": 15.29,
                          "tomcatv": 26.14}
        measured = {}
        for name in paper_arcs_avg:
            blocks = generate_blocks(scaled_profile(name, 0.2))
            r = run_pipeline(blocks, machine,
                             lambda: TableForwardBuilder(machine),
                             schedule=False)
            measured[name] = r.dag_stats.avg_arcs_per_block
        names = list(paper_arcs_avg)
        rho = rank_correlation([measured[n] for n in names],
                               [paper_arcs_avg[n] for n in names])
        assert rho == pytest.approx(1.0)
        spread = log_ratio_spread([measured[n] for n in names],
                                  [paper_arcs_avg[n] for n in names])
        assert spread < 0.35
