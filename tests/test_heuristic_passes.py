"""Tests for the intermediate heuristic-calculation passes (section 4)."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableBackwardBuilder, TableForwardBuilder
from repro.dag.forest import attach_dummy_leaf, attach_dummy_root
from repro.heuristics.passes import (
    backward_pass,
    backward_pass_levels,
    compute_levels,
    forward_pass,
)
from repro.heuristics.critical_path import (
    critical_path_length,
    critical_path_nodes,
)
from repro.machine import generic_risc
from repro.workloads import kernel_source


def build_dag(source: str):
    blocks = partition_blocks(parse_asm(source))
    return TableForwardBuilder(generic_risc()).build(blocks[0]).dag


@pytest.fixture
def fig1():
    dag = build_dag(kernel_source("figure1"))
    return dag


class TestForwardPass:
    def test_figure1_values(self, fig1):
        forward_pass(fig1)
        n = fig1.nodes
        assert [x.max_path_from_root for x in n] == [0, 1, 2]
        assert [x.max_delay_from_root for x in n] == [0, 1, 20]
        assert [x.est for x in n] == [0, 1, 20]

    def test_roots_are_zero(self, fig1):
        forward_pass(fig1)
        assert fig1.nodes[0].est == 0
        assert fig1.nodes[0].max_path_from_root == 0

    def test_est_uses_arc_delays_not_path_length(self):
        dag = build_dag("fdivd %f0, %f2, %f4\nfaddd %f4, %f6, %f8")
        forward_pass(dag)
        assert dag.nodes[1].est == 20

    def test_rerun_is_idempotent(self, fig1):
        forward_pass(fig1)
        first = [n.est for n in fig1.nodes]
        forward_pass(fig1)
        assert [n.est for n in fig1.nodes] == first


class TestBackwardPass:
    def test_figure1_values(self, fig1):
        backward_pass(fig1)
        n = fig1.nodes
        assert [x.max_path_to_leaf for x in n] == [2, 1, 0]
        assert [x.max_delay_to_leaf for x in n] == [20, 4, 0]

    def test_lst_and_slack(self, fig1):
        backward_pass(fig1)
        n = fig1.nodes
        # Critical length = est(2) + exec(2) = 24.
        assert [x.lst for x in n] == [0, 16, 20]
        assert [x.slack for x in n] == [0, 15, 0]

    def test_critical_path_nodes(self, fig1):
        backward_pass(fig1)
        assert [x.id for x in critical_path_nodes(fig1)] == [0, 2]

    def test_critical_path_length(self, fig1):
        backward_pass(fig1)
        assert critical_path_length(fig1) == 24

    def test_slack_nonnegative(self):
        dag = build_dag(kernel_source("daxpy"))
        backward_pass(dag)
        assert all(n.slack >= 0 for n in dag.nodes)

    def test_auto_runs_forward_pass(self, fig1):
        # require_est=True (default) triggers the forward pass.
        backward_pass(fig1)
        assert fig1.nodes[2].est == 20

    def test_descendants_computed_on_request(self, fig1):
        backward_pass(fig1, descendants=True)
        assert [n.n_descendants for n in fig1.nodes] == [2, 1, 0]

    def test_sum_exec_descendants(self, fig1):
        backward_pass(fig1, descendants=True)
        # Node 0's descendants are the two 4-cycle adds.
        assert fig1.nodes[0].sum_exec_descendants == 8
        assert fig1.nodes[1].sum_exec_descendants == 4

    def test_descendants_skipped_by_default(self, fig1):
        backward_pass(fig1)
        assert all(n.n_descendants == 0 for n in fig1.nodes)


class TestLevels:
    def test_figure1_levels(self, fig1):
        levels = compute_levels(fig1)
        assert [[n.id for n in lvl] for lvl in levels] == [[0], [1], [2]]

    def test_forest_levels(self):
        dag = build_dag("mov 1, %o0\nmov 2, %o1\nadd %o0, %o1, %o2")
        levels = compute_levels(dag)
        assert [[n.id for n in lvl] for lvl in levels] == [[0, 1], [2]]

    def test_levels_with_dummies(self, fig1):
        attach_dummy_root(fig1)
        attach_dummy_leaf(fig1)
        levels = compute_levels(fig1)
        assert fig1.dummy_root.level == 0
        assert fig1.dummy_leaf.level == len(levels) - 1


class TestDriverEquivalence:
    """Paper conclusion 4: the level algorithm computes nothing the
    reverse walk does not."""

    @pytest.mark.parametrize("kernel", ["figure1", "daxpy", "livermore1",
                                        "dot_product"])
    def test_levels_equals_reverse_walk(self, kernel):
        machine = generic_risc()
        blocks = partition_blocks(parse_asm(kernel_source(kernel)))
        a = TableForwardBuilder(machine).build(blocks[0]).dag
        b = TableForwardBuilder(machine).build(blocks[0]).dag
        backward_pass(a, descendants=True)
        backward_pass_levels(b, descendants=True)
        for na, nb in zip(a.nodes, b.nodes):
            assert na.max_path_to_leaf == nb.max_path_to_leaf
            assert na.max_delay_to_leaf == nb.max_delay_to_leaf
            assert na.lst == nb.lst
            assert na.slack == nb.slack
            assert na.n_descendants == nb.n_descendants
            assert na.sum_exec_descendants == nb.sum_exec_descendants

    def test_direction_of_construction_does_not_matter(self):
        # The intermediate pass gives identical results on the forward-
        # and backward-built DAGs (their arc sets agree).
        machine = generic_risc()
        blocks = partition_blocks(parse_asm(kernel_source("livermore1")))
        fw = TableForwardBuilder(machine).build(blocks[0]).dag
        bw = TableBackwardBuilder(machine).build(blocks[0]).dag
        backward_pass(fw)
        backward_pass(bw)
        for a, b in zip(fw.nodes, bw.nodes):
            assert a.max_delay_to_leaf == b.max_delay_to_leaf
