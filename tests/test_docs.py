"""Documentation integrity tests."""

import pathlib
import re
import subprocess
import sys

DOCS = pathlib.Path(__file__).parent.parent / "docs"
ROOT = pathlib.Path(__file__).parent.parent


class TestApiReference:
    def test_generator_runs(self, tmp_path, monkeypatch):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "gen_api", DOCS / "gen_api.py")
        gen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gen)
        monkeypatch.setattr(gen, "OUT", tmp_path / "api.md")
        gen.main()
        text = (tmp_path / "api.md").read_text()
        for key in ("schedule_forward", "TableForwardBuilder",
                    "backward_pass", "may_alias", "Heuristic",
                    "branch_and_bound_schedule"):
            assert key in text, key

    def test_committed_api_reference_exists(self):
        text = (DOCS / "api.md").read_text()
        assert "API reference" in text
        assert "repro.dag.builders.table_backward" in text

    def test_every_module_in_generator_list_imports(self):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "gen_api", DOCS / "gen_api.py")
        gen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gen)
        import importlib as il
        for module_name in gen.MODULES:
            assert il.import_module(module_name) is not None


class TestCrossReferences:
    def test_paper_mapping_mentions_every_builder(self):
        text = (DOCS / "paper_mapping.md").read_text()
        for name in ("CompareAllBuilder", "LandskovBuilder",
                     "TableForwardBuilder", "TableBackwardBuilder",
                     "BitmapBackwardBuilder"):
            assert name in text

    def test_readme_bench_table_matches_files(self):
        readme = (ROOT / "README.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in readme, bench.name

    def test_experiments_covers_every_table(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for anchor in ("Table 1", "Table 2", "Table 3", "Table 4",
                       "Table 5", "Figure 1", "Conclusion 4",
                       "Conclusion 6", "Future work 1", "Future work 3"):
            assert anchor in text, anchor

    def test_design_lists_every_experiment_bench(self):
        text = (ROOT / "DESIGN.md").read_text()
        for bench in ("bench_table3_structure", "bench_table4_n2",
                      "bench_table5_table_building",
                      "bench_figure1_transitive", "bench_scaling_sweep",
                      "bench_heuristic_pass", "bench_direction_pairing",
                      "bench_branch_and_bound"):
            assert bench in text, bench

    def test_tutorial_code_mentions_current_api(self):
        text = (DOCS / "tutorial.md").read_text()
        import repro
        for name in re.findall(r"from repro import ([\w, ]+)", text):
            for symbol in [s.strip() for s in name.split(",")]:
                assert hasattr(repro, symbol), symbol
