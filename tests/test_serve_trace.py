"""End-to-end request tracing: client-minted ids through frames,
spans, WAL records, dedup replay, and quarantine.

The contract (docs/observability.md): a ``trace`` id minted at the
client rides every frame the daemon emits for that request, lands in
the WAL and in every block record, tags the request's span tree, and
-- the subtle case -- a dedup replay echoes the *original* request's
trace id, because the replayed frames are the original execution's.
"""

import json
import socket

import pytest

from repro.errors import ProtocolError
from repro.machine.presets import generic_risc
from repro.obs import Tracer, span_tree
from repro.runner.chaos import ChaosConfig, RetryPolicy
from repro.runner.fallback import BlockOutcome
from repro.serve import protocol
from repro.serve.engine import request_blocks, run_request
from repro.serve.protocol import ScheduleRequest, parse_address
from repro.serve.server import BackgroundServer, ServeConfig
from repro.serve.wal import WriteAheadLog


def _message(rid="r", copies=4, **extra):
    return {"op": "schedule", "id": rid,
            "workload": {"kernel": "daxpy", "copies": copies}, **extra}


class _Client:
    def __init__(self, address):
        kind = parse_address(address)
        if kind[0] == "unix":
            self.sock = socket.socket(socket.AF_UNIX)
            self.sock.connect(kind[1])
        else:
            self.sock = socket.create_connection(kind[1:])
        self.file = self.sock.makefile("rwb")

    def send(self, message):
        self.file.write(protocol.encode(message))
        self.file.flush()

    def stream_until_terminal(self, rid):
        frames = []
        while True:
            line = self.file.readline()
            assert line, "server closed the connection unexpectedly"
            frame = json.loads(line)
            if frame.get("id") != rid:
                continue
            frames.append(frame)
            if frame["type"] in ("done", "rejected", "error"):
                return frames

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()


class TestProtocolTrace:
    def test_trace_accepted_and_optional(self):
        request = ScheduleRequest.from_message(
            _message(trace="trace-1"))
        assert request.trace == "trace-1"
        assert ScheduleRequest.from_message(_message()).trace is None

    def test_trace_validation(self):
        with pytest.raises(ProtocolError, match="trace"):
            ScheduleRequest.from_message(_message(trace=""))
        with pytest.raises(ProtocolError, match="trace"):
            ScheduleRequest.from_message(_message(trace=17))
        with pytest.raises(ProtocolError, match="trace"):
            ScheduleRequest.from_message(
                _message(trace="x" * (protocol.MAX_TRACE_CHARS + 1)))

    def test_frames_omit_trace_when_unset(self):
        # Tracing must not change the wire format for untraced
        # clients: no `trace` key at all, not `trace: null`.
        assert "trace" not in protocol.done_frame("r", {})
        assert "trace" in protocol.done_frame("r", {}, trace="t")


class TestEngineTrace:
    def run(self, request, **kwargs):
        machine = generic_risc()
        blocks = request_blocks(request)
        frames = []
        summary = run_request(request, machine, blocks, frames.append,
                              **kwargs)
        return frames, summary

    def test_block_frames_and_records_stamped(self):
        request = ScheduleRequest.from_message(
            _message(trace="eng-t1"))
        frames, _ = self.run(request)
        blocks = [f for f in frames if f["type"] == "block"]
        assert blocks
        for frame in blocks:
            assert frame["trace"] == "eng-t1"
            assert frame["block"]["trace"] == "eng-t1"

    def test_untraced_records_unchanged(self):
        request = ScheduleRequest.from_message(_message())
        frames, _ = self.run(request)
        for frame in frames:
            assert "trace" not in frame
            if frame["type"] == "block":
                assert "trace" not in frame["block"]

    def test_quarantined_block_keeps_trace(self):
        # A poisoned block crashes every attempt and is quarantined;
        # its block frame must still carry the request's trace id.
        request = ScheduleRequest.from_message(
            _message(trace="quarantine-t"))
        frames, summary = self.run(
            request, jobs=2,
            chaos=ChaosConfig(seed=4, poison=frozenset({0})),
            retry=RetryPolicy(max_retries=1, base_delay=0.01))
        assert summary["quarantined"] == 1
        quarantined = [f for f in frames if f["type"] == "block"
                       and f["block"].get("type") == "quarantined"]
        assert quarantined
        for frame in quarantined:
            assert frame["trace"] == "quarantine-t"
            assert frame["block"]["trace"] == "quarantine-t"

    def test_request_span_carries_trace(self):
        tracer = Tracer()
        request = ScheduleRequest.from_message(
            _message(rid="span-r", trace="span-t"))
        self.run(request, tracer=tracer)
        tree = span_tree(tracer.entries)
        roots = [node for node in tree if node["name"] == "request"]
        assert len(roots) == 1
        assert roots[0]["attrs"]["trace"] == "span-t"
        assert roots[0]["attrs"]["id"] == "span-r"
        assert any(child["name"] == "block"
                   for child in roots[0]["children"])


class TestDaemonTrace:
    @pytest.fixture
    def server(self, tmp_path):
        config = ServeConfig(address=f"unix:{tmp_path}/serve.sock",
                             workers=2, max_queued=4,
                             drain_grace_s=5.0,
                             wal_dir=str(tmp_path / "wal"))
        background = BackgroundServer(config, tracer=Tracer()).start()
        yield background
        if background._thread.is_alive():
            background.drain()

    def test_every_frame_echoes_the_trace(self, server):
        client = _Client(server.address)
        try:
            client.send(_message(rid="d1", key="K1", trace="tr-d1"))
            frames = client.stream_until_terminal("d1")
        finally:
            client.close()
        assert frames[-1]["type"] == "done"
        for frame in frames:
            assert frame["trace"] == "tr-d1", frame

    def test_trace_lands_in_the_wal(self, server, tmp_path):
        client = _Client(server.address)
        try:
            client.send(_message(rid="d2", key="K2", trace="tr-wal"))
            frames = client.stream_until_terminal("d2")
        finally:
            client.close()
        assert frames[-1]["type"] == "done"
        server.drain()
        _, recovery = WriteAheadLog.open(
            str(tmp_path / "wal" / "serve.wal"))
        entry = recovery.finished["K2"]
        assert entry["request"]["trace"] == "tr-wal"
        assert entry["blocks"], "WAL should hold the block records"
        for record in entry["blocks"].values():
            assert record["trace"] == "tr-wal"

    def test_dedup_replay_echoes_original_trace(self, server):
        client = _Client(server.address)
        try:
            client.send(_message(rid="d3", key="K3",
                                 trace="tr-original"))
            first = client.stream_until_terminal("d3")
            # Same idempotency key, new id, *different* trace: the
            # replayed frames are the original execution's, so they
            # echo the original trace id, not the resend's.
            client.send(_message(rid="d3-retry", key="K3",
                                 trace="tr-resend"))
            replay = client.stream_until_terminal("d3-retry")
        finally:
            client.close()
        assert first[-1]["type"] == "done"
        assert replay[-1]["type"] == "done"
        assert replay[-1]["deduped"] is True
        for frame in replay:
            assert frame["trace"] == "tr-original", frame

    def test_server_absorbs_request_spans(self, server):
        client = _Client(server.address)
        try:
            client.send(_message(rid="d4", key="K4", trace="tr-span"))
            client.stream_until_terminal("d4")
        finally:
            client.close()
        entries = server.server.tracer.entries
        tree = span_tree(entries)
        roots = [n for n in tree if n["name"] == "request"]
        assert any(n["attrs"].get("trace") == "tr-span"
                   for n in roots)


class TestJournalCompatibility:
    """S4: pre-trace (v1-era) records must keep parsing."""

    def record(self, **extra):
        return {"type": "scheduled", "index": 0, "label": "b0",
                "builder": "n2", "order": [0, 1],
                "makespan": 2, "original_makespan": 2, **extra}

    def test_record_without_trace_parses(self):
        outcome = BlockOutcome.from_record(self.record())
        assert outcome.index == 0
        assert outcome.order == [0, 1]

    def test_record_with_trace_parses_identically(self):
        # from_record tolerates (and strips) the stamped field, so a
        # v2 journal replays to the same outcome as a v1 one.
        plain = BlockOutcome.from_record(self.record())
        stamped = BlockOutcome.from_record(self.record(trace="t-x"))
        assert plain.to_record() == stamped.to_record()
        assert "trace" not in stamped.to_record()
