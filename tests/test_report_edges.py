"""Edge cases for the report types: empty programs and all-degraded runs.

Every ratio-bearing report (``TransformReport``, ``PipelineResult``,
``BatchResult``) must answer 0.0 degraded fraction on empty input and
exactly 1.0 speedup when nothing was actually scheduled -- no
division-by-zero, no NaN, no charging degraded blocks to one side only.
"""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.errors import ReproError
from repro.machine import generic_risc
from repro.pipeline import PipelineResult, run_pipeline
from repro.runner import BatchResult
from repro.transform import TransformReport, schedule_program
from repro.workloads import kernel_source


class _AlwaysBroken:
    name = "broken"

    def __init__(self, *args, **kwargs):
        pass

    def build(self, block, stats=None):
        raise ReproError("deliberately broken")


class TestTransformReport:
    def test_empty_report_properties(self):
        report = TransformReport()
        assert report.degraded_fraction == 0.0
        assert report.speedup == 1.0

    def test_all_degraded_program_speedup_exactly_one(self):
        program = parse_asm(kernel_source("daxpy"), "daxpy")
        scheduled, report = schedule_program(
            program, generic_risc(), builder_factory=_AlwaysBroken)
        assert report.n_blocks > 0
        assert report.degraded_fraction == 1.0
        assert report.speedup == 1.0
        # Degraded blocks are emitted in their original order.
        assert [i.render() for i in scheduled.instructions] \
            == [i.render() for i in program.instructions]

    def test_empty_program(self):
        scheduled, report = schedule_program(parse_asm(""),
                                             generic_risc())
        assert report.n_blocks == 0
        assert report.degraded_fraction == 0.0
        assert report.speedup == 1.0


class TestPipelineResult:
    def test_empty_result_properties(self):
        result = PipelineResult(approach="x")
        assert result.degraded_fraction == 0.0
        assert result.speedup == 1.0

    def test_empty_blocks_run(self):
        result = run_pipeline([], generic_risc(), _AlwaysBroken)
        assert result.n_blocks == 0
        assert result.speedup == 1.0

    def test_all_degraded_run(self):
        blocks = partition_blocks(
            parse_asm(kernel_source("daxpy"), "daxpy"))
        result = run_pipeline(blocks, generic_risc(), _AlwaysBroken)
        assert result.n_blocks > 0
        assert result.degraded_fraction == 1.0
        assert result.speedup == 1.0


class TestBatchResult:
    def test_empty_result_properties(self):
        result = BatchResult(chain=("n2",))
        assert result.degraded_fraction == 0.0
        assert result.speedup == 1.0
        assert result.wasted_work == 0
