"""Tests for the pipeline timing simulator."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.errors import SchedulingError
from repro.machine import generic_risc, sparcstation2_like, superscalar2
from repro.scheduling.timing import simulate, verify_order
from repro.workloads import kernel_source


def dag_of(source: str, machine=None):
    machine = machine or generic_risc()
    blocks = partition_blocks(parse_asm(source))
    return TableForwardBuilder(machine).build(blocks[0]).dag


class TestSimulate:
    def test_independent_scalar_stream(self):
        dag = dag_of("mov 1, %o0\nmov 2, %o1\nmov 3, %o2")
        t = simulate(list(dag.nodes), generic_risc())
        assert t.issue_times == (0, 1, 2)
        assert t.makespan == 3
        assert t.stall_cycles == 0

    def test_dependence_stall(self):
        dag = dag_of("ld [%fp-8], %o0\nadd %o0, 1, %o1")
        t = simulate(list(dag.nodes), generic_risc())
        assert t.issue_times == (0, 2)  # load latency 2
        assert t.stall_cycles == 1

    def test_figure1_original_order(self):
        dag = dag_of(kernel_source("figure1"))
        t = simulate(list(dag.nodes), generic_risc())
        # DIVF@0; ADDF2 (WAR 1) @1; ADDF3 waits RAW 20 from DIVF @20.
        assert t.issue_times == (0, 1, 20)
        assert t.makespan == 24

    def test_issue_times_respect_all_arcs(self):
        dag = dag_of(kernel_source("daxpy"))
        order = list(dag.real_nodes())
        t = simulate(order, generic_risc())
        pos = {n.id: i for i, n in enumerate(order)}
        for node in order:
            for arc in node.out_arcs:
                if arc.child.is_dummy:
                    continue
                assert t.issue_times[pos[arc.child.id]] >= \
                    t.issue_times[pos[node.id]] + arc.delay

    def test_unpipelined_unit_blocks(self):
        machine = sparcstation2_like()
        dag = dag_of("fdivd %f0, %f2, %f4\nfdivd %f6, %f8, %f10", machine)
        t = simulate(list(dag.nodes), machine)
        # Second divide waits for the unpipelined divider (24 cycles).
        assert t.issue_times[1] == 24

    def test_units_can_be_ignored(self):
        machine = sparcstation2_like()
        dag = dag_of("fdivd %f0, %f2, %f4\nfdivd %f6, %f8, %f10", machine)
        t = simulate(list(dag.nodes), machine, consider_units=False)
        assert t.issue_times[1] == 1

    def test_superscalar_dual_issue(self):
        machine = superscalar2()
        dag = dag_of("mov 1, %o0\nmov 2, %o1\nmov 3, %o2\nmov 4, %o3",
                     machine)
        t = simulate(list(dag.nodes), machine)
        assert t.issue_times == (0, 0, 1, 1)

    def test_empty_schedule(self):
        t = simulate([], generic_risc())
        assert t.makespan == 0
        assert t.stall_cycles == 0


class TestVerifyOrder:
    def test_legal_order_accepted(self):
        dag = dag_of(kernel_source("figure1"))
        verify_order(list(dag.nodes), dag)

    def test_arc_violation_detected(self):
        dag = dag_of("mov 1, %o0\nadd %o0, 1, %o1")
        with pytest.raises(SchedulingError):
            verify_order([dag.nodes[1], dag.nodes[0]], dag)

    def test_missing_node_detected(self):
        dag = dag_of("nop\nnop")
        with pytest.raises(SchedulingError):
            verify_order([dag.nodes[0]], dag)

    def test_duplicate_node_detected(self):
        dag = dag_of("nop\nnop")
        with pytest.raises(SchedulingError):
            verify_order([dag.nodes[0], dag.nodes[0]], dag)

    def test_independent_reorder_accepted(self):
        dag = dag_of("mov 1, %o0\nmov 2, %o1")
        verify_order([dag.nodes[1], dag.nodes[0]], dag)
