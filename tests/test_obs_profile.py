"""Deterministic work profiler: counter attribution, not sampling.

The profiler's whole claim is determinism: stacks are built from the
builders' own work counters (comparisons, table probes, bitmap words,
heuristic visits), so two runs -- serial or ``--jobs N`` -- produce
byte-identical collapsed output.  These tests pin that, plus the
collapsed-stack and Markdown export formats.
"""

import pytest

from repro.asm import parse_asm
from repro.cfg import apply_window, partition_blocks
from repro.errors import ReproError
from repro.obs.profile import (
    BUILD_COUNTERS,
    PROFILE_KERNELS,
    WorkProfile,
    profile_block,
    profile_workload,
    write_profile,
)
from repro.workloads import kernel_source


def small_block():
    program = parse_asm(kernel_source("daxpy"), name="daxpy")
    return apply_window(partition_blocks(program), 16)[0]


class TestWorkProfile:
    def test_add_and_merge_commutative(self):
        a = WorkProfile()
        a.add(("k", "b", "build", "comparisons"), 3)
        b = WorkProfile()
        b.add(("k", "b", "build", "comparisons"), 4)
        b.add(("k", "b2", "schedule", "instructions_issued"), 1)
        a.merge(b.stacks)
        assert a.stacks[("k", "b", "build", "comparisons")] == 7
        assert a.total() == 8

    def test_collapsed_format_sorted(self):
        p = WorkProfile()
        p.add(("z", "b", "build", "c"), 1)
        p.add(("a", "b", "build", "c"), 2)
        lines = p.collapsed().splitlines()
        assert lines == ["a;b;build;c 2", "z;b;build;c 1"]

    def test_markdown_tables(self):
        p = WorkProfile()
        p.add(("daxpy", "n2", "build", "comparisons"), 10)
        p.add(("daxpy", "n2", "heuristics", "node_visits"), 4)
        md = p.markdown()
        assert "| builder |" in md
        assert "n2" in md and "daxpy" in md


class TestProfileBlock:
    def test_phases_and_counters_present(self):
        from repro.machine.presets import generic_risc
        leaves = profile_block("daxpy", small_block(), generic_risc(),
                               builders=("n2",))
        phases = {stack[2] for stack in leaves}
        assert phases == {"build", "heuristics", "schedule"}
        counters = {stack[3] for stack in leaves
                    if stack[2] == "build"}
        assert counters <= set(BUILD_COUNTERS) | {"words_touched"}
        assert leaves[("daxpy", "n2", "heuristics", "node_visits")] > 0

    def test_unknown_machine_rejected(self):
        with pytest.raises(ReproError):
            profile_workload("not-a-machine", copies=1)


class TestDeterminism:
    def test_jobs_1_vs_2_byte_identical(self):
        serial = profile_workload(copies=2, jobs=1)
        parallel = profile_workload(copies=2, jobs=2)
        assert serial.collapsed() == parallel.collapsed()
        assert serial.collapsed()  # non-empty

    def test_repeat_runs_identical(self):
        assert profile_workload(copies=2, jobs=1).collapsed() \
            == profile_workload(copies=2, jobs=1).collapsed()

    def test_covers_all_profile_kernels(self):
        profile = profile_workload(copies=2, jobs=1)
        workloads = {stack[0] for stack in profile.stacks}
        assert workloads == set(PROFILE_KERNELS)


class TestExport:
    def test_write_profile_files(self, tmp_path):
        profile = profile_workload(copies=2, jobs=1,
                                   builders=("n2",))
        collapsed = tmp_path / "p.collapsed"
        md = tmp_path / "p.md"
        write_profile(profile, str(collapsed), str(md))
        body = collapsed.read_text()
        # flamegraph.pl format: "frame;frame;... count" per line
        for line in body.splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 0
            assert len(stack.split(";")) == 4
        assert md.read_text().startswith("#")
