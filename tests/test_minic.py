"""Tests for the mini-C compiler substrate."""

import pytest

from repro.cfg import partition_blocks
from repro.machine import generic_risc
from repro.minic import compile_minic, compile_to_program, parse_minic
from repro.minic.ast import Assign, Binary, CType, Decl, IntLit, Var
from repro.minic.lexer import MiniCError, TokKind, tokenize
from repro.scheduling.algorithms import Warren


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("x = a + 42;")
        kinds = [t.kind for t in tokens]
        assert kinds == [TokKind.IDENT, TokKind.OP, TokKind.IDENT,
                         TokKind.OP, TokKind.INT, TokKind.OP, TokKind.EOF]

    def test_float_literal(self):
        assert tokenize("1.5")[0].kind is TokKind.FLOAT
        assert tokenize(".5")[0].kind is TokKind.FLOAT

    def test_hex_literal(self):
        assert tokenize("0xff")[0].text == "0xff"

    def test_keywords(self):
        assert tokenize("int")[0].kind is TokKind.KEYWORD
        assert tokenize("double")[0].kind is TokKind.KEYWORD
        assert tokenize("integer")[0].kind is TokKind.IDENT

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a << 2 >> 1")]
        assert "<<" in texts and ">>" in texts

    def test_comments_skipped(self):
        tokens = tokenize("a // line comment\n/* block */ = 1;")
        assert [t.text for t in tokens[:3]] == ["a", "=", "1"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(MiniCError):
            tokenize("a = @;")


class TestParser:
    def test_declaration(self):
        (decl,) = parse_minic("double x, y;")
        assert isinstance(decl, Decl)
        assert decl.ctype is CType.DOUBLE
        assert decl.names == ("x", "y")

    def test_assignment(self):
        (stmt,) = parse_minic("x = 1;")
        assert isinstance(stmt, Assign)
        assert stmt.expr == IntLit(1)

    def test_precedence(self):
        (stmt,) = parse_minic("x = a + b * c;")
        assert isinstance(stmt.expr, Binary)
        assert stmt.expr.op == "+"
        assert stmt.expr.right.op == "*"

    def test_left_associativity(self):
        (stmt,) = parse_minic("x = a - b - c;")
        assert stmt.expr.op == "-"
        assert stmt.expr.left.op == "-"

    def test_parentheses(self):
        (stmt,) = parse_minic("x = (a + b) * c;")
        assert stmt.expr.op == "*"
        assert stmt.expr.left.op == "+"

    def test_unary_minus(self):
        (stmt,) = parse_minic("x = -a;")
        from repro.minic.ast import Unary
        assert isinstance(stmt.expr, Unary)

    def test_bitwise_precedence_below_arithmetic(self):
        (stmt,) = parse_minic("x = a & b + c;")
        assert stmt.expr.op == "&"

    def test_shift_precedence(self):
        (stmt,) = parse_minic("x = a << 1 + 2;")
        assert stmt.expr.op == "<<"

    def test_missing_semicolon(self):
        with pytest.raises(MiniCError):
            parse_minic("x = 1")

    def test_unbalanced_paren(self):
        with pytest.raises(MiniCError):
            parse_minic("x = (a + b;")

    def test_bad_declaration(self):
        with pytest.raises(MiniCError):
            parse_minic("int 4;")


class TestCodegen:
    def test_output_parses_as_assembly(self):
        program = compile_to_program("int a, b; a = a + b * 2;")
        assert len(program) > 0

    def test_single_basic_block(self):
        program = compile_to_program("int a; a = a + 1;")
        assert len(partition_blocks(program)) == 1

    def test_every_variable_reference_loads(self):
        # Naive codegen: three references to `a` = three loads.
        asm = compile_minic("int a, x; x = a + a + a;")
        assert asm.count("ld [a]") == 3

    def test_int_ops_selected(self):
        asm = compile_minic(
            "int a, b, x; x = ((a + b) - (a & b) | (a ^ b)) * b;")
        for mnemonic in ("add", "sub", "and", "xor", "or", "smul"):
            assert f"\t{mnemonic} " in asm

    def test_shift_operators(self):
        asm = compile_minic("int a, x; x = a << 3 >> 1;")
        assert "sll" in asm and "sra" in asm

    def test_division(self):
        asm = compile_minic("int a, b, x; x = a / b;")
        assert "sdiv" in asm

    def test_remainder_lowering(self):
        asm = compile_minic("int a, b, x; x = a % b;")
        assert "sdiv" in asm and "smul" in asm
        # quotient*b subtracted from a
        assert asm.count("sub") >= 1

    def test_small_int_immediates_inline(self):
        asm = compile_minic("int a, x; x = a + 12;")
        assert "add %o0, 12," in asm

    def test_large_int_via_sethi(self):
        asm = compile_minic("int x; x = 1000000;")
        assert "sethi" in asm

    def test_double_ops(self):
        asm = compile_minic("double a, b, x; x = a * b + a / b;")
        for mnemonic in ("ldd", "fmuld", "fdivd", "faddd", "std"):
            assert mnemonic in asm

    def test_double_constant_pool(self):
        asm = compile_minic("double x; x = 2.5;")
        assert "[.LC0]" in asm
        assert "constant pool" in asm

    def test_constant_pool_deduplicated(self):
        asm = compile_minic("double x, y; x = 2.5; y = 2.5;")
        assert "[.LC1]" not in asm

    def test_int_to_double_promotion(self):
        asm = compile_minic("double x; int i; x = x + i;")
        assert "fitod" in asm
        assert "staging" in asm

    def test_double_to_int_demotion(self):
        asm = compile_minic("double x; int i; i = x;")
        assert "fdtoi" in asm

    def test_double_negation_v8_style(self):
        asm = compile_minic("double a, x; x = -a;")
        assert "fnegs" in asm and "fmovs" in asm

    def test_int_negation(self):
        asm = compile_minic("int a, x; x = -a;")
        assert "sub %g0," in asm

    def test_int_only_op_on_double_rejected(self):
        with pytest.raises(MiniCError):
            compile_minic("double a, x; x = a & a;")

    def test_conflicting_declaration_rejected(self):
        with pytest.raises(MiniCError):
            compile_minic("int a; double a;")

    def test_pool_exhaustion_reported(self):
        # Build an expression deeper than the register pool.
        deep = "a"
        for _ in range(20):
            deep = f"(a + {deep} * a)"
        with pytest.raises(MiniCError):
            compile_minic(f"int a, x; x = {deep};")

    def test_undeclared_defaults_to_int(self):
        asm = compile_minic("x = y + 1;")
        assert "ld [y]" in asm
        assert "st %o1, [x]" in asm or "st %o0, [x]" in asm


class TestEndToEnd:
    def test_compiled_block_schedules_and_improves(self):
        program = compile_to_program("""
            double a, b, c;
            int i, j;
            c = a * b + c / a;
            j = (i + 1) * (i - 1) % 7;
        """)
        block = partition_blocks(program)[0]
        result = Warren(generic_risc()).schedule_block(block)
        assert result.makespan < result.original_timing.makespan
        assert result.speedup > 1.3  # divide shadows filled

    def test_all_builders_agree_on_compiled_code(self):
        from repro.dag.builders import ALL_BUILDERS
        from repro.dag.bitmap import compute_reachability
        program = compile_to_program(
            "double a, b; int i; a = a / b + 1.0; i = i * 3 % 5;")
        block = partition_blocks(program)[0]
        machine = generic_risc()
        closures = []
        for cls in ALL_BUILDERS:
            dag = cls(machine).build(block).dag
            rmap = compute_reachability(dag)
            closures.append(frozenset(
                (i, j) for i in range(len(dag))
                for j in rmap.descendants(i)))
        assert len(set(closures)) == 1
