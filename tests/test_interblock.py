"""Tests for cross-block inherited latencies (paper future work 3)."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.interblock import (
    apply_inherited,
    residual_latencies,
)
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import verify_order

CP = winnowing("max_delay_to_leaf")


def schedule_block(source: str, machine):
    block = partition_blocks(parse_asm(source))[0]
    dag = TableForwardBuilder(machine).build(block).dag
    backward_pass(dag)
    return dag, schedule_forward(dag, machine, CP)


class TestResidualLatencies:
    def test_long_op_at_block_end_is_residual(self):
        machine = generic_risc()
        _, result = schedule_block(
            "mov 1, %o0\nfdivd %f0, %f2, %f4", machine)
        residuals = residual_latencies(result, machine)
        names = {r.resource.name: r.remaining for r in residuals}
        # The divide issues last (cycle 1); its 20-cycle result is
        # 19 cycles in flight when the block exits at cycle 2.
        assert names["%f4"] == 19
        assert names["%f5"] == 19

    def test_completed_ops_not_residual(self):
        machine = generic_risc()
        _, result = schedule_block("mov 1, %o0\nmov 2, %o1", machine)
        assert residual_latencies(result, machine) == []

    def test_redefinition_overwrites_residual(self):
        machine = generic_risc()
        _, result = schedule_block(
            "fdivd %f0, %f2, %f4\nfaddd %f6, %f8, %f4", machine)
        residuals = {r.resource.name: r.remaining
                     for r in residual_latencies(result, machine)}
        # %f4 is redefined by the add; only the add's (shorter) latency
        # survives -- and the first (even) half comes from the add.
        assert residuals["%f4"] <= 4

    def test_empty_schedule(self):
        from repro.scheduling.list_scheduler import ScheduleResult
        from repro.scheduling.timing import ScheduleTiming
        machine = generic_risc()
        empty = ScheduleResult([], ScheduleTiming((), 0, 0))
        assert residual_latencies(empty, machine) == []


class TestApplyInherited:
    def test_pseudo_arcs_delay_dependent_use(self):
        machine = generic_risc()
        # Predecessor ends with a divide into %f4.
        _, pred = schedule_block(
            "mov 1, %o0\nfdivd %f0, %f2, %f4", machine)
        residuals = residual_latencies(pred, machine)

        succ_block = partition_blocks(parse_asm("""
            faddd %f4, %f6, %f8
            mov 1, %o1
            mov 2, %o2
        """))[0]
        dag = TableForwardBuilder(machine).build(succ_block).dag
        pseudo = apply_inherited(dag, residuals)
        assert pseudo.is_dummy
        backward_pass(dag, require_est=False)
        result = schedule_forward(dag, machine, CP)
        verify_order(result.order, dag)
        issue = dict(zip((n.id for n in result.order),
                         result.timing.issue_times))
        # The dependent add waits out the inherited 19 cycles while the
        # moves fill the stall.
        assert issue[0] >= 19
        assert issue[1] < 19 and issue[2] < 19

    def test_without_inheritance_scheduler_is_oblivious(self):
        machine = generic_risc()
        succ_block = partition_blocks(parse_asm(
            "faddd %f4, %f6, %f8\nmov 1, %o1"))[0]
        dag = TableForwardBuilder(machine).build(succ_block).dag
        backward_pass(dag)
        result = schedule_forward(dag, machine, CP)
        assert result.timing.issue_times[0] == 0

    def test_redefinition_gets_waw_pseudo_arc(self):
        from repro.dep import DepType
        machine = generic_risc()
        _, pred = schedule_block("fdivd %f0, %f2, %f4", machine)
        residuals = residual_latencies(pred, machine)
        succ = partition_blocks(parse_asm("faddd %f6, %f8, %f4"))[0]
        dag = TableForwardBuilder(machine).build(succ).dag
        pseudo = apply_inherited(dag, residuals)
        deps = {a.dep for a in pseudo.out_arcs}
        assert DepType.WAW in deps

    def test_only_first_touch_gets_arc(self):
        machine = generic_risc()
        _, pred = schedule_block("fdivd %f0, %f2, %f4", machine)
        residuals = residual_latencies(pred, machine)
        succ = partition_blocks(parse_asm(
            "faddd %f4, %f6, %f8\nfmuld %f4, %f8, %f10"))[0]
        dag = TableForwardBuilder(machine).build(succ).dag
        pseudo = apply_inherited(dag, residuals)
        # One arc per inherited resource half (%f4 and %f5), both to
        # the first consumer.
        targets = {a.child.id for a in pseudo.out_arcs}
        assert targets == {0}

    def test_no_residuals_is_noop(self):
        machine = generic_risc()
        succ = partition_blocks(parse_asm("mov 1, %o0"))[0]
        dag = TableForwardBuilder(machine).build(succ).dag
        pseudo = apply_inherited(dag, [])
        assert pseudo.out_arcs == []
        result = schedule_forward(dag, machine, CP)
        assert result.makespan == 1
