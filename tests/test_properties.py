"""Property-based tests over randomized basic blocks (hypothesis).

A block strategy builds random-but-well-formed instruction sequences
mixing integer/FP arithmetic, loads/stores over a small pool of memory
expressions, and compares; the invariants checked here are the
load-bearing ones of the whole library:

* every construction algorithm yields the same *ordering constraints*
  (identical transitive closure of the DAG);
* schedules from every scheduler are legal topological orders whose
  simulated issue times satisfy every arc delay;
* the static heuristic passes obey their defining identities.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.basic_block import BasicBlock
from repro.asm.parser import parse_instruction_text
from repro.dag.bitmap import compute_reachability
from repro.dag.builders import (
    ALL_BUILDERS,
    CompareAllBuilder,
    LandskovBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.dag.transitive import classify_arcs
from repro.heuristics.passes import (
    backward_pass,
    backward_pass_levels,
    forward_pass,
)
from repro.machine import generic_risc, sparcstation2_like
from repro.scheduling.fixup import delay_slot_fixup
from repro.scheduling.list_scheduler import (
    schedule_backward,
    schedule_forward,
)
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate, verify_order

MACHINE = generic_risc()
SPARC = sparcstation2_like()

_INT = ["%o0", "%o1", "%o2", "%o3", "%l2", "%l3"]
_FP = ["%f0", "%f2", "%f4", "%f6"]
_MEM = ["[%fp-8]", "[%fp-12]", "[%l0]", "[%l0+4]", "[gsym]"]


@st.composite
def instruction_text(draw) -> str:
    kind = draw(st.sampled_from(
        ["alu", "alu_imm", "load", "store", "fp", "fdiv", "cmp", "mov",
         "ldd", "std", "addx", "mul", "swap", "rdy", "wry", "fconv"]))
    ri = lambda: draw(st.sampled_from(_INT))
    rf = lambda: draw(st.sampled_from(_FP))
    mem = lambda: draw(st.sampled_from(_MEM))
    if kind == "alu":
        op = draw(st.sampled_from(["add", "sub", "and", "or", "xor",
                                   "xnor"]))
        return f"{op} {ri()}, {ri()}, {ri()}"
    if kind == "alu_imm":
        op = draw(st.sampled_from(["sub", "sll", "sra"]))
        return f"{op} {ri()}, {draw(st.integers(1, 31))}, {ri()}"
    if kind == "load":
        return f"ld {mem()}, {ri()}"
    if kind == "store":
        return f"st {ri()}, {mem()}"
    if kind == "fp":
        op = draw(st.sampled_from(["faddd", "fsubd", "fmuld"]))
        return f"{op} {rf()}, {rf()}, {rf()}"
    if kind == "fdiv":
        return f"fdivd {rf()}, {rf()}, {rf()}"
    if kind == "cmp":
        return f"cmp {ri()}, {draw(st.integers(0, 9))}"
    if kind == "mov":
        return f"mov {draw(st.integers(0, 99))}, {ri()}"
    if kind == "ldd":
        return f"ldd {mem()}, {rf()}"
    if kind == "addx":
        op = draw(st.sampled_from(["addx", "subx", "addxcc", "addcc"]))
        return f"{op} {ri()}, {ri()}, {ri()}"
    if kind == "mul":
        op = draw(st.sampled_from(["smul", "umul", "mulscc"]))
        return f"{op} {ri()}, {ri()}, {ri()}"
    if kind == "swap":
        op = draw(st.sampled_from(["swap", "ldstub"]))
        return f"{op} {mem()}, {ri()}"
    if kind == "rdy":
        return f"rd %y, {ri()}"
    if kind == "wry":
        return f"wr {ri()}, %y"
    if kind == "fconv":
        op = draw(st.sampled_from(["fitod", "fnegs", "fmovs"]))
        return f"{op} {rf()}, {rf()}"
    return f"std {rf()}, {mem()}"


@st.composite
def blocks(draw, min_size: int = 1, max_size: int = 18) -> BasicBlock:
    n = draw(st.integers(min_size, max_size))
    texts = [draw(instruction_text()) for _ in range(n)]
    instrs = [parse_instruction_text(t, index=i)
              for i, t in enumerate(texts)]
    return BasicBlock(0, instrs)


def closure(dag) -> frozenset:
    rmap = compute_reachability(dag)
    return frozenset((i, j) for i in range(len(dag))
                     for j in rmap.descendants(i))


CP = winnowing("max_delay_to_leaf", "max_delay_to_child")


class TestBuilderProperties:
    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_all_builders_same_closure(self, block):
        reference = None
        for cls in ALL_BUILDERS:
            dag = cls(MACHINE).build(block).dag
            c = closure(dag)
            if reference is None:
                reference = c
            else:
                assert c == reference, cls.name

    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_table_directions_identical_arcs(self, block):
        fw = TableForwardBuilder(MACHINE).build(block).dag
        bw = TableBackwardBuilder(MACHINE).build(block).dag
        fa = {(a.parent.id, a.child.id, a.delay) for a in fw.arcs()}
        ba = {(a.parent.id, a.child.id, a.delay) for a in bw.arcs()}
        assert fa == ba

    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_landskov_transitive_free(self, block):
        dag = LandskovBuilder(MACHINE).build(block).dag
        assert not any(classify_arcs(dag).values())

    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_compare_all_superset(self, block):
        pairs = lambda dag: {(a.parent.id, a.child.id)
                             for a in dag.arcs()}
        full = pairs(CompareAllBuilder(MACHINE).build(block).dag)
        for cls in ALL_BUILDERS[1:]:
            assert pairs(cls(MACHINE).build(block).dag) <= full

    @settings(max_examples=30, deadline=None)
    @given(block=blocks())
    def test_builders_deterministic(self, block):
        for cls in ALL_BUILDERS:
            a = cls(MACHINE).build(block).dag
            b = cls(MACHINE).build(block).dag
            assert {(x.parent.id, x.child.id, x.delay) for x in a.arcs()} \
                == {(x.parent.id, x.child.id, x.delay) for x in b.arcs()}


class TestSchedulingProperties:
    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_forward_schedule_legal_and_timed(self, block):
        dag = TableForwardBuilder(MACHINE).build(block).dag
        backward_pass(dag)
        result = schedule_forward(dag, MACHINE, CP)
        verify_order(result.order, dag)
        timing = simulate(result.order, MACHINE)
        pos = {n.id: i for i, n in enumerate(result.order)}
        for node in result.order:
            for arc in node.out_arcs:
                assert timing.issue_times[pos[arc.child.id]] >= \
                    timing.issue_times[pos[node.id]] + arc.delay

    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_backward_schedule_legal(self, block):
        dag = TableForwardBuilder(MACHINE).build(block).dag
        forward_pass(dag)
        result = schedule_backward(dag, MACHINE,
                                   winnowing("max_delay_from_root"))
        verify_order(result.order, dag)

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_est_is_issue_time_lower_bound(self, block):
        dag = TableForwardBuilder(MACHINE).build(block).dag
        forward_pass(dag)
        result = schedule_forward(dag, MACHINE, CP, consider_units=False)
        timing = simulate(result.order, MACHINE, consider_units=False)
        for node, issue in zip(result.order, timing.issue_times):
            assert issue >= node.est

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_fixup_never_worse(self, block):
        dag = TableForwardBuilder(MACHINE).build(block).dag
        order = list(dag.real_nodes())
        before = simulate(order, MACHINE).makespan
        fixed = delay_slot_fixup(order, MACHINE)
        verify_order(fixed, dag)
        assert simulate(fixed, MACHINE).makespan <= before

    @settings(max_examples=25, deadline=None)
    @given(block=blocks(max_size=7))
    def test_branch_and_bound_bounds_heuristics(self, block):
        from repro.scheduling.branch_and_bound import (
            branch_and_bound_schedule,
        )
        dag = TableForwardBuilder(MACHINE).build(block).dag
        backward_pass(dag)
        optimal, proved = branch_and_bound_schedule(dag, MACHINE)
        heuristic = schedule_forward(dag, MACHINE, CP)
        assert proved
        assert optimal.makespan <= heuristic.makespan
        verify_order(optimal.order, dag)


class TestPassProperties:
    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_slack_nonnegative_and_lst_bounds_est(self, block):
        dag = TableForwardBuilder(MACHINE).build(block).dag
        backward_pass(dag)
        for node in dag.nodes:
            assert node.slack >= 0
            assert node.lst >= node.est

    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_level_driver_equals_reverse_walk(self, block):
        a = TableForwardBuilder(MACHINE).build(block).dag
        b = TableForwardBuilder(MACHINE).build(block).dag
        backward_pass(a, descendants=True)
        backward_pass_levels(b, descendants=True)
        for na, nb in zip(a.nodes, b.nodes):
            assert (na.max_path_to_leaf, na.max_delay_to_leaf, na.lst,
                    na.slack, na.n_descendants, na.sum_exec_descendants) \
                == (nb.max_path_to_leaf, nb.max_delay_to_leaf, nb.lst,
                    nb.slack, nb.n_descendants, nb.sum_exec_descendants)

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_descendant_counts_match_networkx(self, block):
        import networkx as nx
        dag = TableForwardBuilder(MACHINE).build(block).dag
        backward_pass(dag, descendants=True)
        g = nx.DiGraph()
        g.add_nodes_from(n.id for n in dag.nodes)
        g.add_edges_from((a.parent.id, a.child.id) for a in dag.arcs())
        for node in dag.nodes:
            assert node.n_descendants == len(nx.descendants(g, node.id))

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_max_delay_to_leaf_dominates_path_count(self, block):
        # Every arc has delay >= 1, so the delay-weighted longest path
        # is at least the arc-count longest path.
        dag = TableForwardBuilder(MACHINE).build(block).dag
        backward_pass(dag)
        for node in dag.nodes:
            assert node.max_delay_to_leaf >= node.max_path_to_leaf

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_unit_aware_schedule_still_legal_on_sparc(self, block):
        dag = TableForwardBuilder(SPARC).build(block).dag
        backward_pass(dag)
        result = schedule_forward(dag, SPARC, CP)
        verify_order(result.order, dag)
