"""Tests for the priority combinators."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.priority import by_key, weighted, winnowing
from repro.workloads import kernel_source


@pytest.fixture
def fig1_dag():
    blocks = partition_blocks(parse_asm(kernel_source("figure1")))
    dag = TableForwardBuilder(generic_risc()).build(blocks[0]).dag
    backward_pass(dag)
    dag.reset_schedule_state()
    return dag


class TestByKey:
    def test_static_key(self, fig1_dag):
        fn = by_key("max_delay_to_leaf")
        assert fn(fig1_dag.nodes[0], None) == 20

    def test_minimize_negates(self, fig1_dag):
        fn = by_key("max_delay_to_leaf", minimize=True)
        assert fn(fig1_dag.nodes[0], None) == -20

    def test_callable_passthrough(self, fig1_dag):
        fn = by_key(lambda node, state: node.id * 10)
        assert fn(fig1_dag.nodes[2], None) == 20

    def test_raw_slot_fallback(self, fig1_dag):
        # max_delay_to_child is a DagNode slot, not a catalog key.
        fn = by_key("max_delay_to_child")
        assert fn(fig1_dag.nodes[0], None) == 20

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            by_key("not_a_heuristic")

    def test_dynamic_key_resolves_to_function(self, fig1_dag):
        from repro.scheduling.list_scheduler import SchedulerState
        fn = by_key("n_uncovered_children")
        state = SchedulerState(generic_risc())
        assert fn(fig1_dag.nodes[1], state) == 0  # 4-cycle arc not uncovered


class TestWinnowing:
    def test_lexicographic_order(self, fig1_dag):
        priority = winnowing("max_path_to_leaf", "max_delay_to_leaf")
        values = [priority(n, None) for n in fig1_dag.nodes]
        assert values == [(2, 20), (1, 4), (0, 0)]

    def test_min_direction(self, fig1_dag):
        priority = winnowing(("max_delay_to_leaf", "min"))
        assert priority(fig1_dag.nodes[0], None) == (-20,)

    def test_first_term_dominates(self, fig1_dag):
        # Tie on term 1 resolved by term 2.
        priority = winnowing("execution_time", "max_delay_to_leaf")
        n1, n2 = fig1_dag.nodes[1], fig1_dag.nodes[2]
        assert n1.execution_time == n2.execution_time
        assert priority(n1, None) > priority(n2, None)


class TestWeighted:
    def test_scalar_combination(self, fig1_dag):
        priority = weighted(("max_path_to_leaf", 100),
                            ("max_delay_to_leaf", 1))
        assert priority(fig1_dag.nodes[0], None) == 220

    def test_min_terms_subtract(self, fig1_dag):
        priority = weighted(("max_delay_to_leaf", 1, "min"))
        assert priority(fig1_dag.nodes[0], None) == -20

    def test_integer_exactness_at_large_weights(self, fig1_dag):
        # Integer weights must not lose precision (floats would above
        # 2**53).
        priority = weighted(("max_path_to_leaf", 10**17),
                            ("max_delay_to_leaf", 1))
        a = priority(fig1_dag.nodes[0], None)
        b = priority(fig1_dag.nodes[0], None)
        assert a == b == 2 * 10**17 + 20
        assert isinstance(a, int)
