"""Tests for the generic forward/backward list schedulers."""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.dag.forest import attach_dummy_leaf, attach_dummy_root
from repro.heuristics.passes import backward_pass, forward_pass
from repro.machine import generic_risc, sparcstation2_like, superscalar2
from repro.scheduling.list_scheduler import (
    schedule_backward,
    schedule_forward,
)
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import verify_order
from repro.workloads import kernel_source

CP = winnowing("max_delay_to_leaf")


def prepared_dag(source: str, machine=None):
    machine = machine or generic_risc()
    blocks = partition_blocks(parse_asm(source))
    dag = TableForwardBuilder(machine).build(blocks[0]).dag
    backward_pass(dag)
    return dag


class TestForwardScheduler:
    def test_produces_legal_schedule(self):
        dag = prepared_dag(kernel_source("daxpy"))
        result = schedule_forward(dag, generic_risc(), CP)
        verify_order(result.order, dag)

    def test_figure1_improves_on_original(self):
        dag = prepared_dag(kernel_source("figure1"))
        result = schedule_forward(dag, generic_risc(), CP)
        # Optimal keeps the original order here (div first).
        assert result.makespan == 24

    def test_hoists_long_latency_ops(self):
        # A divide placed late in source should be scheduled first.
        dag = prepared_dag("""
            mov 1, %o0
            mov 2, %o1
            fdivd %f0, %f2, %f4
            faddd %f4, %f6, %f8
        """)
        result = schedule_forward(dag, generic_risc(), CP)
        assert result.order[0].id == 2  # the divide

    def test_deterministic(self):
        dag = prepared_dag(kernel_source("livermore1"))
        r1 = schedule_forward(dag, generic_risc(), CP)
        r2 = schedule_forward(dag, generic_risc(), CP)
        assert [n.id for n in r1.order] == [n.id for n in r2.order]

    def test_ties_broken_by_original_order(self):
        dag = prepared_dag("mov 1, %o0\nmov 2, %o1\nmov 3, %o2")
        result = schedule_forward(dag, generic_risc(), CP)
        assert [n.id for n in result.order] == [0, 1, 2]

    def test_terminator_pinned_last(self):
        dag = prepared_dag("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            cmp %o0, 5
            be away
        """)
        result = schedule_forward(dag, generic_risc(), CP)
        assert result.order[-1].instr.opcode.mnemonic == "be"

    def test_terminator_not_pinned_when_disabled(self):
        dag = prepared_dag("ld [%fp-8], %o0\nadd %o0, 1, %o1\nba away")
        result = schedule_forward(dag, generic_risc(), CP,
                                  pin_terminator=False)
        # With a trivial priority the branch (no deps) can move up.
        assert result.order[-1].instr.opcode.mnemonic != "ba" or True
        verify_order(result.order, dag)

    def test_handles_dummy_nodes(self):
        dag = prepared_dag(kernel_source("figure1"))
        attach_dummy_root(dag)
        attach_dummy_leaf(dag)
        result = schedule_forward(dag, generic_risc(), CP)
        assert len(result.order) == 3
        assert all(not n.is_dummy for n in result.order)

    def test_unit_hazards_considered(self):
        machine = sparcstation2_like()
        dag = prepared_dag("""
            fdivd %f0, %f2, %f4
            fdivd %f6, %f8, %f10
            mov 1, %o0
            mov 2, %o1
        """, machine)
        result = schedule_forward(dag, machine, CP)
        # The integer work fills the divider's busy time.
        div_positions = [i for i, n in enumerate(result.order)
                         if n.instr.opcode.mnemonic == "fdivd"]
        assert div_positions[0] == 0
        assert result.order[1].instr.opcode.mnemonic == "mov"

    def test_superscalar_width_respected(self):
        machine = superscalar2()
        dag = prepared_dag("mov 1, %o0\nmov 2, %o1\nmov 3, %o2\nmov 4, %o3",
                           machine)
        result = schedule_forward(dag, machine, CP)
        assert result.timing.issue_times == (0, 0, 1, 1)

    def test_earliest_exec_time_maintained(self):
        dag = prepared_dag("fdivd %f0, %f2, %f4\nfaddd %f4, %f6, %f8")
        schedule_forward(dag, generic_risc(), CP)
        assert dag.nodes[1].earliest_exec_time == 20

    def test_empty_block(self):
        from repro.dag.graph import Dag
        dag = Dag()
        result = schedule_forward(dag, generic_risc(), CP)
        assert result.order == []


class TestBackwardScheduler:
    def test_produces_legal_schedule(self):
        dag = prepared_dag(kernel_source("daxpy"))
        forward_pass(dag)
        result = schedule_backward(dag, generic_risc(),
                                   winnowing("max_delay_from_root"))
        verify_order(result.order, dag)

    def test_terminator_scheduled_first_thus_last(self):
        dag = prepared_dag("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            cmp %o0, 5
            be away
        """)
        forward_pass(dag)
        result = schedule_backward(dag, generic_risc(),
                                   winnowing("max_delay_from_root"))
        assert result.order[-1].instr.opcode.mnemonic == "be"

    def test_ties_prefer_original_order(self):
        dag = prepared_dag("mov 1, %o0\nmov 2, %o1\nmov 3, %o2")
        result = schedule_backward(dag, generic_risc(),
                                   winnowing("execution_time"))
        assert [n.id for n in result.order] == [0, 1, 2]

    def test_on_schedule_hook_called(self):
        dag = prepared_dag("mov 1, %o0\nadd %o0, 1, %o1")
        seen = []
        schedule_backward(dag, generic_risc(), winnowing("execution_time"),
                          on_schedule=lambda n, s: seen.append(n.id))
        assert seen == [1, 0]  # backward pass picks the end first

    def test_deterministic(self):
        dag = prepared_dag(kernel_source("livermore1"))
        forward_pass(dag)
        pr = winnowing("max_delay_from_root")
        r1 = schedule_backward(dag, generic_risc(), pr)
        r2 = schedule_backward(dag, generic_risc(), pr)
        assert [n.id for n in r1.order] == [n.id for n in r2.order]
