"""Second property-based suite: schedulers and transforms.

Complements ``test_properties.py`` with invariants over the
reservation-table scheduler, the timed backward scheduler, the
whole-program transform, and the delay-slot machinery.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.program import Program
from repro.asm import render_program, parse_asm
from repro.cfg.basic_block import BasicBlock
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass, forward_pass
from repro.machine import generic_risc, sparcstation2_like
from repro.scheduling.backward_timed import schedule_backward_timed
from repro.scheduling.delay_slots import fill_delay_slot
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import weighted, winnowing
from repro.scheduling.reservation_scheduler import schedule_with_reservation
from repro.scheduling.timing import simulate, verify_order
from repro.transform import schedule_program

from tests.test_properties import blocks, instruction_text

MACHINE = generic_risc()
SPARC = sparcstation2_like()
CP = winnowing("max_delay_to_leaf", "max_delay_to_child")
SLACK = weighted(("slack", 10**8), ("lst", 1))


@st.composite
def programs(draw, max_blocks: int = 4) -> Program:
    """Small multi-block programs with branch terminators."""
    n_blocks = draw(st.integers(1, max_blocks))
    lines: list[str] = []
    for b in range(n_blocks):
        lines.append(f"L{b}:")
        for _ in range(draw(st.integers(1, 6))):
            lines.append("    " + draw(instruction_text()))
        if draw(st.booleans()):
            target = draw(st.integers(0, n_blocks - 1))
            lines.append(f"    ba L{target}")
            lines.append("    nop")
    return parse_asm("\n".join(lines))


class TestReservationProperties:
    @settings(max_examples=50, deadline=None)
    @given(block=blocks())
    def test_reservation_schedule_legal_and_delay_respecting(self, block):
        dag = TableForwardBuilder(SPARC).build(block).dag
        backward_pass(dag)
        result = schedule_with_reservation(dag, SPARC, CP)
        verify_order(result.order, dag)
        issue = {n.id: t for n, t in zip(result.order,
                                         result.timing.issue_times)}
        for node in result.order:
            for arc in node.out_arcs:
                if not arc.child.is_dummy:
                    assert issue[arc.child.id] >= issue[node.id] + arc.delay

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_unpipelined_units_never_overlap(self, block):
        dag = TableForwardBuilder(SPARC).build(block).dag
        backward_pass(dag)
        result = schedule_with_reservation(dag, SPARC, CP)
        busy: dict[str, list[tuple[int, int]]] = {}
        for node, issue in zip(result.order, result.timing.issue_times):
            unit = SPARC.units.unit_for(node.instr.opcode.iclass)
            if unit.pipelined:
                continue
            span = (issue, issue + SPARC.execution_time(node.instr))
            for other in busy.get(unit.name, []):
                assert span[1] <= other[0] or other[1] <= span[0], \
                    (unit.name, span, other)
            busy.setdefault(unit.name, []).append(span)


class TestBackwardTimedProperties:
    @settings(max_examples=50, deadline=None)
    @given(block=blocks())
    def test_legal(self, block):
        dag = TableForwardBuilder(MACHINE).build(block).dag
        forward_pass(dag)
        backward_pass(dag, require_est=False)
        result = schedule_backward_timed(dag, MACHINE, SLACK)
        verify_order(result.order, dag)

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_deterministic_and_bounded_below_by_critical_path(self, block):
        # Individual blocks can go either way between the timed and
        # untimed passes (both are greedy); the aggregate win is
        # measured in bench_ablations.  The invariants here: repeat
        # runs agree, and no schedule beats the critical path.
        from repro.heuristics.critical_path import critical_path_length
        dag = TableForwardBuilder(MACHINE).build(block).dag
        forward_pass(dag)
        backward_pass(dag, require_est=False)
        r1 = schedule_backward_timed(dag, MACHINE, SLACK)
        r2 = schedule_backward_timed(dag, MACHINE, SLACK)
        assert [n.id for n in r1.order] == [n.id for n in r2.order]
        assert r1.makespan >= critical_path_length(dag)


class TestDelaySlotProperties:
    @settings(max_examples=50, deadline=None)
    @given(block=blocks(min_size=2))
    def test_filler_is_branch_independent(self, block):
        from repro.asm.parser import parse_instruction_text
        # Append a branch terminator to the random block.
        instrs = block.instructions + [
            parse_instruction_text("ba away",
                                   index=len(block.instructions))]
        branchy = BasicBlock(0, instrs)
        dag = TableForwardBuilder(MACHINE).build(branchy).dag
        backward_pass(dag)
        result = schedule_forward(dag, MACHINE, CP)
        new_order, filler = fill_delay_slot(result.order, dag)
        verify_orderish = {n.id for n in new_order}
        assert verify_orderish == {n.id for n in result.order}
        if filler is not None:
            assert new_order[-1] is filler
            # Moving a true leaf after the branch never violates arcs.
            assert all(a.child.is_dummy for a in filler.out_arcs)


class TestTransformProperties:
    @settings(max_examples=30, deadline=None)
    @given(program=programs())
    def test_transform_preserves_instruction_multiset_modulo_nops(
            self, program):
        scheduled, report = schedule_program(program, MACHINE)
        before = sorted(i.render() for i in program)
        after = sorted(i.render() for i in scheduled)
        # Only nops may disappear, exactly as many as reported.
        removed = len(before) - len(after)
        assert removed == report.nops_removed
        non_nops_before = [t for t in before if t != "nop"]
        non_nops_after = [t for t in after if t != "nop"]
        assert non_nops_before == non_nops_after

    @settings(max_examples=30, deadline=None)
    @given(program=programs())
    def test_transform_output_reparses(self, program):
        scheduled, _ = schedule_program(program, MACHINE)
        reparsed = parse_asm(render_program(scheduled))
        assert len(reparsed) == len(scheduled)

    @settings(max_examples=30, deadline=None)
    @given(program=programs())
    def test_labels_survive(self, program):
        scheduled, _ = schedule_program(program, MACHINE)
        assert set(program.labels) == set(scheduled.labels)
