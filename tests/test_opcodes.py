"""Tests for the opcode table."""

import pytest

from repro.errors import UnknownOpcodeError
from repro.isa.opcodes import (
    CcUse,
    InstructionClass,
    IssueClass,
    OPCODE_TABLE,
    OperandFormat,
    lookup_opcode,
)


class TestLookup:
    def test_known_opcode(self):
        assert lookup_opcode("add").mnemonic == "add"

    def test_case_insensitive(self):
        assert lookup_opcode("ADD") is lookup_opcode("add")

    def test_unknown_raises(self):
        with pytest.raises(UnknownOpcodeError):
            lookup_opcode("frobnicate")


class TestClassification:
    def test_loads(self):
        for m in ("ld", "ldd", "ldub", "lduh"):
            assert lookup_opcode(m).iclass is InstructionClass.LOAD

    def test_stores(self):
        for m in ("st", "std", "stb", "sth"):
            assert lookup_opcode(m).iclass is InstructionClass.STORE

    def test_memory_property(self):
        assert lookup_opcode("ld").is_memory
        assert lookup_opcode("st").is_memory
        assert not lookup_opcode("add").is_memory

    def test_float_property(self):
        assert lookup_opcode("faddd").is_float
        assert lookup_opcode("fcmpd").is_float
        assert not lookup_opcode("ld").is_float

    def test_control_property(self):
        for m in ("ba", "be", "call", "retl", "ret"):
            assert lookup_opcode(m).is_control

    def test_issue_classes(self):
        assert lookup_opcode("add").issue_class is IssueClass.INT
        assert lookup_opcode("faddd").issue_class is IssueClass.FP
        assert lookup_opcode("ld").issue_class is IssueClass.MEM
        assert lookup_opcode("be").issue_class is IssueClass.CTRL


class TestControlFlow:
    def test_branches_end_blocks(self):
        for m in ("ba", "be", "bne", "bl", "fbe", "call", "retl"):
            assert lookup_opcode(m).ends_block

    def test_branches_are_delayed(self):
        for m in ("ba", "be", "call", "retl"):
            assert lookup_opcode(m).delayed

    def test_window_ops_end_blocks_but_not_delayed(self):
        # SAVE/RESTORE end blocks (register identifiers change meaning)
        # but have no delay slot.
        for m in ("save", "restore"):
            op = lookup_opcode(m)
            assert op.ends_block
            assert not op.delayed

    def test_conditional_flags(self):
        assert lookup_opcode("be").conditional
        assert not lookup_opcode("ba").conditional

    def test_cc_use(self):
        assert lookup_opcode("be").cc_use is CcUse.ICC
        assert lookup_opcode("fbe").cc_use is CcUse.FCC
        assert lookup_opcode("ba").cc_use is CcUse.NONE

    def test_ordinary_ops_do_not_end_blocks(self):
        for m in ("add", "ld", "st", "faddd", "cmp", "nop"):
            assert not lookup_opcode(m).ends_block


class TestDoublePrecision:
    def test_double_ops(self):
        for m in ("ldd", "std", "faddd", "fmuld", "fdivd", "fcmpd"):
            assert lookup_opcode(m).double

    def test_single_ops(self):
        for m in ("ld", "st", "fadds", "fmuls"):
            assert not lookup_opcode(m).double


class TestTableIntegrity:
    def test_no_duplicate_mnemonics(self):
        assert len(OPCODE_TABLE) == len(set(OPCODE_TABLE))

    def test_every_opcode_has_description(self):
        for op in OPCODE_TABLE.values():
            assert op.description, op.mnemonic

    def test_every_opcode_has_format(self):
        for op in OPCODE_TABLE.values():
            assert isinstance(op.fmt, OperandFormat)

    def test_table_is_reasonably_complete(self):
        # A useful SPARC-like subset: at least 60 mnemonics.
        assert len(OPCODE_TABLE) >= 60
