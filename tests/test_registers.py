"""Tests for the register model."""

import pytest

from repro.errors import OperandError
from repro.isa.registers import (
    G0,
    ICC,
    Register,
    RegisterKind,
    all_registers,
    canonical_name,
    fp_pair,
    integer_pair,
    is_register_name,
    parse_register,
)


class TestParseRegister:
    def test_integer_registers(self):
        for group in "goli":
            for i in range(8):
                reg = parse_register(f"%{group}{i}")
                assert reg.kind is RegisterKind.INTEGER

    def test_flat_numbering(self):
        assert parse_register("%g0").number == 0
        assert parse_register("%o0").number == 8
        assert parse_register("%l0").number == 16
        assert parse_register("%i7").number == 31

    def test_float_registers(self):
        for i in range(32):
            reg = parse_register(f"%f{i}")
            assert reg.kind is RegisterKind.FLOAT
            assert reg.number == i

    def test_generic_r_names(self):
        reg = parse_register("%r5")
        assert reg.kind is RegisterKind.INTEGER

    def test_generic_r_distinct_from_windowed(self):
        assert parse_register("%r6") != parse_register("%o6")

    def test_sp_alias(self):
        assert parse_register("%sp") is parse_register("%o6")

    def test_fp_alias(self):
        assert parse_register("%fp") is parse_register("%i6")

    def test_condition_codes(self):
        assert parse_register("%icc").kind is RegisterKind.CONDITION
        assert parse_register("%fcc").kind is RegisterKind.CONDITION

    def test_y_register(self):
        assert parse_register("%y").kind is RegisterKind.SPECIAL

    def test_unknown_register_raises(self):
        with pytest.raises(OperandError):
            parse_register("%q3")

    def test_out_of_range_raises(self):
        with pytest.raises(OperandError):
            parse_register("%g9")


class TestZeroRegister:
    def test_g0_is_zero(self):
        assert G0.is_zero

    def test_other_registers_not_zero(self):
        assert not parse_register("%g1").is_zero
        assert not parse_register("%o0").is_zero


class TestPairs:
    def test_fp_pair_even(self):
        even, odd = fp_pair(parse_register("%f4"))
        assert even.name == "%f4"
        assert odd.name == "%f5"

    def test_fp_pair_rejects_odd(self):
        with pytest.raises(OperandError):
            fp_pair(parse_register("%f3"))

    def test_fp_pair_rejects_integer(self):
        with pytest.raises(OperandError):
            fp_pair(parse_register("%o0"))

    def test_integer_pair(self):
        even, odd = integer_pair(parse_register("%o2"))
        assert (even.name, odd.name) == ("%o2", "%o3")

    def test_integer_pair_rejects_odd(self):
        with pytest.raises(OperandError):
            integer_pair(parse_register("%o3"))

    def test_integer_pair_generic_r(self):
        even, odd = integer_pair(parse_register("%r4"))
        assert (even.name, odd.name) == ("%r4", "%r5")


class TestHelpers:
    def test_canonical_name_alias(self):
        assert canonical_name("%sp") == "%o6"
        assert canonical_name("%o1") == "%o1"

    def test_is_register_name(self):
        assert is_register_name("%fp")
        assert is_register_name("%f31")
        assert not is_register_name("%zz")
        assert not is_register_name("label")

    def test_all_registers_unique(self):
        regs = all_registers()
        assert len({r.name for r in regs}) == len(regs)

    def test_registers_are_hashable_values(self):
        assert Register("%o1", RegisterKind.INTEGER, 9) == \
            parse_register("%o1")
