"""Tests for the structured tracer and its exporters."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    span_tree,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.trace import write_trace


def fake_clock():
    """A deterministic strictly increasing clock."""
    state = {"t": 0.0}

    def tick() -> float:
        state["t"] += 0.5
        return state["t"]

    return tick


class TestTracer:
    def test_span_nesting_and_parent_ids(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer", kind="a"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        spans = {e["name"]: e for e in tracer.entries}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["inner2"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["attrs"] == {"kind": "a"}
        assert all(e["t1"] >= e["t0"] for e in tracer.entries)

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [e["id"] for e in tracer.entries]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_mutable_attrs_recorded_at_close(self):
        tracer = Tracer()
        with tracer.span("work") as attrs:
            attrs["outcome"] = "ok"
        assert tracer.entries[0]["attrs"] == {"outcome": "ok"}

    def test_events_attach_to_open_span(self):
        tracer = Tracer()
        tracer.event("orphan")
        with tracer.span("s"):
            tracer.event("inside", n=1)
        events = [e for e in tracer.entries if e["type"] == "event"]
        assert events[0]["span"] is None
        assert events[1]["span"] == tracer.entries[-1]["id"]
        assert events[1]["attrs"] == {"n": 1}

    def test_span_survives_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.entries[0]["name"] == "boom"
        assert tracer.current_span is None

    def test_worker_stamped_on_entries(self):
        tracer = Tracer(worker=1234)
        with tracer.span("s"):
            tracer.event("e")
        assert all(e["worker"] == 1234 for e in tracer.entries)


class TestNullTracer:
    def test_falsy_and_records_nothing(self):
        assert not NULL_TRACER
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("s", a=1):
            NULL_TRACER.event("e")
        NULL_TRACER.absorb([{"type": "span", "id": 1, "parent": None,
                             "name": "x", "t0": 0, "t1": 1,
                             "worker": "w", "attrs": {}}])
        assert NULL_TRACER.entries == ()

    def test_real_tracer_truthy(self):
        assert Tracer()


class TestAbsorb:
    def test_absorb_preserves_hierarchy_and_remaps_ids(self):
        worker = Tracer(worker="w1")
        with worker.span("block", index=0):
            with worker.span("build"):
                worker.event("cache-miss")
        parent = Tracer()
        with parent.span("batch"):
            batch_id = parent.current_span
            parent.absorb(worker.entries, parent=batch_id)
        tree = span_tree(parent.entries)
        assert [t["name"] for t in tree] == ["batch"]
        block = tree[0]["children"][0]
        assert block["name"] == "block"
        assert block["children"][0]["name"] == "build"
        # worker identity survives the merge
        absorbed = [e for e in parent.entries
                    if e.get("worker") == "w1"]
        assert len(absorbed) == 3
        # and the event follows its (remapped) span
        event = next(e for e in parent.entries
                     if e["type"] == "event")
        build = next(e for e in parent.entries
                     if e["type"] == "span" and e["name"] == "build")
        assert event["span"] == build["id"]

    def test_absorb_matches_serial_tree(self):
        # One tracer doing A then B serially...
        serial = Tracer()
        with serial.span("batch"):
            for name in ("a", "b"):
                with serial.span("block", label=name):
                    with serial.span("build"):
                        pass
        # ...vs two worker tracers absorbed in the same order.
        parent = Tracer()
        with parent.span("batch"):
            for name in ("a", "b"):
                w = Tracer(worker=name)
                with w.span("block", label=name):
                    with w.span("build"):
                        pass
                parent.absorb(w.entries, parent=parent.current_span)
        assert span_tree(serial.entries) == span_tree(parent.entries)

    def test_absorb_without_parent_keeps_roots(self):
        worker = Tracer()
        with worker.span("root"):
            pass
        parent = Tracer()
        parent.absorb(worker.entries)
        assert span_tree(parent.entries)[0]["name"] == "root"


class TestSpanTree:
    def test_drops_timestamps_ids_and_events(self):
        tracer = Tracer()
        with tracer.span("s", x=1):
            tracer.event("noise")
        tree = span_tree(tracer.entries)
        assert tree == [{"name": "s", "attrs": {"x": 1},
                         "children": []}]


class TestExporters:
    def entries(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer"):
            with tracer.span("inner", builder="n2"):
                tracer.event("cache-hit", key=("a", "b"))
        return tracer.entries

    def test_jsonl_one_entry_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(self.entries(), str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line) for line in lines)

    def test_chrome_trace_loadable_shape(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.entries(), str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        phases = sorted(e["ph"] for e in events)
        assert phases == ["M", "X", "X", "i"]
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] > 0 for e in complete)
        meta = next(e for e in events if e["ph"] == "M")
        assert meta["name"] == "thread_name"
        # non-primitive attrs are stringified, never crash the export
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["args"]["key"] == "('a', 'b')"

    def test_chrome_trace_one_tid_per_worker(self, tmp_path):
        a, b = Tracer(worker="w1"), Tracer(worker="w2")
        for t in (a, b):
            with t.span("s"):
                pass
        path = tmp_path / "trace.json"
        write_chrome_trace(list(a.entries) + list(b.entries), str(path))
        doc = json.loads(path.read_text())
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 2

    def test_write_trace_dispatches_on_suffix(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        write_trace(self.entries(), str(jsonl))
        write_trace(self.entries(), str(chrome))
        assert len(jsonl.read_text().splitlines()) == 3
        assert "traceEvents" in json.loads(chrome.read_text())
