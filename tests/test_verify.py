"""Tests for the independent schedule verifier and fault injection.

The verifier re-derives dependences with the compare-against-all
reference and must (a) pass every honestly produced schedule, (b)
catch every fabricated fault class, (c) flag the Figure 1 transitive-
timing trap, and (d) let the pipeline degrade gracefully when a
builder is broken.
"""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import (
    ALL_BUILDERS,
    CompareAllBuilder,
    LandskovBuilder,
    TableForwardBuilder,
)
from repro.errors import (
    BuilderMismatchError,
    DagError,
    VerificationError,
)
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc, sparcstation2_like
from repro.pipeline import SECTION6_PRIORITY, run_pipeline
from repro.scheduling.list_scheduler import schedule_forward
from repro.transform import schedule_program
from repro.verify import (
    FaultKind,
    check_builders_agree,
    inject_all,
    inject_fault,
    neutral_state,
    verify_schedule,
)
from repro.workloads import generate_blocks, kernel_source, scaled_profile


def first_block(source):
    return [b for b in partition_blocks(parse_asm(source)) if b.size][0]


def scheduled(block, machine, builder_cls):
    outcome = builder_cls(machine).build(block)
    backward_pass(outcome.dag, require_est=False)
    return schedule_forward(outcome.dag, machine, SECTION6_PRIORITY)


class BrokenBuilder(TableForwardBuilder):
    """A builder that always fails construction."""

    name = "broken"

    def _construct(self, dag, space, oracle, stats):
        raise DagError("deliberately broken")


class ArclessBuilder(TableForwardBuilder):
    """A builder that silently drops every dependence arc."""

    name = "arcless"

    def _construct(self, dag, space, oracle, stats):
        pass


class TestVerifySchedule:
    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS,
                             ids=lambda c: c.name)
    def test_honest_schedule_passes(self, daxpy_block, machine,
                                    builder_cls):
        result = scheduled(daxpy_block, machine, builder_cls)
        report = verify_schedule(
            daxpy_block, result.order, machine,
            claimed_issue_times=result.timing.issue_times,
            approach=builder_cls.name)
        assert report.passed, report.failures
        assert {c.name for c in report.checks} == {
            "completeness", "dependence-order", "timing", "semantics"}

    def test_original_order_passes(self, mixed_block, machine):
        report = verify_schedule(mixed_block,
                                 list(mixed_block.instructions), machine)
        assert report.passed

    def test_landskov_figure1_trap_flagged(self, figure1_block, machine):
        result = scheduled(figure1_block, machine, LandskovBuilder)
        report = verify_schedule(
            figure1_block, result.order, machine,
            claimed_issue_times=result.timing.issue_times)
        assert not report.passed
        assert [c.name for c in report.failures] == ["timing"]
        with pytest.raises(VerificationError) as info:
            report.raise_if_failed()
        assert info.value.check == "timing"
        assert info.value.block == figure1_block.label \
            or info.value.block == str(figure1_block.index)

    def test_reference_times_derived_when_not_claimed(self, daxpy_block,
                                                      machine):
        # Landskov's *order* is legal; only its claimed times lie.
        result = scheduled(daxpy_block, machine, LandskovBuilder)
        report = verify_schedule(daxpy_block, result.order, machine)
        assert report.passed

    def test_semantics_skips_unsupported(self, machine):
        block = first_block("ba away\nnop\n")
        report = verify_schedule(block, list(block.instructions), machine)
        semantics = [c for c in report.checks if c.name == "semantics"][0]
        assert semantics.passed
        assert semantics.detail.startswith("skipped")


class TestNeutralState:
    def test_deterministic(self, daxpy_block):
        a = neutral_state(daxpy_block)
        b = neutral_state(daxpy_block)
        assert a.snapshot() == b.snapshot()

    def test_address_registers_get_disjoint_regions(self, daxpy_block):
        state = neutral_state(daxpy_block)
        bases = {state.read_int(name)
                 for name in state.int_regs
                 if state.read_int(name) >= 0x1_0000}
        assert len(bases) >= 1  # every base register is distinct
        assert len(bases) == len({b >> 16 for b in bases})


class TestFaultInjection:
    @pytest.mark.parametrize("kind", list(FaultKind),
                             ids=lambda k: k.value)
    @pytest.mark.parametrize("kernel", ["figure1", "daxpy"])
    def test_every_fault_kind_detected(self, kernel, kind, machine):
        block = first_block(kernel_source(kernel))
        fault = inject_fault(block, machine, kind)
        assert fault is not None, f"{kernel} cannot host {kind.value}"
        report = verify_schedule(
            block, fault.order, machine,
            claimed_issue_times=fault.claimed_issue_times)
        assert not report.passed, fault.description
        assert report.failures

    def test_expected_checks_fire(self, machine):
        block = first_block(kernel_source("daxpy"))
        expected = {
            FaultKind.DROP_ARC: "dependence-order",
            FaultKind.SHRINK_DELAY: "timing",
            FaultKind.SWAP_DEPENDENT_PAIR: "dependence-order",
            FaultKind.DUPLICATE_INSTRUCTION: "completeness",
            FaultKind.LOSE_INSTRUCTION: "completeness",
        }
        for fault in inject_all(block, machine):
            report = verify_schedule(
                block, fault.order, machine,
                claimed_issue_times=fault.claimed_issue_times)
            fired = {c.name for c in report.failures}
            assert expected[fault.kind] in fired, fault.description

    def test_inject_all_covers_every_kind(self, machine):
        block = first_block(kernel_source("daxpy"))
        kinds = {f.kind for f in inject_all(block, machine)}
        assert kinds == set(FaultKind)

    def test_descriptions_name_the_damage(self, machine):
        block = first_block(kernel_source("figure1"))
        for fault in inject_all(block, machine):
            assert fault.description


class TestBuildersAgree:
    @pytest.mark.parametrize("kernel", ["figure1", "daxpy",
                                        "superscalar_mix"])
    def test_all_builders_agree_on_kernels(self, kernel, machine):
        check_builders_agree(first_block(kernel_source(kernel)), machine)

    def test_arc_dropping_builder_is_caught(self, daxpy_block, machine):
        with pytest.raises(BuilderMismatchError) as info:
            check_builders_agree(
                daxpy_block, machine,
                builders=[CompareAllBuilder, ArclessBuilder])
        assert info.value.builder == "arcless"
        assert info.value.node is not None


class TestCrossBuilderDifferential:
    """All five builders must schedule to identical verified makespans
    on integer workloads (no long-latency transitive arcs to lose)."""

    @pytest.mark.parametrize("profile_name", ["grep", "regex", "dfa"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_identical_verified_makespans(self, profile_name, seed):
        machine = generic_risc()
        blocks = generate_blocks(scaled_profile(profile_name, 0.06),
                                 seed=seed)
        outcomes = {}
        for cls in ALL_BUILDERS:
            result = run_pipeline(blocks, machine,
                                  lambda c=cls: c(machine),
                                  verify=True)
            assert not result.failures, \
                (cls.name, result.failures[:1])
            outcomes[cls.name] = result.total_makespan
        assert len(set(outcomes.values())) == 1, outcomes

    def test_fp_workload_exposes_pruning_loss(self):
        # linpack's long FP latencies make some transitive arcs
        # timing-essential: the exact builders still agree, and the
        # verifier flags Landskov's pruned schedules.
        machine = generic_risc()
        blocks = generate_blocks(scaled_profile("linpack", 0.08), seed=3)
        exact = {}
        for cls in (CompareAllBuilder, TableForwardBuilder):
            result = run_pipeline(blocks, machine,
                                  lambda c=cls: c(machine), verify=True)
            assert not result.failures
            exact[cls.name] = result.total_makespan
        assert len(set(exact.values())) == 1
        pruned = run_pipeline(blocks, machine,
                              lambda: LandskovBuilder(machine),
                              verify=True)
        assert pruned.failures
        assert all(f.stage == "verify" for f in pruned.failures)
        assert pruned.total_makespan > next(iter(exact.values()))


class TestGracefulDegradation:
    def test_broken_builder_degrades(self, machine):
        blocks = [b for b in partition_blocks(
            parse_asm(kernel_source("daxpy"))) if b.size]
        result = run_pipeline(blocks, machine,
                              lambda: BrokenBuilder(machine))
        assert result.n_blocks == len(blocks)
        assert len(result.failures) == len(blocks)
        assert all(f.stage == "build" for f in result.failures)
        assert all("deliberately broken" in f.error
                   for f in result.failures)
        assert result.speedup == 1.0  # fallback charges original order

    def test_strict_reraises(self, machine):
        blocks = [b for b in partition_blocks(
            parse_asm(kernel_source("daxpy"))) if b.size]
        with pytest.raises(DagError):
            run_pipeline(blocks, machine,
                         lambda: BrokenBuilder(machine), strict=True)

    def test_arcless_builder_caught_by_verification(self, machine):
        blocks = [b for b in partition_blocks(
            parse_asm(kernel_source("daxpy"))) if b.size]
        # With no arcs, a largest-id-first priority reverses the block;
        # only the independent verifier can notice.
        priority = lambda node, state: node.id
        result = run_pipeline(blocks, machine,
                              lambda: ArclessBuilder(machine),
                              priority=priority, verify=True)
        assert result.failures
        assert all(f.stage == "verify" for f in result.failures)

    def test_transform_emits_original_order_on_failure(self, machine):
        program = parse_asm(kernel_source("daxpy"))
        new_program, report = schedule_program(
            program, machine,
            builder_factory=lambda: BrokenBuilder(machine))
        assert report.failures
        assert report.speedup == 1.0
        assert [i.render() for i in new_program.instructions] \
            == [i.render() for i in program.instructions]

    def test_transform_strict_reraises(self, machine):
        program = parse_asm(kernel_source("daxpy"))
        with pytest.raises(DagError):
            schedule_program(program, machine,
                             builder_factory=lambda: BrokenBuilder(
                                 machine), strict=True)

    def test_clean_run_has_no_failures(self, machine):
        blocks = [b for b in partition_blocks(
            parse_asm(kernel_source("daxpy"))) if b.size]
        result = run_pipeline(blocks, machine,
                              lambda: TableForwardBuilder(machine),
                              verify=True)
        assert result.failures == []

    def test_sparc_pipeline_verifies_clean(self):
        machine = sparcstation2_like()
        blocks = [b for b in partition_blocks(
            parse_asm(kernel_source("daxpy"))) if b.size]
        result = run_pipeline(blocks, machine,
                              lambda: TableForwardBuilder(machine),
                              verify=True)
        assert result.failures == []

    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS,
                             ids=lambda c: c.name)
    def test_sparc_double_pair_delays_survive(self, builder_cls):
        # Regression: a double-register pair emits two arcs for the
        # same (parent, child); the bitmap builder must let them merge
        # to the maximum delay instead of suppressing the second as
        # "already reachable".
        machine = sparcstation2_like()
        block = first_block(kernel_source("daxpy"))
        result = scheduled(block, machine, builder_cls)
        report = verify_schedule(
            block, result.order, machine,
            claimed_issue_times=result.timing.issue_times,
            approach=builder_cls.name)
        assert report.passed, report.failures
