"""Differential harness: columnar fast path vs. the object path.

The columnar package promises *byte identity* with the object world:
identical arcs in identical order, identical
:class:`~repro.dag.builders.base.BuildStats` counters, identical
heuristic annotations, and identical schedules.  These tests assert
that promise over the fuzz harness's generator corpus (layered,
random-arc, and mutated-kernel blocks) plus the hand-written kernels,
for every builder (via the packed round trip) and specifically for the
columnar table-forward kernel against its object twin.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.asm import parse_asm  # noqa: E402
from repro.cfg import partition_blocks  # noqa: E402
from repro.dag.builders import TableForwardBuilder  # noqa: E402
from repro.dag.columnar.builders import (  # noqa: E402
    ColumnarTableForwardBuilder,
)
from repro.dag.columnar.graph import ColumnarDag  # noqa: E402
from repro.dag.columnar.passes import (  # noqa: E402
    columnar_backward_pass,
)
from repro.heuristics.passes import backward_pass  # noqa: E402
from repro.machine.presets import (  # noqa: E402
    generic_risc,
    sparcstation2_like,
)
from repro.pipeline import SECTION6_PRIORITY  # noqa: E402
from repro.runner.fallback import BUILDER_CLASSES  # noqa: E402
from repro.runner.fuzz import (  # noqa: E402
    layered_block,
    mutate_kernel,
    random_arc_block,
)
from repro.scheduling.list_scheduler import schedule_forward  # noqa: E402
from repro.workloads.kernels import (  # noqa: E402
    KERNELS,
    straightline_source,
)

ANNOTATIONS = ("est", "lst", "slack",
               "max_path_to_leaf", "max_delay_to_leaf",
               "max_path_from_root", "max_delay_from_root",
               "n_descendants", "sum_exec_descendants")


def fuzz_corpus(seed: int = 0, iterations: int = 12):
    """Deterministic block corpus from the fuzz generators."""
    blocks = []
    for i in range(iterations):
        rng = random.Random(f"repro-fuzz:{seed}:{i}")
        case_id = f"case-{i}"
        blocks.append(layered_block(rng, case_id))
        blocks.append(random_arc_block(rng, case_id))
        blocks.extend(mutate_kernel(rng))
    return [b for b in blocks if b.instructions]


def kernel_corpus():
    blocks = []
    for name in sorted(KERNELS):
        for copies in (1, 2):
            program = parse_asm(straightline_source(name, copies))
            blocks.extend(b for b in partition_blocks(program)
                          if b.instructions)
    return blocks


def arc_tuples(dag):
    return [(a.parent.id, a.child.id, a.dep, a.delay, str(a.resource))
            for a in dag.arcs()]


def annotations_of(dag):
    return [tuple(getattr(n, f) for f in ANNOTATIONS)
            for n in dag.nodes]


def schedule_of(dag, machine):
    sched = schedule_forward(dag, machine, SECTION6_PRIORITY)
    return [n.id for n in sched.order], sched.timing.makespan


@pytest.mark.parametrize("machine_factory",
                         [generic_risc, sparcstation2_like])
def test_columnar_table_forward_matches_object(machine_factory):
    """Same arcs, counters, annotations, and schedules on the corpus."""
    machine = machine_factory()
    for block in fuzz_corpus() + kernel_corpus():
        obj = TableForwardBuilder(machine).build(block)
        col = ColumnarTableForwardBuilder(machine).build(block)
        assert arc_tuples(obj.dag) == arc_tuples(col.dag)
        assert obj.stats.__dict__ == col.stats.__dict__
        assert obj.dag.n_merged_arcs == col.dag.n_merged_arcs
        assert [str(obj.space.resource(i))
                for i in range(len(obj.space))] \
            == [str(col.space.resource(i))
                for i in range(len(col.space))]
        backward_pass(obj.dag, descendants=True)
        columnar_backward_pass(col.dag, descendants=True)
        assert annotations_of(obj.dag) == annotations_of(col.dag)
        assert schedule_of(obj.dag, machine) \
            == schedule_of(col.dag, machine)


def test_build_packed_materializes_identically():
    """build_packed -> to_dag equals a direct object build."""
    machine = generic_risc()
    columnar = ColumnarTableForwardBuilder(machine)
    for block in fuzz_corpus(seed=1, iterations=6):
        obj = TableForwardBuilder(machine).build(block)
        cdag, cstats = columnar.build_packed(block)
        mdag = cdag.to_dag()
        assert arc_tuples(obj.dag) == arc_tuples(mdag)
        assert mdag.n_merged_arcs == obj.dag.n_merged_arcs
        assert cstats.table_probes == obj.stats.table_probes
        assert cstats.alias_checks == obj.stats.alias_checks
        assert cstats.arcs_added == obj.dag.n_arcs


@pytest.mark.parametrize("builder_name", sorted(BUILDER_CLASSES))
def test_round_trip_preserves_every_builder(builder_name):
    """from_dag -> to_dag is lossless for all five builders' DAGs."""
    machine = generic_risc()
    cls = BUILDER_CLASSES[builder_name]
    for block in fuzz_corpus(seed=2, iterations=4):
        dag = cls(machine).build(block).dag
        round_tripped = ColumnarDag.from_dag(dag).to_dag()
        assert arc_tuples(dag) == arc_tuples(round_tripped)
        assert round_tripped.n_merged_arcs == dag.n_merged_arcs
        backward_pass(dag, descendants=True)
        columnar_backward_pass(round_tripped, descendants=True)
        assert annotations_of(dag) == annotations_of(round_tripped)
        assert schedule_of(dag, machine) \
            == schedule_of(round_tripped, machine)


def test_columnar_driver_matches_both_object_drivers():
    """The vectorized driver agrees with reverse-walk and levels
    (section 4, conclusion 4: the drivers compute the same values)."""
    from repro.heuristics.passes import backward_pass_levels
    machine = generic_risc()
    for block in fuzz_corpus(seed=3, iterations=4):
        dags = [TableForwardBuilder(machine).build(block).dag
                for _ in range(3)]
        backward_pass(dags[0], descendants=True)
        backward_pass_levels(dags[1], descendants=True)
        columnar_backward_pass(dags[2], descendants=True)
        assert annotations_of(dags[0]) == annotations_of(dags[2])
        assert annotations_of(dags[1]) == annotations_of(dags[2])


def test_resolve_chain_columnar_substitutes_table_forward():
    """--columnar swaps the builder class but keeps the entry name."""
    from repro.runner.fallback import resolve_chain
    machine = generic_risc()
    chain = resolve_chain(("table-forward", "n2"), machine,
                          columnar=True)
    assert chain[0][0] == "table-forward"
    assert isinstance(chain[0][1](), ColumnarTableForwardBuilder)
    assert not isinstance(chain[1][1](), ColumnarTableForwardBuilder)


def test_run_batch_columnar_outcomes_identical():
    """run_batch(columnar=True) journals byte-identical records."""
    import json

    from repro.runner.batch import run_batch
    machine = generic_risc()
    blocks = kernel_corpus()[:6]
    for i, block in enumerate(blocks):
        block.index = i
    plain = run_batch(blocks, machine, verify=True)
    fast = run_batch(blocks, machine, verify=True, columnar=True)
    as_records = lambda r: [  # noqa: E731
        json.dumps(o.to_record(), sort_keys=True) for o in r.outcomes]
    assert as_records(plain) == as_records(fast)
    assert plain.build_stats.__dict__ == fast.build_stats.__dict__
