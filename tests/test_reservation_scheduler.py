"""Tests for reservation-table scheduling."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc, sparcstation2_like
from repro.scheduling.priority import winnowing
from repro.scheduling.reservation_scheduler import schedule_with_reservation
from repro.scheduling.timing import verify_order
from repro.workloads import kernel_source

CP = winnowing("max_delay_to_leaf")


def dag_of(source: str, machine):
    blocks = partition_blocks(parse_asm(source))
    dag = TableForwardBuilder(machine).build(blocks[0]).dag
    backward_pass(dag)
    return dag


class TestReservationScheduler:
    def test_legal_schedule(self):
        machine = sparcstation2_like()
        dag = dag_of(kernel_source("daxpy"), machine)
        result = schedule_with_reservation(dag, machine, CP)
        verify_order(result.order, dag)

    def test_issue_times_respect_dependences(self):
        machine = sparcstation2_like()
        dag = dag_of(kernel_source("livermore1"), machine)
        result = schedule_with_reservation(dag, machine, CP)
        issue = {n.id: t for n, t in zip(result.order,
                                         result.timing.issue_times)}
        for node in result.order:
            for arc in node.out_arcs:
                if not arc.child.is_dummy:
                    assert issue[arc.child.id] >= issue[node.id] + arc.delay

    def test_unpipelined_unit_serialized_in_table(self):
        machine = sparcstation2_like()
        dag = dag_of("fdivd %f0, %f2, %f4\nfdivd %f6, %f8, %f10", machine)
        result = schedule_with_reservation(dag, machine, CP)
        t0, t1 = sorted(result.timing.issue_times)
        assert t1 - t0 >= machine.execution_time(
            result.order[0].instr)

    def test_independent_ops_fill_divider_shadow(self):
        machine = sparcstation2_like()
        dag = dag_of("""
            fdivd %f0, %f2, %f4
            mov 1, %o0
            mov 2, %o1
        """, machine)
        result = schedule_with_reservation(dag, machine, CP)
        issue = dict(zip((n.id for n in result.order),
                         result.timing.issue_times))
        # The moves land inside the divide's busy window.
        assert issue[1] < 24 and issue[2] < 24

    def test_terminator_last(self):
        machine = generic_risc()
        dag = dag_of("mov 1, %o0\nmov 2, %o1\nba away", machine)
        result = schedule_with_reservation(dag, machine, CP)
        assert result.order[-1].instr.opcode.mnemonic == "ba"

    def test_makespan_reported(self):
        machine = generic_risc()
        dag = dag_of("mov 1, %o0\nmov 2, %o1", machine)
        result = schedule_with_reservation(dag, machine, CP)
        assert result.makespan >= 2
