"""Deterministic tie-breaking: equal-priority nodes keep original order.

The schedulers break priority ties on the node id (== original
instruction position), so schedules cannot depend on dict/set iteration
order or on the order arcs happened to be inserted.  These tests pin
that contract: shuffling arc-insertion order, or presenting a block of
interchangeable instructions, must not reorder anything.
"""

import random

import pytest

from repro.asm import parse_asm
from repro.asm.parser import parse_instruction_text
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.dag.graph import Dag
from repro.dep import DepType
from repro.heuristics.passes import backward_pass
from repro.pipeline import SECTION6_PRIORITY
from repro.scheduling.list_scheduler import (
    schedule_backward,
    schedule_forward,
)

INDEPENDENT = """\
    add %o0, 1, %o1
    add %o0, 2, %o2
    add %o0, 3, %o3
    add %o0, 4, %o4
    add %o0, 5, %o5
"""


def schedule_ids(machine, dag, priority=None):
    backward_pass(dag, require_est=False)
    if priority is None:
        priority = SECTION6_PRIORITY
    return [n.id for n in
            schedule_forward(dag, machine, priority).order]


class TestEqualPriorityOrder:
    def test_independent_block_keeps_original_order(self, machine):
        block = partition_blocks(parse_asm(INDEPENDENT))[0]
        dag = TableForwardBuilder(machine).build(block).dag
        assert schedule_ids(machine, dag) == list(range(len(block)))

    def test_constant_priority_keeps_original_order(self, machine):
        block = partition_blocks(parse_asm(INDEPENDENT))[0]
        dag = TableForwardBuilder(machine).build(block).dag
        order = schedule_ids(machine, dag,
                             priority=lambda node, state: 0)
        assert order == list(range(len(block)))

    def test_backward_scheduler_ties_on_id(self, machine):
        block = partition_blocks(parse_asm(INDEPENDENT))[0]
        dag = TableForwardBuilder(machine).build(block).dag
        backward_pass(dag, require_est=False)
        result = schedule_backward(dag, machine,
                                   lambda node, state: 0)
        assert [n.id for n in result.order] == list(range(len(block)))


def layered_dag(n: int, arcs, shuffle_seed=None) -> Dag:
    """Build a DAG over ``n`` nop nodes with the given arcs, optionally
    inserting them in a shuffled order."""
    dag = Dag()
    for i in range(n):
        dag.add_node(parse_instruction_text("nop", index=i), 1)
    arcs = list(arcs)
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(arcs)
    for parent, child, delay in arcs:
        dag.add_arc(dag.nodes[parent], dag.nodes[child], DepType.RAW,
                    delay)
    return dag


ARCS = [(0, 3, 2), (1, 3, 2), (2, 4, 2), (0, 4, 2),
        (3, 5, 1), (4, 5, 1), (1, 6, 3), (2, 6, 3)]


class TestInsertionOrderIndependence:
    @pytest.mark.parametrize("seed", range(8))
    def test_shuffled_arc_insertion_same_schedule(self, machine, seed):
        reference = schedule_ids(machine, layered_dag(7, ARCS))
        shuffled = schedule_ids(machine,
                                layered_dag(7, ARCS, shuffle_seed=seed))
        assert shuffled == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_shuffled_insertion_same_annotations(self, machine, seed):
        a = layered_dag(7, ARCS)
        b = layered_dag(7, ARCS, shuffle_seed=seed)
        backward_pass(a)
        backward_pass(b)
        for na, nb in zip(a.nodes, b.nodes):
            assert (na.max_path_to_leaf, na.max_delay_to_leaf,
                    na.lst, na.slack) \
                == (nb.max_path_to_leaf, nb.max_delay_to_leaf,
                    nb.lst, nb.slack)
