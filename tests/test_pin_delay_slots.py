"""Unit tests for delay-slot occupant pinning."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks, pin_delay_slot_occupants


def pinned(source: str):
    return pin_delay_slot_occupants(partition_blocks(parse_asm(source)))


class TestPinning:
    def test_occupant_isolated(self):
        blocks = pinned("""
            cmp %o0, 1
            be away
            add %o0, 1, %o1
            mov 2, %o2
        """)
        # [cmp, be] [add] [mov]
        assert [b.size for b in blocks] == [2, 1, 1]
        assert blocks[1].instructions[0].opcode.mnemonic == "add"

    def test_non_delayed_terminator_not_pinned(self):
        blocks = pinned("""
            save %sp, -96, %sp
            add %i0, %i1, %l2
            mov 2, %l3
        """)
        # SAVE ends the block but has no delay slot.
        assert [b.size for b in blocks] == [1, 2]

    def test_fall_through_blocks_not_pinned(self):
        blocks = pinned("nop\nmid: add %o0, 1, %o1\nmov 2, %o2")
        assert [b.size for b in blocks] == [1, 2]

    def test_renumbering(self):
        blocks = pinned("be x\nnop\nx: be y\nnop\ny: nop")
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_labels_stay_with_occupant(self):
        blocks = pinned("""
            be next
            nop
        next:
            add %o0, 1, %o1
        """)
        # The delay-slot nop starts the labeled block... the label
        # actually sits on the block the partitioner created; pinning
        # keeps it on the first (occupant) chunk.
        slot_block = blocks[1]
        assert slot_block.size == 1
        assert slot_block.instructions[0].opcode.mnemonic == "nop"

    def test_instruction_multiset_preserved(self):
        source = "cmp %o0, 1\nbl a\nadd %o0, 1, %o1\na: mov 2, %o2\nretl\nnop"
        original = partition_blocks(parse_asm(source))
        result = pin_delay_slot_occupants(original)
        flat_before = [i.render() for b in original for i in b]
        flat_after = [i.render() for b in result for i in b]
        assert flat_before == flat_after

    def test_empty_input(self):
        assert pin_delay_slot_occupants([]) == []

    def test_single_instruction_block_after_branch(self):
        blocks = pinned("be x\nnop")
        assert [b.size for b in blocks] == [1, 1]

    def test_windowed_backref_preserved(self):
        from repro.cfg import apply_window
        blocks = apply_window(
            partition_blocks(parse_asm("\n".join(["nop"] * 8))), 4)
        result = pin_delay_slot_occupants(blocks)
        assert [b.windowed_from for b in result] == [0, 0]
