"""Tests for DAG structural statistics."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.dag.forest import attach_dummy_leaf, attach_dummy_root
from repro.dag.stats import ProgramDagStats, dag_stats
from repro.machine import generic_risc


def dag_for(source: str):
    blocks = partition_blocks(parse_asm(source))
    return TableForwardBuilder(generic_risc()).build(blocks[0]).dag


class TestBlockStats:
    def test_counts(self):
        dag = dag_for("mov 1, %o0\nadd %o0, 1, %o1\nadd %o0, %o1, %o2")
        stats = dag_stats(dag)
        assert stats.n_nodes == 3
        assert stats.n_arcs == 3
        assert stats.max_children == 2

    def test_avg_children_is_arcs_over_nodes(self):
        dag = dag_for("mov 1, %o0\nadd %o0, 1, %o1\nadd %o0, %o1, %o2")
        assert dag_stats(dag).avg_children == 1.0

    def test_empty_dag(self):
        from repro.dag.graph import Dag
        stats = dag_stats(Dag())
        assert stats.n_nodes == 0
        assert stats.avg_children == 0.0

    def test_dummy_nodes_excluded(self):
        dag = dag_for("mov 1, %o0\nadd %o0, 1, %o1")
        attach_dummy_root(dag)
        attach_dummy_leaf(dag)
        stats = dag_stats(dag)
        assert stats.n_nodes == 2
        assert stats.n_arcs == 1


class TestProgramStats:
    def test_accumulation(self):
        agg = ProgramDagStats()
        agg.add_dag(dag_for("mov 1, %o0\nadd %o0, 1, %o1"))
        agg.add_dag(dag_for("mov 1, %o0\nadd %o0, 1, %o1\nadd %o0, %o1, %o2"))
        assert agg.n_blocks == 2
        assert agg.n_instructions == 5
        assert agg.total_arcs == 4
        assert agg.max_children == 2
        assert agg.max_arcs_per_block == 3

    def test_averages(self):
        agg = ProgramDagStats()
        agg.add_dag(dag_for("mov 1, %o0\nadd %o0, 1, %o1"))
        agg.add_dag(dag_for("mov 1, %o0\nadd %o0, 1, %o1\nadd %o0, %o1, %o2"))
        assert agg.avg_children == 4 / 5
        assert agg.avg_arcs_per_block == 2.0

    def test_as_row(self):
        agg = ProgramDagStats()
        agg.add_dag(dag_for("mov 1, %o0\nadd %o0, 1, %o1"))
        row = agg.as_row()
        assert set(row) == {"children_max", "children_avg", "arcs_max",
                            "arcs_avg"}

    def test_empty_aggregate(self):
        agg = ProgramDagStats()
        assert agg.avg_children == 0.0
        assert agg.avg_arcs_per_block == 0.0
