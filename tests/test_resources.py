"""Tests for def/use extraction and the resource space."""

import pytest

from repro.asm.parser import parse_instruction_text
from repro.errors import OperandError
from repro.isa.resources import (
    Resource,
    ResourceKind,
    ResourceSpace,
    defs_and_uses,
)


def du(text: str) -> tuple[list[str], list[str]]:
    """Def/use names of a single parsed instruction."""
    defs, uses = defs_and_uses(parse_instruction_text(text))
    return [r.name for r in defs], [r.name for r in uses]


class TestAlu:
    def test_three_operand(self):
        defs, uses = du("add %o1, %o2, %o3")
        assert defs == ["%o3"]
        assert uses == ["%o1", "%o2"]

    def test_immediate_second_operand(self):
        defs, uses = du("add %o1, 4, %o3")
        assert defs == ["%o3"]
        assert uses == ["%o1"]

    def test_symbolic_immediate(self):
        defs, uses = du("or %o1, %lo(sym), %o2")
        assert defs == ["%o2"]
        assert uses == ["%o1"]

    def test_cc_setting_alu(self):
        defs, uses = du("subcc %o1, %o2, %o3")
        assert defs == ["%o3", "%icc"]

    def test_use_order_preserved(self):
        # Operand position matters for asymmetric-bypass latencies.
        _, uses = du("sub %o5, %o1, %o0")
        assert uses == ["%o5", "%o1"]

    def test_same_reg_use_and_def(self):
        defs, uses = du("add %o0, 1, %o0")
        assert defs == ["%o0"]
        assert uses == ["%o0"]


class TestZeroRegister:
    def test_g0_use_dropped(self):
        _, uses = du("add %g0, %o1, %o2")
        assert uses == ["%o1"]

    def test_g0_def_dropped(self):
        defs, _ = du("add %o1, %o2, %g0")
        assert defs == []


class TestCompare:
    def test_cmp_defines_icc(self):
        defs, uses = du("cmp %o1, %o2")
        assert defs == ["%icc"]
        assert uses == ["%o1", "%o2"]

    def test_cmp_immediate(self):
        defs, uses = du("cmp %o1, 10")
        assert uses == ["%o1"]

    def test_tst(self):
        defs, uses = du("tst %o3")
        assert defs == ["%icc"]
        assert uses == ["%o3"]


class TestMovSethi:
    def test_mov_register(self):
        defs, uses = du("mov %o1, %o2")
        assert (defs, uses) == (["%o2"], ["%o1"])

    def test_mov_immediate(self):
        defs, uses = du("mov 42, %o2")
        assert (defs, uses) == (["%o2"], [])

    def test_sethi(self):
        defs, uses = du("sethi 1024, %o2")
        assert (defs, uses) == (["%o2"], [])

    def test_sethi_hi(self):
        defs, uses = du("sethi %hi(sym), %o2")
        assert (defs, uses) == (["%o2"], [])


class TestMemory:
    def test_load_uses_address_and_memory(self):
        defs, uses = du("ld [%fp-8], %o0")
        assert defs == ["%o0"]
        assert uses == ["%i6", "%i6-8"]

    def test_load_indexed(self):
        _, uses = du("ld [%o1+%o2], %o0")
        assert uses == ["%o1", "%o2", "%o1+%o2"]

    def test_store_defines_memory(self):
        defs, uses = du("st %o0, [%fp-8]")
        assert defs == ["%i6-8"]
        assert uses == ["%o0", "%i6"]

    def test_symbol_load_has_no_address_regs(self):
        _, uses = du("ld [counter], %o0")
        assert uses == ["counter"]

    def test_double_load_defines_pair(self):
        defs, uses = du("ldd [%fp-16], %f2")
        assert defs == ["%f2", "%f3"]
        # Both word slots of the double are used.
        assert uses == ["%i6", "%i6-16", "%i6-12"]

    def test_double_int_load_defines_pair(self):
        defs, _ = du("ldd [%fp-16], %o2")
        assert defs == ["%o2", "%o3"]

    def test_double_store_uses_pair(self):
        defs, uses = du("std %f4, [%fp-16]")
        # Both word slots of the double are defined.
        assert defs == ["%i6-16", "%i6-12"]
        assert uses == ["%f4", "%f5", "%i6"]

    def test_double_word_overlap_detected(self):
        # The Figure-1-grade soundness case the semantic property
        # suite caught: std [%fp-12] overlaps ld [%fp-8].
        store_defs, _ = du("std %f0, [%fp-12]")
        _, load_uses = du("ld [%fp-8], %o0")
        assert set(store_defs) & set(load_uses) == {"%i6-8"}

    def test_memory_resource_kind(self):
        defs, _ = defs_and_uses(parse_instruction_text("st %o0, [%fp-8]"))
        assert defs[0].kind is ResourceKind.MEM
        assert defs[0].mem is not None


class TestBranchesAndCalls:
    def test_conditional_branch_uses_icc(self):
        defs, uses = du("be target")
        assert (defs, uses) == ([], ["%icc"])

    def test_fp_branch_uses_fcc(self):
        _, uses = du("fbne target")
        assert uses == ["%fcc"]

    def test_unconditional_branch_uses_nothing(self):
        assert du("ba target") == ([], [])

    def test_call_defines_return_address(self):
        defs, _ = du("call helper")
        assert defs == ["%o7"]

    def test_retl_uses_o7(self):
        _, uses = du("retl")
        assert uses == ["%o7"]

    def test_ret_uses_i7(self):
        _, uses = du("ret")
        assert uses == ["%i7"]


class TestFloat:
    def test_fpop3_double_uses_pairs(self):
        defs, uses = du("faddd %f0, %f2, %f4")
        assert defs == ["%f4", "%f5"]
        assert uses == ["%f0", "%f1", "%f2", "%f3"]

    def test_fpop3_single_no_pairs(self):
        defs, uses = du("fadds %f1, %f2, %f3")
        assert defs == ["%f3"]
        assert uses == ["%f1", "%f2"]

    def test_fcmp_defines_fcc(self):
        defs, uses = du("fcmpd %f0, %f2")
        assert defs == ["%fcc"]
        assert uses == ["%f0", "%f1", "%f2", "%f3"]

    def test_fmovs(self):
        defs, uses = du("fmovs %f1, %f2")
        assert (defs, uses) == (["%f2"], ["%f1"])

    def test_fitod_widens(self):
        defs, uses = du("fitod %f1, %f2")
        assert defs == ["%f2", "%f3"]
        assert uses == ["%f1"]

    def test_fdtoi_narrows(self):
        defs, uses = du("fdtoi %f2, %f1")
        assert defs == ["%f1"]
        assert uses == ["%f2", "%f3"]


class TestMulDiv:
    def test_multiply_defines_y(self):
        defs, _ = du("smul %o1, %o2, %o3")
        assert defs == ["%o3", "%y"]

    def test_divide_defines_y(self):
        defs, _ = du("udiv %o1, %o2, %o3")
        assert "%y" in defs

    def test_back_to_back_multiplies_conflict_on_y(self):
        # Two multiplies carry a WAW dependence through %y even with
        # disjoint register operands.
        d1, _ = du("smul %o1, %o2, %o3")
        d2, _ = du("umul %o4, %o5, %l0")
        assert set(d1) & set(d2) == {"%y"}


class TestNopWindow:
    def test_nop(self):
        assert du("nop") == ([], [])

    def test_save(self):
        defs, uses = du("save %sp, -96, %sp")
        assert defs == ["%o6"]
        assert uses == ["%o6"]


class TestResourceSpace:
    def test_interning_is_stable(self):
        space = ResourceSpace()
        r = Resource(ResourceKind.REG, "%o1")
        assert space.intern(r) == space.intern(r) == 0

    def test_ids_are_dense(self):
        space = ResourceSpace()
        ids = [space.intern(Resource(ResourceKind.REG, f"%o{i}"))
               for i in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_resource_roundtrip(self):
        space = ResourceSpace()
        r = Resource(ResourceKind.CC, "%icc")
        rid = space.intern(r)
        assert space.resource(rid) is r

    def test_memory_ids_tracked(self):
        space = ResourceSpace()
        i1 = space.intern(Resource(ResourceKind.REG, "%o0"))
        defs, uses = defs_and_uses(parse_instruction_text("st %o0, [%fp-8]"))
        for r in (*defs, *uses):
            space.intern(r)
        assert space.n_memory_exprs == 1
        assert len(space.memory_ids) == 1

    def test_intern_instruction(self):
        space = ResourceSpace()
        instr = parse_instruction_text("add %o1, %o2, %o3")
        def_ids, use_ids = space.intern_instruction(instr)
        assert len(def_ids) == 1
        assert len(use_ids) == 2
        assert len(space) == 3


class TestErrors:
    def test_wrong_arity(self):
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import lookup_opcode
        bad = Instruction(0, lookup_opcode("add"), ())
        with pytest.raises(OperandError):
            defs_and_uses(bad)

    def test_wrong_operand_type(self):
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import lookup_opcode
        from repro.isa.operands import ImmOperand
        bad = Instruction(0, lookup_opcode("add"),
                          (ImmOperand(1), ImmOperand(2), ImmOperand(3)))
        with pytest.raises(OperandError):
            defs_and_uses(bad)
