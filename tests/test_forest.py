"""Tests for forests and dummy nodes."""

from repro.asm.parser import parse_instruction_text
from repro.dep import DepType
from repro.dag.forest import (
    attach_dummy_leaf,
    attach_dummy_root,
    forest_components,
    forest_leaves,
    forest_roots,
)
from repro.dag.graph import Dag


def two_tree_forest() -> Dag:
    """Components {0->1, 0->2} and {3->4}."""
    dag = Dag()
    for i in range(5):
        dag.add_node(parse_instruction_text("nop", index=i),
                     execution_time=i + 1)
    dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
    dag.add_arc(dag.nodes[0], dag.nodes[2], DepType.RAW, 1)
    dag.add_arc(dag.nodes[3], dag.nodes[4], DepType.RAW, 1)
    return dag


class TestForestQueries:
    def test_roots(self):
        dag = two_tree_forest()
        assert [n.id for n in forest_roots(dag)] == [0, 3]

    def test_leaves(self):
        dag = two_tree_forest()
        assert [n.id for n in forest_leaves(dag)] == [1, 2, 4]

    def test_components(self):
        dag = two_tree_forest()
        comps = forest_components(dag)
        assert [[n.id for n in c] for c in comps] == [[0, 1, 2], [3, 4]]

    def test_isolated_node_is_own_component(self):
        dag = Dag()
        dag.add_node(parse_instruction_text("nop"))
        assert len(forest_components(dag)) == 1


class TestDummyRoot:
    def test_connects_all_roots(self):
        # "a unique dummy root node as the parent of all true roots"
        dag = two_tree_forest()
        dummy = attach_dummy_root(dag)
        assert dag.dummy_root is dummy
        assert {a.child.id for a in dummy.out_arcs} == {0, 3}

    def test_dummy_arcs_have_zero_delay(self):
        dag = two_tree_forest()
        dummy = attach_dummy_root(dag)
        assert all(a.delay == 0 for a in dummy.out_arcs)

    def test_idempotent(self):
        dag = two_tree_forest()
        d1 = attach_dummy_root(dag)
        d2 = attach_dummy_root(dag)
        assert d1 is d2
        assert len(dag) == 6

    def test_roots_after_attachment(self):
        dag = two_tree_forest()
        attach_dummy_root(dag)
        assert forest_roots(dag) != []  # true roots still identified


class TestDummyLeaf:
    def test_connects_all_leaves(self):
        dag = two_tree_forest()
        dummy = attach_dummy_leaf(dag)
        assert {a.parent.id for a in dummy.in_arcs} == {1, 2, 4}

    def test_leaf_arc_delay_is_execution_time(self):
        # So the dummy leaf's EST equals the critical path length.
        dag = two_tree_forest()
        dummy = attach_dummy_leaf(dag)
        for arc in dummy.in_arcs:
            assert arc.delay == arc.parent.execution_time

    def test_idempotent(self):
        dag = two_tree_forest()
        assert attach_dummy_leaf(dag) is attach_dummy_leaf(dag)

    def test_est_of_dummy_leaf_is_critical_path(self):
        from repro.heuristics.passes import forward_pass
        dag = two_tree_forest()
        dummy = attach_dummy_leaf(dag)
        forward_pass(dag)
        # Critical path: 0 (exec 1) -> arc 1 -> 2 (exec 3) -> dummy: 1+3=4;
        # component 2: 3 -> 4 (exec 5): 1 + 5 = 6.
        assert dummy.est == 6
