"""Tests for transitive-arc classification and removal."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import CompareAllBuilder, TableBackwardBuilder
from repro.dag.transitive import (
    classify_arcs,
    longest_alternative_delay,
    remove_transitive_arcs,
    timing_essential_arcs,
)
from repro.machine import generic_risc
from repro.workloads import kernel_source


def figure1_dag(machine=None):
    machine = machine or generic_risc()
    blocks = partition_blocks(parse_asm(kernel_source("figure1")))
    return TableBackwardBuilder(machine).build(blocks[0]).dag


class TestClassification:
    def test_figure1_transitive_arc_identified(self):
        dag = figure1_dag()
        labels = classify_arcs(dag)
        transitive = [(a.parent.id, a.child.id)
                      for a, t in labels.items() if t]
        assert transitive == [(0, 2)]

    def test_essential_arcs_not_flagged(self):
        dag = figure1_dag()
        labels = classify_arcs(dag)
        essential = [(a.parent.id, a.child.id)
                     for a, t in labels.items() if not t]
        assert sorted(essential) == [(0, 1), (1, 2)]

    def test_chain_has_no_transitive_arcs(self):
        blocks = partition_blocks(parse_asm(
            "mov 1, %o0\nadd %o0, 1, %o1\nadd %o1, 1, %o2"))
        dag = TableBackwardBuilder(generic_risc()).build(blocks[0]).dag
        assert not any(classify_arcs(dag).values())


class TestAlternativePath:
    def test_figure1_alternative_delay(self):
        # The WAR(1) + RAW(4) path totals 5 cycles.
        dag = figure1_dag()
        arc = next(a for a in dag.arcs()
                   if a.parent.id == 0 and a.child.id == 2)
        assert longest_alternative_delay(dag, arc) == 5

    def test_no_alternative_returns_none(self):
        dag = figure1_dag()
        arc = next(a for a in dag.arcs()
                   if a.parent.id == 1 and a.child.id == 2)
        assert longest_alternative_delay(dag, arc) is None


class TestTimingEssential:
    def test_figure1_arc_is_timing_essential(self):
        # 20-cycle arc vs a 5-cycle alternative path: removing it would
        # underestimate node 3's earliest execution time by 15 cycles.
        dag = figure1_dag()
        essential = timing_essential_arcs(dag)
        assert [(a.parent.id, a.child.id, a.delay)
                for a in essential] == [(0, 2, 20)]

    def test_short_transitive_arc_not_essential(self):
        # A transitive arc whose delay is covered by the path is not
        # timing-essential.
        blocks = partition_blocks(parse_asm("""
            add %o0, 1, %o1
            add %o1, 1, %o2
            add %o1, %o2, %o3
        """))
        dag = CompareAllBuilder(generic_risc()).build(blocks[0]).dag
        labels = classify_arcs(dag)
        assert any(labels.values())  # 1->3 RAW is transitive
        assert timing_essential_arcs(dag) == []


class TestRemoval:
    def test_remove_all_transitive(self):
        dag = figure1_dag()
        removed = remove_transitive_arcs(dag)
        assert [(a.parent.id, a.child.id) for a in removed] == [(0, 2)]
        assert dag.n_arcs == 2

    def test_keep_timing_essential(self):
        dag = figure1_dag()
        removed = remove_transitive_arcs(dag, keep_timing_essential=True)
        assert removed == []
        assert dag.n_arcs == 3

    def test_removal_preserves_reachability(self):
        from repro.dag.bitmap import compute_reachability
        blocks = partition_blocks(parse_asm(kernel_source("daxpy")))
        machine = generic_risc()
        full = CompareAllBuilder(machine).build(blocks[0]).dag
        before = compute_reachability(full)
        closure_before = {(i, j) for i in range(len(full))
                          for j in before.descendants(i)}
        remove_transitive_arcs(full)
        after = compute_reachability(full)
        closure_after = {(i, j) for i in range(len(full))
                         for j in after.descendants(i)}
        assert closure_before == closure_after

    def test_removal_corrupts_earliest_time(self):
        # The quantitative Figure 1 claim: after removal, the forward
        # pass underestimates node 3's EST (5 instead of 20).
        from repro.heuristics.passes import forward_pass
        dag = figure1_dag()
        forward_pass(dag)
        assert dag.nodes[2].est == 20
        remove_transitive_arcs(dag)
        forward_pass(dag)
        assert dag.nodes[2].est == 5
