"""Tests for the five DAG construction algorithms.

The Figure 1 example from the paper is the canonical fixture: nodes
DIVF(20cy) / ADDF(4cy) / ADDF with a WAR(1) arc 1->2, a RAW(4) arc
2->3, and the *transitive but timing-essential* RAW(20) arc 1->3.
"""

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import (
    ALL_BUILDERS,
    BitmapBackwardBuilder,
    CompareAllBuilder,
    LandskovBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.dag.bitmap import compute_reachability
from repro.dep import DepType
from repro.isa.memory import AliasPolicy
from repro.machine import generic_risc


def build(builder_cls, source: str, machine=None, **kwargs):
    machine = machine or generic_risc()
    blocks = partition_blocks(parse_asm(source))
    assert len(blocks) == 1
    return builder_cls(machine, **kwargs).build(blocks[0])


def arc_set(dag):
    return {(a.parent.id, a.child.id, a.dep, a.delay) for a in dag.arcs()}


FIGURE1 = """
    fdivd %f0, %f2, %f4
    faddd %f6, %f8, %f0
    faddd %f0, %f4, %f10
"""


class TestFigure1:
    """Each builder against the paper's Figure 1 block."""

    def test_compare_all_has_all_three_arcs(self, machine):
        out = build(CompareAllBuilder, FIGURE1, machine)
        assert arc_set(out.dag) == {
            (0, 1, DepType.WAR, 1),
            (0, 2, DepType.RAW, 20),
            (1, 2, DepType.RAW, 4),
        }

    def test_table_forward_retains_essential_arc(self, machine):
        # "The table building methods discussed above will retain this
        # kind of arc."
        out = build(TableForwardBuilder, FIGURE1, machine)
        assert (0, 2, DepType.RAW, 20) in arc_set(out.dag)

    def test_table_backward_retains_essential_arc(self, machine):
        out = build(TableBackwardBuilder, FIGURE1, machine)
        assert (0, 2, DepType.RAW, 20) in arc_set(out.dag)

    def test_landskov_drops_transitive_arc(self, machine):
        # The paper's argument AGAINST Landskov-style pruning.
        out = build(LandskovBuilder, FIGURE1, machine)
        assert (0, 2, DepType.RAW, 20) not in arc_set(out.dag)
        assert len(arc_set(out.dag)) == 2

    def test_bitmap_defs_first_retains_essential_arc(self, machine):
        # Paper pseudocode order (defs before uses): the long RAW arc
        # is inserted before the short WAR that would shadow it.
        out = build(BitmapBackwardBuilder, FIGURE1, machine)
        assert (0, 2, DepType.RAW, 20) in arc_set(out.dag)

    def test_bitmap_uses_first_loses_essential_arc(self, machine):
        out = build(BitmapBackwardBuilder, FIGURE1, machine,
                    uses_first=True)
        assert (0, 2, DepType.RAW, 20) not in arc_set(out.dag)

    def test_table_methods_agree(self, machine):
        fw = build(TableForwardBuilder, FIGURE1, machine)
        bw = build(TableBackwardBuilder, FIGURE1, machine)
        assert arc_set(fw.dag) == arc_set(bw.dag)


SEQ = """
    ld [%fp-8], %o0
    add %o0, 1, %o1
    st %o1, [%fp-8]
    ld [%fp-8], %o2
    add %o2, %o1, %o3
    st %o3, [%fp-12]
"""


class TestDependenceKinds:
    def test_raw_through_register(self, machine):
        out = build(TableForwardBuilder, "ld [%fp-8], %o0\nadd %o0, 1, %o1")
        arcs = arc_set(out.dag)
        assert (0, 1, DepType.RAW, 2) in arcs

    def test_war_through_register(self, machine):
        out = build(TableForwardBuilder,
                    "add %o0, 1, %o1\nmov 5, %o0")
        assert (0, 1, DepType.WAR, 1) in arc_set(out.dag)

    def test_waw_through_register(self, machine):
        out = build(TableForwardBuilder, "mov 1, %o0\nmov 2, %o0")
        assert (0, 1, DepType.WAW, 1) in arc_set(out.dag)

    def test_store_load_raw_through_memory(self, machine):
        out = build(TableForwardBuilder,
                    "st %o0, [%fp-8]\nld [%fp-8], %o1")
        arcs = arc_set(out.dag)
        assert any(p == 0 and c == 1 and d is DepType.RAW
                   for p, c, d, _ in arcs)

    def test_load_store_war_through_memory(self, machine):
        out = build(TableForwardBuilder,
                    "ld [%fp-8], %o1\nst %o0, [%fp-8]")
        arcs = arc_set(out.dag)
        assert any(p == 0 and c == 1 and d is DepType.WAR
                   for p, c, d, _ in arcs)

    def test_store_store_waw_through_memory(self, machine):
        out = build(TableForwardBuilder,
                    "st %o0, [%fp-8]\nst %o1, [%fp-8]")
        arcs = arc_set(out.dag)
        assert any(p == 0 and c == 1 and d is DepType.WAW
                   for p, c, d, _ in arcs)

    def test_independent_loads_unordered(self, machine):
        out = build(TableForwardBuilder,
                    "ld [%fp-8], %o0\nld [%fp-8], %o1")
        # Two loads of the same location do not depend on each other.
        assert not any(d is not DepType.RAW for _, _, d, _
                       in arc_set(out.dag))
        assert out.dag.n_arcs == 0

    def test_cc_dependence_orders_cmp_and_branch(self, machine):
        out = build(TableForwardBuilder, "cmp %o0, 1\nbe away")
        assert any(p == 0 and c == 1 and d is DepType.RAW
                   for p, c, d, _ in arc_set(out.dag))

    def test_same_reg_use_then_def_no_self_arc(self, machine):
        for cls in ALL_BUILDERS:
            out = build(cls, "add %o0, 1, %o0\nadd %o0, 1, %o0")
            assert all(a.parent is not a.child for a in out.dag.arcs())


class TestBuilderEquivalence:
    """All builders must produce the same *ordering constraints* (the
    transitive closure), even when they keep different arc sets."""

    @pytest.mark.parametrize("source", [FIGURE1, SEQ, """
        ld [%o0], %o1
        ld [%o0+4], %o2
        add %o1, %o2, %o3
        smul %o3, %o1, %o4
        st %o4, [%o0]
        st %o3, [%o0+4]
        cmp %o4, 7
        bg somewhere
    """])
    def test_same_transitive_closure(self, source, machine):
        reference = None
        for cls in ALL_BUILDERS:
            out = build(cls, source, machine)
            rmap = compute_reachability(out.dag)
            closure = {(i, j) for i in range(len(out.dag))
                       for j in rmap.descendants(i)}
            if reference is None:
                reference = closure
            else:
                assert closure == reference, cls.name

    def test_compare_all_is_arc_superset(self, machine):
        pairs = lambda dag: {(a.parent.id, a.child.id)
                             for a in dag.arcs()}
        full = pairs(build(CompareAllBuilder, SEQ, machine).dag)
        for cls in (TableForwardBuilder, TableBackwardBuilder,
                    LandskovBuilder, BitmapBackwardBuilder):
            assert pairs(build(cls, SEQ, machine).dag) <= full, cls.name

    def test_landskov_never_has_transitive_arcs(self, machine):
        from repro.dag.transitive import classify_arcs
        out = build(LandskovBuilder, SEQ, machine)
        assert not any(classify_arcs(out.dag).values())


class TestWorkCounters:
    def test_n2_comparison_count(self, machine):
        out = build(CompareAllBuilder, "nop\n" * 10, machine)
        assert out.stats.comparisons == 45  # 10 choose 2

    def test_landskov_compares_at_most_n2(self, machine):
        full = build(CompareAllBuilder, SEQ, machine).stats.comparisons
        pruned = build(LandskovBuilder, SEQ, machine).stats.comparisons
        assert pruned <= full

    def test_table_builders_do_no_pair_comparisons(self, machine):
        for cls in (TableForwardBuilder, TableBackwardBuilder):
            out = build(cls, SEQ, machine)
            assert out.stats.comparisons == 0
            assert out.stats.table_probes > 0

    def test_arcs_added_matches_dag(self, machine):
        for cls in ALL_BUILDERS:
            out = build(cls, SEQ, machine)
            assert out.stats.arcs_added == out.dag.n_arcs

    def test_bitmap_builder_counts_suppressions(self, machine):
        out = build(BitmapBackwardBuilder, SEQ, machine, uses_first=True)
        plain = build(TableBackwardBuilder, SEQ, machine)
        assert out.dag.n_arcs + out.stats.arcs_suppressed >= plain.dag.n_arcs


class TestMemoryPolicies:
    DIFFERENT_OFFSETS = "st %o0, [%fp-8]\nld [%fp-12], %o1"
    DIFFERENT_BASES = "st %o0, [%l0]\nld [%l1], %o1"
    PTR_VS_STACK = "st %o0, [%l0]\nld [%fp-8], %o1"

    def _n_mem_arcs(self, source, policy, machine):
        blocks = partition_blocks(parse_asm(source))
        out = TableForwardBuilder(machine, alias_policy=policy).build(
            blocks[0])
        from repro.isa.resources import ResourceKind
        return sum(1 for a in out.dag.arcs()
                   if a.resource is not None
                   and a.resource.kind is ResourceKind.MEM)

    def test_strict_serializes_everything(self, machine):
        for src in (self.DIFFERENT_OFFSETS, self.DIFFERENT_BASES,
                    self.PTR_VS_STACK):
            assert self._n_mem_arcs(src, AliasPolicy.STRICT, machine) == 1

    def test_expression_separates_everything(self, machine):
        for src in (self.DIFFERENT_OFFSETS, self.DIFFERENT_BASES,
                    self.PTR_VS_STACK):
            assert self._n_mem_arcs(src, AliasPolicy.EXPRESSION,
                                    machine) == 0

    def test_base_offset_rules(self, machine):
        assert self._n_mem_arcs(self.DIFFERENT_OFFSETS,
                                AliasPolicy.BASE_OFFSET, machine) == 0
        assert self._n_mem_arcs(self.DIFFERENT_BASES,
                                AliasPolicy.BASE_OFFSET, machine) == 1
        assert self._n_mem_arcs(self.PTR_VS_STACK,
                                AliasPolicy.BASE_OFFSET, machine) == 1

    def test_storage_class_frees_pointer_vs_stack(self, machine):
        assert self._n_mem_arcs(self.PTR_VS_STACK,
                                AliasPolicy.STORAGE_CLASS, machine) == 0
        assert self._n_mem_arcs(self.DIFFERENT_BASES,
                                AliasPolicy.STORAGE_CLASS, machine) == 1

    def test_policy_affects_all_builders_consistently(self, machine):
        for cls in ALL_BUILDERS:
            blocks = partition_blocks(parse_asm(self.PTR_VS_STACK))
            strict = cls(machine,
                         alias_policy=AliasPolicy.STRICT).build(blocks[0])
            relaxed = cls(machine,
                          alias_policy=AliasPolicy.STORAGE_CLASS).build(
                blocks[0])
            assert strict.dag.n_arcs >= relaxed.dag.n_arcs, cls.name


class TestDelayDetails:
    def test_pair_load_skew_visible_in_arcs(self, sparc_machine):
        # The odd register of an ldd pair arrives one cycle later.
        src = "ldd [%fp-8], %f2\nfmovs %f2, %f10\nfmovs %f3, %f11"
        blocks = partition_blocks(parse_asm(src))
        out = TableForwardBuilder(sparc_machine).build(blocks[0])
        delays = {(a.parent.id, a.child.id): a.delay
                  for a in out.dag.arcs()}
        assert delays[(0, 2)] == delays[(0, 1)] + 1

    def test_asymmetric_bypass_visible_in_arcs(self, rs6000_machine):
        src = "ld [%o0], %o1\nadd %o1, %o2, %o3\nadd %o2, %o1, %o4"
        blocks = partition_blocks(parse_asm(src))
        out = TableForwardBuilder(rs6000_machine).build(blocks[0])
        delays = {(a.parent.id, a.child.id): a.delay
                  for a in out.dag.arcs()}
        # Second-operand consumer (node 2) pays the bypass penalty.
        assert delays[(0, 2)] == delays[(0, 1)] + 1

    def test_unique_mem_exprs_counted(self, machine):
        out = build(TableForwardBuilder, SEQ, machine)
        assert out.space.n_memory_exprs == 2  # %i6-8 and %i6-12
