"""Unit tests for the architectural interpreter."""

import math
import struct

import pytest

from repro.asm import parse_asm
from repro.interp import (
    Interpreter,
    MachineState,
    UnsupportedInstruction,
    execute,
)


def run(source: str, state: MachineState | None = None) -> MachineState:
    state = state or MachineState()
    return execute(parse_asm(source).instructions, state)


class TestIntegerOps:
    def test_mov_and_add(self):
        state = run("mov 5, %o0\nadd %o0, 3, %o1")
        assert state.read_int("%o1") == 8

    def test_g0_reads_zero(self):
        state = MachineState()
        state.int_regs["%g0"] = 99  # even if poked directly
        out = run("add %g0, 7, %o0", state)
        assert out.read_int("%o0") == 7

    def test_g0_write_discarded(self):
        state = run("mov 5, %g0")
        assert state.read_int("%g0") == 0

    def test_wraparound(self):
        state = MachineState()
        state.write_int("%o0", 0xFFFFFFFF)
        out = run("add %o0, 1, %o1", state)
        assert out.read_int("%o1") == 0

    def test_logic_ops(self):
        state = run("""
            mov 12, %o0
            mov 10, %o1
            and %o0, %o1, %o2
            or %o0, %o1, %o3
            xor %o0, %o1, %o4
        """)
        assert state.read_int("%o2") == 8
        assert state.read_int("%o3") == 14
        assert state.read_int("%o4") == 6

    def test_shifts(self):
        state = MachineState()
        state.write_int("%o0", 0x80000000)
        out = run("sra %o0, 4, %o1\nsrl %o0, 4, %o2\nsll %o0, 1, %o3",
                  state)
        assert out.read_int("%o1") == 0xF8000000
        assert out.read_int("%o2") == 0x08000000
        assert out.read_int("%o3") == 0

    def test_sethi(self):
        state = run("sethi 100, %o0")
        assert state.read_int("%o0") == 100 << 10

    def test_smul_sets_y(self):
        state = run("mov 65536, %o0\nsmul %o0, %o0, %o1\nrd %y, %o2")
        assert state.read_int("%o1") == 0  # low 32 bits of 2^32
        assert state.read_int("%o2") == 1  # high 32 bits

    def test_sdiv(self):
        state = run("mov 42, %o0\nsdiv %o0, 5, %o1")
        assert state.read_int("%o1") == 8

    def test_division_by_zero_is_deterministic(self):
        a = run("mov 1, %o0\nsdiv %o0, 0, %o1").read_int("%o1")
        b = run("mov 1, %o0\nsdiv %o0, 0, %o1").read_int("%o1")
        assert a == b == 0

    def test_wr_rd_y(self):
        state = run("mov 77, %o0\nwr %o0, %y\nrd %y, %o1")
        assert state.read_int("%o1") == 77


class TestConditionCodes:
    def test_cmp_sets_zero_flag(self):
        state = run("mov 5, %o0\ncmp %o0, 5")
        n, z, v, c = state.icc
        assert z and not n

    def test_cmp_negative(self):
        state = run("mov 3, %o0\ncmp %o0, 5")
        n, z, v, c = state.icc
        assert n and not z and c

    def test_carry_chain_64bit_add(self):
        # 0xFFFFFFFF + 1 in the low word carries into the high word.
        state = run("""
            mov -1, %o1
            mov 0, %o2
            mov 1, %o3
            mov 0, %o4
            addcc %o1, %o3, %o5
            addx %o2, %o4, %l2
        """)
        assert state.read_int("%o5") == 0
        assert state.read_int("%l2") == 1

    def test_addxcc_updates_carry(self):
        state = run("""
            mov -1, %o1
            addcc %o1, 1, %o2
            addxcc %o1, 0, %o3
        """)
        # First add carried; addxcc adds it: -1 + 0 + 1 = 0, carry out.
        assert state.read_int("%o3") == 0
        assert state.icc[3]


class TestMemory:
    def test_store_load_roundtrip(self):
        state = MachineState()
        state.write_int("%i6", 0x1000)
        out = run("mov 42, %o0\nst %o0, [%fp-8]\nld [%fp-8], %o1", state)
        assert out.read_int("%o1") == 42

    def test_byte_and_half(self):
        state = MachineState()
        state.write_int("%o0", 0x2000)
        out = run("""
            mov 511, %o1
            sth %o1, [%o0]
            ldub [%o0], %o2
            lduh [%o0], %o3
            ldsb [%o0+1], %o4
        """, state)
        assert out.read_int("%o3") == 511
        assert out.read_int("%o2") == 1      # high byte (big-endian)
        assert out.read_int("%o4") == 0xFFFFFFFF  # 0xFF sign-extended

    def test_symbol_addresses_are_stable(self):
        out = run("mov 9, %o0\nst %o0, [counter]\nld [counter], %o1")
        assert out.read_int("%o1") == 9

    def test_distinct_symbols_distinct_slots(self):
        out = run("""
            mov 1, %o0
            st %o0, [a]
            mov 2, %o1
            st %o1, [b]
            ld [a], %o2
        """)
        assert out.read_int("%o2") == 1

    def test_ldd_std_integer_pairs(self):
        state = MachineState()
        state.write_int("%o0", 0x3000)
        state.write_int("%o2", 17)
        state.write_int("%o3", 23)
        out = run("std %o2, [%o0]\nldd [%o0], %o4", state)
        assert out.read_int("%o4") == 17
        assert out.read_int("%o5") == 23

    def test_swap(self):
        state = MachineState()
        state.write_int("%o0", 0x4000)
        out = run("""
            mov 5, %o1
            st %o1, [%o0]
            mov 9, %o2
            swap [%o0], %o2
        """, state)
        assert out.read_int("%o2") == 5
        assert out.load_bytes(0x4000, 4) == 9

    def test_ldstub(self):
        state = MachineState()
        state.write_int("%o0", 0x5000)
        out = run("ldstub [%o0], %o1", state)
        assert out.read_int("%o1") == 0
        assert out.load_bytes(0x5000, 1) == 0xFF


class TestFloat:
    def test_double_arithmetic(self):
        state = MachineState()
        state.write_double("%f0", 3.0)
        state.write_double("%f2", 4.0)
        out = run("fmuld %f0, %f2, %f4\nfaddd %f4, %f0, %f6", state)
        assert out.read_double("%f4") == 12.0
        assert out.read_double("%f6") == 15.0

    def test_single_arithmetic(self):
        state = MachineState()
        state.write_single("%f1", 1.5)
        state.write_single("%f2", 2.0)
        out = run("fmuls %f1, %f2, %f3", state)
        assert out.read_single("%f3") == 3.0

    def test_double_memory_roundtrip(self):
        state = MachineState()
        state.write_int("%o0", 0x6000)
        state.write_double("%f0", math.pi)
        out = run("std %f0, [%o0]\nldd [%o0], %f2", state)
        assert out.read_double("%f2") == math.pi

    def test_fneg_fmov_double_idiom(self):
        # The V8 double-negate idiom must actually negate.
        state = MachineState()
        state.write_double("%f0", 2.5)
        out = run("fnegs %f0, %f2\nfmovs %f1, %f3", state)
        assert out.read_double("%f2") == -2.5

    def test_fabss(self):
        state = MachineState()
        state.write_single("%f1", -7.0)
        out = run("fabss %f1, %f2", state)
        assert out.read_single("%f2") == 7.0

    def test_fitod_fdtoi_roundtrip(self):
        state = MachineState()
        state.write_fp_word("%f1", 0xFFFFFFFF & -42)
        out = run("fitod %f1, %f2\nfdtoi %f2, %f4", state)
        assert out.read_double("%f2") == -42.0
        assert out.read_fp_word("%f4") == 0xFFFFFFFF & -42

    def test_conversions_single_double(self):
        state = MachineState()
        state.write_single("%f1", 1.25)
        out = run("fstod %f1, %f2\nfdtos %f2, %f5", state)
        assert out.read_double("%f2") == 1.25
        assert out.read_single("%f5") == 1.25

    def test_fcmpd(self):
        state = MachineState()
        state.write_double("%f0", 1.0)
        state.write_double("%f2", 2.0)
        out = run("fcmpd %f0, %f2", state)
        assert out.fcc == 1  # less

    def test_division_by_zero_deterministic(self):
        state = MachineState()
        state.write_double("%f0", 1.0)
        state.write_double("%f2", 0.0)
        out = run("fdivd %f0, %f2, %f4", state)
        assert math.isinf(out.read_double("%f4"))


class TestControl:
    def test_branch_unsupported(self):
        with pytest.raises(UnsupportedInstruction):
            run("ba somewhere")

    def test_save_unsupported(self):
        with pytest.raises(UnsupportedInstruction):
            run("save %sp, -96, %sp")

    def test_nop_is_noop(self):
        before = MachineState()
        after = run("nop", before)
        assert after.snapshot() == before.snapshot()


class TestState:
    def test_copy_is_independent(self):
        a = MachineState()
        a.write_int("%o0", 1)
        b = a.copy()
        b.write_int("%o0", 2)
        assert a.read_int("%o0") == 1

    def test_snapshot_equality(self):
        a = run("mov 1, %o0\nmov 2, %o1")
        b = run("mov 2, %o1\nmov 1, %o0")
        assert a.snapshot() == b.snapshot()
