"""Tests for --jobs batch runs, work accounting, and the benchmark."""

import json

import pytest

from repro.asm import parse_asm
from repro.cfg import apply_window, partition_blocks
from repro.dag.builders import CompareAllBuilder, PairwiseCache
from repro.errors import ReproError
from repro.runner import (
    Attempt,
    Budget,
    DEFAULT_CHAIN,
    RunJournal,
    resolve_chain,
    run_batch,
    run_fingerprint,
    schedule_block_resilient,
)
from repro.runner.bench import bench_blocks, run_bench, write_bench
from repro.workloads import KERNELS, kernel_source

COUNTERS = ("comparisons", "table_probes", "alias_checks",
            "arcs_added", "arcs_merged", "arcs_suppressed",
            "bitmap_ops")


@pytest.fixture
def blocks():
    source = "\n".join(kernel_source(k) for k in sorted(KERNELS))
    program = parse_asm(source, name="all-kernels")
    return apply_window(partition_blocks(program), 16)


def records(result):
    return [json.dumps(o.to_record(), sort_keys=True)
            for o in result.outcomes]


class TestParallelBatch:
    def test_jobs_matches_serial(self, machine, blocks):
        serial = run_batch(blocks, machine, verify=True)
        parallel = run_batch(blocks, machine, verify=True, jobs=2)
        assert records(serial) == records(parallel)
        for c in COUNTERS:
            assert getattr(serial.build_stats, c) \
                == getattr(parallel.build_stats, c)
        assert serial.dag_stats.as_row() == parallel.dag_stats.as_row()
        assert serial.n_blocks == parallel.n_blocks
        assert serial.total_makespan == parallel.total_makespan

    def test_jobs_with_cache_matches_serial(self, machine, blocks):
        serial = run_batch(blocks, machine, verify=True)
        parallel = run_batch(blocks, machine, verify=True, jobs=2,
                             cache=PairwiseCache())
        assert records(serial) == records(parallel)

    def test_jobs_journal_identical_modulo_wall_clock(
            self, machine, blocks, tmp_path):
        # Journal lines are byte-identical between serial and parallel
        # runs except for the volatile per-block wall_s field, which is
        # host/load-dependent by nature (but must be present in both).
        fp = run_fingerprint("src", "generic", list(DEFAULT_CHAIN))
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        with RunJournal.open_fresh(str(serial_path), fp) as journal:
            run_batch(blocks, machine, verify=True, journal=journal)
        with RunJournal.open_fresh(str(parallel_path), fp) as journal:
            run_batch(blocks, machine, verify=True, journal=journal,
                      jobs=2)

        def canonical(path):
            from repro.runner.journal import parse_record_line
            out = []
            for line in path.read_text().splitlines():
                record, kind, _ = parse_record_line(line)
                assert kind is None, kind
                if record.get("type") == "block":
                    assert isinstance(record.pop("wall_s"), float)
                out.append(json.dumps(record, sort_keys=True))
            return out

        assert canonical(serial_path) == canonical(parallel_path)

    def test_jobs_resume_replays_and_matches(self, machine, blocks,
                                             tmp_path):
        fp = run_fingerprint("src", "generic", list(DEFAULT_CHAIN))
        path = tmp_path / "resume.jsonl"
        with RunJournal.open_fresh(str(path), fp) as journal:
            run_batch(blocks[:1], machine, verify=True, journal=journal)
        with RunJournal.open_resume(str(path), fp) as journal:
            resumed = run_batch(blocks, machine, verify=True,
                                journal=journal, jobs=2)
        assert resumed.n_replayed == 1
        reference = run_batch(blocks, machine, verify=True)
        assert records(resumed) == records(reference)

    def test_jobs_rejects_custom_priority(self, machine, blocks):
        with pytest.raises(ReproError, match="jobs"):
            run_batch(blocks, machine, jobs=2,
                      priority=lambda state, node: 0)

    def test_jobs_rejects_injected_factories(self, machine, blocks):
        factories = [("n2", lambda: CompareAllBuilder(machine))]
        with pytest.raises(ReproError, match="jobs"):
            run_batch(blocks, machine, jobs=2,
                      chain_factories=factories)

    def test_jobs_below_one_rejected(self, machine, blocks):
        with pytest.raises(ReproError, match="jobs"):
            run_batch(blocks, machine, jobs=0)

    def test_on_block_in_program_order(self, machine, blocks):
        seen = []
        run_batch(blocks, machine, jobs=2,
                  on_block=lambda outcome: seen.append(outcome.index))
        assert seen == sorted(seen)


class TestAttemptWorkAccounting:
    def test_each_attempt_gets_fresh_budget(self, machine, blocks):
        # Chain of two builders under one per-attempt budget sized so
        # the n**2 reference trips but the table builder fits: if the
        # first attempt's spent work leaked into the second, the
        # second would trip too and the block would degrade.
        block = blocks[0]
        base = CompareAllBuilder(machine).build(block).stats
        n2_work = (base.comparisons + base.table_probes
                   + base.alias_checks + base.bitmap_ops)
        budget = Budget(max_work=n2_work - 1)
        chain = resolve_chain(("n2", "table-forward"), machine)
        outcome = schedule_block_resilient(block, machine, chain,
                                           budget=budget)
        assert not outcome.degraded
        assert outcome.builder == "table-forward"
        first, second = outcome.attempts[0], outcome.attempts[1]
        assert first.stage == "timeout"
        # The failed attempt's spent work is recorded, not reset...
        assert first.work is not None and first.work >= n2_work - 1
        # ...and the successful attempt was charged only its own work.
        assert second.stage == "ok"
        assert second.work is not None
        assert second.work <= n2_work - 1

    def test_work_survives_record_round_trip(self):
        attempt = Attempt("n2", "timeout", "budget", work=123)
        assert Attempt.from_record(attempt.to_record()) == attempt

    def test_old_records_without_work_tolerated(self):
        attempt = Attempt.from_record(
            {"builder": "n2", "stage": "ok", "error": None})
        assert attempt.work is None

    def test_wasted_work_counts_failed_attempts_only(self, machine,
                                                     blocks):
        clean = run_batch(blocks, machine)
        assert clean.wasted_work == 0
        block = blocks[0]
        base = CompareAllBuilder(machine).build(block).stats
        n2_work = (base.comparisons + base.table_probes
                   + base.alias_checks + base.bitmap_ops)
        result = run_batch([block], machine,
                           chain=("n2", "table-forward"),
                           budget=Budget(max_work=n2_work - 1))
        assert result.failures == []
        assert result.wasted_work >= n2_work - 1


class TestBench:
    def test_bench_blocks_deterministic(self):
        assert records_like(bench_blocks(2)) == records_like(
            bench_blocks(2))
        assert len(bench_blocks(3)) == 4 * 3

    def test_run_bench_document(self, tmp_path, sparc_machine):
        doc = run_bench(sparc_machine, machine_name="sparc", copies=2,
                        repeats=1, jobs=1, quick=True)
        assert doc["batch"]["schedules_identical"] is True
        assert set(doc["builders"]) == {
            "n2", "landskov", "table-forward", "table-backward",
            "bitmap-backward"}
        for row in doc["builders"].values():
            assert row["time_s"] >= 0.0
            assert row["table_probes"] >= 0
        assert doc["builders"]["bitmap-backward"][
            "bitmap_words_touched"] > 0
        assert doc["heuristics"]["incremental"]["arcs_repaired"] > 0
        out = tmp_path / "bench.json"
        write_bench(doc, str(out))
        assert json.loads(out.read_text()) == doc

    def test_bench_counters_reproducible(self, sparc_machine):
        one = run_bench(sparc_machine, copies=2, repeats=1, jobs=1,
                        quick=True)
        two = run_bench(sparc_machine, copies=2, repeats=1, jobs=1,
                        quick=True)
        strip = lambda d: {name: {k: v for k, v in row.items()
                                  if not k.endswith("_s")}
                           for name, row in d["builders"].items()}
        assert strip(one) == strip(two)
        assert one["batch"]["build_counters"] \
            == two["batch"]["build_counters"]


def records_like(blocks):
    return [(b.index, [i.render() for i in b.instructions])
            for b in blocks]
