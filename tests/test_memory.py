"""Tests for memory expressions and the aliasing policies."""

import pytest

from repro.isa.memory import (
    AliasPolicy,
    MemExpr,
    StorageClass,
    may_alias,
    storage_class_of,
)

STACK_A = MemExpr(base="%i6", offset=-8)
STACK_B = MemExpr(base="%i6", offset=-12)
PTR_A = MemExpr(base="%o0", offset=4)
PTR_A2 = MemExpr(base="%o0", offset=8)
PTR_B = MemExpr(base="%o1", offset=4)
INDEXED = MemExpr(base="%o0", index="%o1")
SYM = MemExpr(symbol="counter")
SYM_OFF = MemExpr(symbol="counter", offset=4)
SYM_LO = MemExpr(base="%o2", symbol="counter")


class TestKeys:
    def test_stack_key(self):
        assert STACK_A.key() == "%i6-8"

    def test_positive_offset_key(self):
        assert PTR_A.key() == "%o0+4"

    def test_no_offset_key(self):
        assert MemExpr(base="%o0").key() == "%o0"

    def test_indexed_key(self):
        assert INDEXED.key() == "%o0+%o1"

    def test_symbol_key(self):
        assert SYM.key() == "counter"
        assert SYM_OFF.key() == "counter+4"

    def test_base_plus_lo_key(self):
        assert SYM_LO.key() == "%o2+%lo(counter)"

    def test_distinct_exprs_distinct_keys(self):
        exprs = [STACK_A, STACK_B, PTR_A, PTR_A2, PTR_B, INDEXED, SYM,
                 SYM_OFF, SYM_LO]
        assert len({e.key() for e in exprs}) == len(exprs)

    def test_address_registers(self):
        assert STACK_A.address_registers == ("%i6",)
        assert INDEXED.address_registers == ("%o0", "%o1")
        assert SYM.address_registers == ()
        assert SYM_LO.address_registers == ("%o2",)


class TestStorageClass:
    def test_frame_pointer_is_stack(self):
        assert storage_class_of(STACK_A) is StorageClass.STACK

    def test_stack_pointer_is_stack(self):
        assert storage_class_of(MemExpr(base="%o6", offset=4)) \
            is StorageClass.STACK

    def test_symbol_is_static(self):
        assert storage_class_of(SYM) is StorageClass.STATIC
        assert storage_class_of(SYM_LO) is StorageClass.STATIC

    def test_pointer_is_unknown(self):
        assert storage_class_of(PTR_A) is StorageClass.UNKNOWN

    def test_indexed_stack_base_is_unknown(self):
        # An index register can step outside the frame.
        expr = MemExpr(base="%i6", index="%o0")
        assert storage_class_of(expr) is StorageClass.UNKNOWN


class TestStrictPolicy:
    def test_everything_aliases(self):
        assert may_alias(STACK_A, PTR_B, AliasPolicy.STRICT)
        assert may_alias(SYM, STACK_A, AliasPolicy.STRICT)

    def test_same_expression_aliases(self):
        assert may_alias(STACK_A, STACK_A, AliasPolicy.STRICT)


class TestExpressionPolicy:
    def test_identical_aliases(self):
        assert may_alias(PTR_A, MemExpr(base="%o0", offset=4),
                         AliasPolicy.EXPRESSION)

    def test_distinct_expressions_never_alias(self):
        assert not may_alias(PTR_A, PTR_B, AliasPolicy.EXPRESSION)
        assert not may_alias(STACK_A, SYM, AliasPolicy.EXPRESSION)
        assert not may_alias(PTR_A, PTR_A2, AliasPolicy.EXPRESSION)


class TestBaseOffsetPolicy:
    def test_same_base_different_offset_disjoint(self):
        # "if two memory references use the same base register but
        # different offsets, they cannot refer to the same location"
        assert not may_alias(STACK_A, STACK_B, AliasPolicy.BASE_OFFSET)
        assert not may_alias(PTR_A, PTR_A2, AliasPolicy.BASE_OFFSET)

    def test_same_base_same_offset_aliases(self):
        assert may_alias(PTR_A, MemExpr(base="%o0", offset=4),
                         AliasPolicy.BASE_OFFSET)

    def test_different_bases_serialize(self):
        # "references using different base registers must still be
        # serialized"
        assert may_alias(PTR_A, PTR_B, AliasPolicy.BASE_OFFSET)

    def test_symbol_offsets_disjoint(self):
        assert not may_alias(SYM, SYM_OFF, AliasPolicy.BASE_OFFSET)

    def test_indexed_always_conservative(self):
        assert may_alias(INDEXED, MemExpr(base="%o0", index="%o1", offset=0),
                         AliasPolicy.BASE_OFFSET)
        assert may_alias(INDEXED, PTR_A, AliasPolicy.BASE_OFFSET)

    def test_pointer_vs_stack_serializes(self):
        # Without storage classes a pointer may hit the frame.
        assert may_alias(PTR_A, STACK_A, AliasPolicy.BASE_OFFSET)


class TestStorageClassPolicy:
    def test_stack_vs_static_disjoint(self):
        assert not may_alias(STACK_A, SYM, AliasPolicy.STORAGE_CLASS)

    def test_stack_vs_unknown_disjoint(self):
        # Warren: heap-ish pointers do not point into the frame.
        assert not may_alias(STACK_A, PTR_B, AliasPolicy.STORAGE_CLASS)

    def test_unknown_vs_static_serializes(self):
        assert may_alias(PTR_A, SYM_OFF, AliasPolicy.STORAGE_CLASS)

    def test_unknown_vs_unknown_serializes(self):
        assert may_alias(PTR_A, PTR_B, AliasPolicy.STORAGE_CLASS)

    def test_same_base_rule_still_applies(self):
        assert not may_alias(STACK_A, STACK_B, AliasPolicy.STORAGE_CLASS)


class TestSymmetry:
    @pytest.mark.parametrize("policy", list(AliasPolicy))
    def test_may_alias_is_symmetric(self, policy):
        pairs = [(STACK_A, STACK_B), (PTR_A, PTR_B), (SYM, PTR_A),
                 (STACK_A, SYM), (INDEXED, PTR_A), (SYM, SYM_OFF)]
        for a, b in pairs:
            assert may_alias(a, b, policy) == may_alias(b, a, policy)

    @pytest.mark.parametrize("policy", list(AliasPolicy))
    def test_reflexive(self, policy):
        for e in (STACK_A, PTR_A, SYM, INDEXED, SYM_LO):
            assert may_alias(e, e, policy)
