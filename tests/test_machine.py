"""Tests for the machine timing models."""

import pytest

from repro.asm.parser import parse_instruction_text
from repro.dep import DepType
from repro.isa.opcodes import InstructionClass
from repro.isa.resources import defs_and_uses
from repro.machine import (
    LatencyModel,
    generic_risc,
    rs6000_like,
    sparcstation2_like,
    superscalar2,
)
from repro.machine.units import FunctionUnit, FunctionUnitSet, default_units


def instr(text: str):
    return parse_instruction_text(text)


class TestExecutionTimes:
    def test_figure1_latencies(self):
        # generic_risc reproduces Figure 1: DIVF 20 cycles, ADDF 4.
        m = generic_risc()
        assert m.execution_time(instr("fdivd %f0, %f2, %f4")) == 20
        assert m.execution_time(instr("faddd %f0, %f2, %f4")) == 4

    def test_integer_single_cycle(self):
        m = generic_risc()
        assert m.execution_time(instr("add %o1, %o2, %o3")) == 1

    def test_load_has_delay_slot(self):
        m = generic_risc()
        assert m.execution_time(instr("ld [%fp-8], %o0")) == 2

    def test_mnemonic_override(self):
        lm = LatencyModel(mnemonic_latency={"add": 3})
        assert lm.execution_time(instr("add %o1, %o2, %o3")) == 3
        assert lm.execution_time(instr("sub %o1, %o2, %o3")) == 1


class TestArcDelays:
    def test_raw_delay_is_parent_latency(self):
        m = generic_risc()
        parent = instr("fdivd %f0, %f2, %f4")
        child = instr("faddd %f4, %f6, %f8")
        res = defs_and_uses(parent)[0][0]
        assert m.arc_delay(DepType.RAW, parent, child, res) == 20

    def test_war_delay_is_short(self):
        # Figure 1: the WAR arc carries a 1-cycle delay.
        m = generic_risc()
        parent = instr("fdivd %f0, %f2, %f4")
        child = instr("faddd %f6, %f8, %f0")
        res = defs_and_uses(child)[0][0]
        assert m.arc_delay(DepType.WAR, parent, child, res) == 1

    def test_waw_delay(self):
        m = generic_risc()
        parent = instr("faddd %f0, %f2, %f4")
        child = instr("fmuld %f6, %f8, %f4")
        res = defs_and_uses(child)[0][0]
        assert m.arc_delay(DepType.WAW, parent, child, res) == 1

    def test_pair_second_register_skew(self):
        # "the RAW delays for these registers can be one or two cycles
        # different" for a double-word load's pair.
        m = sparcstation2_like()
        parent = instr("ldd [%fp-8], %f2")
        child = instr("faddd %f2, %f4, %f6")
        defs, _ = defs_and_uses(parent)
        d_even = m.arc_delay(DepType.RAW, parent, child, defs[0],
                             def_index=0)
        d_odd = m.arc_delay(DepType.RAW, parent, child, defs[1],
                            def_index=1)
        assert d_odd == d_even + 1

    def test_store_forwarding_discount(self):
        # RS/6000: a RAW to a store can be shorter than to arithmetic.
        m = rs6000_like()
        parent = instr("ld [%o0], %o1")
        arith = instr("add %o1, %o2, %o3")
        store = instr("st %o1, [%o4]")
        res = defs_and_uses(parent)[0][0]
        d_arith = m.arc_delay(DepType.RAW, parent, arith, res)
        d_store = m.arc_delay(DepType.RAW, parent, store, res)
        assert d_store < d_arith

    def test_asymmetric_bypass_by_operand_position(self):
        # RS/6000: the delay depends on whether the consumer reads the
        # value as its first or second source operand.
        m = rs6000_like()
        parent = instr("ld [%o0], %o1")
        child = instr("add %o1, %o2, %o3")
        res = defs_and_uses(parent)[0][0]
        first = m.arc_delay(DepType.RAW, parent, child, res, use_index=0)
        second = m.arc_delay(DepType.RAW, parent, child, res, use_index=1)
        assert second == first + 1

    def test_delays_never_below_one(self):
        lm = LatencyModel(raw_store_forward_discount=10)
        parent = instr("ld [%o0], %o1")
        store = instr("st %o1, [%o4]")
        res = defs_and_uses(parent)[0][0]
        assert lm.raw_delay(parent, store, res) >= 1


class TestUnits:
    def test_default_units_cover_all_classes(self):
        units = default_units()
        for iclass in InstructionClass:
            assert units.unit_for(iclass) is not None

    def test_unpipelined_fdiv(self):
        units = default_units()
        assert not units.unit_for(InstructionClass.FPDIV).pipelined

    def test_has_unpipelined(self):
        assert default_units(unpipelined_fp=True).has_unpipelined

    def test_bad_mapping_raises(self):
        with pytest.raises(ValueError):
            FunctionUnitSet([FunctionUnit("x")],
                            {InstructionClass.IALU: "missing"})

    def test_superscalar_has_two_ialus(self):
        m = superscalar2()
        assert m.units.unit("ialu").copies == 2
        assert m.issue_width == 2
        assert m.is_superscalar

    def test_scalar_machines_not_superscalar(self):
        assert not generic_risc().is_superscalar


class TestPresets:
    def test_all_presets_construct(self):
        for factory in (generic_risc, sparcstation2_like, rs6000_like,
                        superscalar2):
            m = factory()
            assert m.name
            assert m.issue_width >= 1

    def test_rs6000_has_no_delay_slot(self):
        assert rs6000_like().branch_delay_slots == 0

    def test_sparc_has_delay_slot(self):
        assert sparcstation2_like().branch_delay_slots == 1

    def test_usage_pattern_pipelined_single_cycle(self):
        m = generic_risc()
        p = m.usage_pattern(instr("add %o1, %o2, %o3"))
        assert p.span == 1

    def test_usage_pattern_unpipelined_full_latency(self):
        m = sparcstation2_like()
        p = m.usage_pattern(instr("fdivd %f0, %f2, %f4"))
        assert p.span == m.execution_time(instr("fdivd %f0, %f2, %f4"))
