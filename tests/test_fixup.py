"""Tests for the Krishnamurthy-style postpass delay-slot fixup."""

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.machine import generic_risc
from repro.scheduling.fixup import delay_slot_fixup
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate, verify_order
from repro.workloads import kernel_source


def dag_of(source: str):
    blocks = partition_blocks(parse_asm(source))
    dag = TableForwardBuilder(generic_risc()).build(blocks[0]).dag
    backward_pass(dag)
    return dag


class TestFixup:
    def test_fills_a_stall(self):
        # Original order stalls after the load; the independent mov can
        # move into the slot.
        dag = dag_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            mov 7, %o2
        """)
        machine = generic_risc()
        original = list(dag.nodes)
        assert simulate(original, machine).makespan == 4
        fixed = delay_slot_fixup(original, machine)
        verify_order(fixed, dag)
        assert simulate(fixed, machine).makespan == 3
        assert [n.id for n in fixed] == [0, 2, 1]

    def test_never_increases_makespan(self):
        for kernel in ("daxpy", "livermore1", "dot_product"):
            dag = dag_of(kernel_source(kernel))
            machine = generic_risc()
            order = list(dag.real_nodes())
            before = simulate(order, machine).makespan
            fixed = delay_slot_fixup(order, machine)
            after = simulate(fixed, machine).makespan
            assert after <= before
            verify_order(fixed, dag)

    def test_respects_dependences(self):
        dag = dag_of("""
            ld [%fp-8], %o0
            add %o0, 1, %o1
            add %o1, 1, %o2
        """)
        machine = generic_risc()
        fixed = delay_slot_fixup(list(dag.nodes), machine)
        verify_order(fixed, dag)
        # Nothing movable: order unchanged.
        assert [n.id for n in fixed] == [0, 1, 2]

    def test_input_not_mutated(self):
        dag = dag_of("ld [%fp-8], %o0\nadd %o0, 1, %o1\nmov 7, %o2")
        order = list(dag.nodes)
        snapshot = list(order)
        delay_slot_fixup(order, generic_risc())
        assert order == snapshot

    def test_improves_heuristic_schedule_tail(self):
        # After a heuristic pass, fixup may still find slots; at
        # minimum it must not regress.
        dag = dag_of(kernel_source("livermore1"))
        machine = generic_risc()
        result = schedule_forward(dag, machine,
                                  winnowing("max_delay_to_leaf"))
        fixed = delay_slot_fixup(result.order, machine)
        assert simulate(fixed, machine).makespan <= result.makespan
