"""Semantic preservation: scheduling must not change what code computes.

Paper section 1: "In order to maintain the semantic correctness of a
program, transformations must preserve data dependencies."  The
ultimate check: execute each block in its original order and in the
order every scheduler produces, from the same initial machine state,
and require bit-for-bit identical final states (registers, memory,
%y, condition codes).

The initial state places every base register and the symbol pool in
disjoint memory regions, so the symbolic no-alias assumptions the
builders make are *true* at runtime and any reordering they license is
genuinely safe to execute.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.cfg import partition_blocks
from repro.dag.builders import ALL_BUILDERS, TableForwardBuilder
from repro.heuristics.passes import backward_pass, forward_pass
from repro.interp import MachineState, execute
from repro.machine import generic_risc
from repro.minic import compile_to_program
from repro.scheduling.algorithms import ALL_ALGORITHMS
from repro.scheduling.backward_timed import schedule_backward_timed
from repro.scheduling.branch_and_bound import branch_and_bound_schedule
from repro.scheduling.fixup import delay_slot_fixup
from repro.scheduling.list_scheduler import (
    schedule_backward,
    schedule_forward,
)
from repro.scheduling.priority import weighted, winnowing
from repro.scheduling.reservation_scheduler import schedule_with_reservation

from tests.test_properties import blocks

MACHINE = generic_risc()
CP = winnowing("max_delay_to_leaf", "max_delay_to_child")
SLACK = weighted(("slack", 10**8), ("lst", 1))


def initial_state(seed: int = 1991) -> MachineState:
    """Disjoint-region initial state: no-alias assumptions hold."""
    rng = random.Random(seed)
    state = MachineState()
    # Base registers used by the block strategies, one region each.
    regions = {"%i6": 0x0001_0000, "%o6": 0x0002_0000,
               "%l0": 0x0003_0000, "%l1": 0x0004_0000}
    for name, base in regions.items():
        state.write_int(name, base)
        for offset in range(-64, 64, 4):
            state.store_bytes(base + offset, 4, rng.randrange(1 << 32))
    # Data registers and FP words: random but fixed.
    for name in ("%o0", "%o1", "%o2", "%o3", "%l2", "%l3"):
        state.write_int(name, rng.randrange(1 << 16))
    for i in range(0, 32, 2):
        state.write_double(f"%f{i}", rng.uniform(-100, 100))
    # Pre-assign the symbol pool into its own region.
    state.symbols["gsym"] = 0x4000_0000
    return state


def final_state(instructions) -> tuple:
    return execute(list(instructions), initial_state()).snapshot()


def all_schedules(block):
    """Every scheduler in the repository, applied to one block."""
    dag = TableForwardBuilder(MACHINE).build(block).dag
    forward_pass(dag)
    backward_pass(dag, require_est=False)
    yield "forward", schedule_forward(dag, MACHINE, CP).order
    yield "backward", schedule_backward(dag, MACHINE, SLACK).order
    yield "backward_timed", schedule_backward_timed(
        dag, MACHINE, SLACK).order
    yield "reservation", schedule_with_reservation(dag, MACHINE, CP).order
    fixed = delay_slot_fixup(list(dag.real_nodes()), MACHINE)
    yield "fixup", fixed


class TestSemanticPreservation:
    @settings(max_examples=60, deadline=None)
    @given(block=blocks())
    def test_every_scheduler_preserves_semantics(self, block):
        reference = final_state(block.instructions)
        for name, order in all_schedules(block):
            scheduled = final_state(n.instr for n in order)
            assert scheduled == reference, name

    @settings(max_examples=40, deadline=None)
    @given(block=blocks())
    def test_every_builder_preserves_semantics(self, block):
        reference = final_state(block.instructions)
        for builder_cls in ALL_BUILDERS:
            dag = builder_cls(MACHINE).build(block).dag
            backward_pass(dag)
            order = schedule_forward(dag, MACHINE, CP).order
            assert final_state(n.instr for n in order) == reference, \
                builder_cls.name

    @settings(max_examples=20, deadline=None)
    @given(block=blocks(max_size=7))
    def test_optimal_scheduler_preserves_semantics(self, block):
        reference = final_state(block.instructions)
        dag = TableForwardBuilder(MACHINE).build(block).dag
        backward_pass(dag)
        result, _ = branch_and_bound_schedule(dag, MACHINE)
        assert final_state(n.instr for n in result.order) == reference


class TestPublishedAlgorithmsSemantics:
    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_on_minic_output(self, algorithm_cls):
        program = compile_to_program("""
            double a, b, c;
            int i, j, n;
            c = a * b + c / a;
            j = (i + 1) * (i - 1) % 7;
            n = (j << 2 & 255) + i / 3;
            a = -b + 2.5 * c;
        """)
        block = partition_blocks(program)[0]
        reference = final_state(block.instructions)
        result = algorithm_cls(MACHINE).schedule_block(block)
        assert final_state(n.instr for n in result.order) == reference

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS,
                             ids=lambda c: c.name)
    def test_on_random_minic_programs(self, algorithm_cls):
        rng = random.Random(7)
        for trial in range(5):
            source = _random_minic(rng)
            block = partition_blocks(compile_to_program(source))[0]
            reference = final_state(block.instructions)
            result = algorithm_cls(MACHINE).schedule_block(block)
            assert final_state(n.instr for n in result.order) \
                == reference, source


def _random_minic(rng: random.Random) -> str:
    """A small random mini-C program (int-only for full determinism)."""
    int_vars = ["i", "j", "k", "n"]

    def expr(depth: int) -> str:
        if depth == 0 or rng.random() < 0.3:
            if rng.random() < 0.4:
                return str(rng.randrange(1, 64))
            return rng.choice(int_vars)
        op = rng.choice("+-*&|^")
        return f"({expr(depth - 1)} {op} {expr(depth - 1)})"

    lines = ["int i, j, k, n;"]
    for _ in range(rng.randrange(2, 5)):
        target = rng.choice(int_vars)
        lines.append(f"{target} = {expr(2)};")
    return "\n".join(lines)
