"""Edge-case and contract tests across modules."""

import pytest

from repro.asm import parse_asm
from repro.asm.parser import parse_instruction_text
from repro.cfg import partition_blocks
from repro.dag.builders import TableForwardBuilder
from repro.dag.builders.base import AliasOracle, BuildStats
from repro.errors import (
    AsmSyntaxError,
    CfgError,
    DagError,
    OperandError,
    ReproError,
    SchedulingError,
    UnknownOpcodeError,
    WorkloadError,
)
from repro.heuristics.passes import backward_pass
from repro.isa.memory import AliasPolicy, MemExpr
from repro.isa.resources import ResourceKind, mem_resource
from repro.machine import generic_risc, sparcstation2_like
from repro.pipeline import run_pipeline
from repro.scheduling.list_scheduler import (
    schedule_backward,
    schedule_forward,
)
from repro.scheduling.priority import winnowing
from repro.workloads import scaled_profile
from repro.workloads.profiles import WorkloadProfile


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [AsmSyntaxError, CfgError, DagError,
                                     OperandError, SchedulingError,
                                     UnknownOpcodeError, WorkloadError])
    def test_all_inherit_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_operand_error_is_syntax_error(self):
        assert issubclass(OperandError, AsmSyntaxError)

    def test_line_number_formatting(self):
        err = AsmSyntaxError("bad thing", line_number=7, line_text="x")
        assert "line 7" in str(err)
        assert err.line_number == 7

    def test_no_line_number(self):
        err = AsmSyntaxError("bad thing")
        assert str(err) == "bad thing"


class TestInstructionHelpers:
    def test_with_index_preserves_everything_else(self):
        instr = parse_instruction_text("be,a target")
        moved = instr.with_index(9)
        assert moved.index == 9
        assert moved.annulled
        assert moved.opcode is instr.opcode

    def test_mem_operand_none_for_alu(self):
        assert parse_instruction_text("add %o1, %o2, %o3") \
            .mem_operand() is None

    def test_reg_operands_in_order(self):
        instr = parse_instruction_text("add %o5, %o1, %o0")
        assert [str(r) for r in instr.reg_operands()] \
            == ["%o5", "%o1", "%o0"]

    def test_branch_target_none_for_alu(self):
        assert parse_instruction_text("nop").branch_target() is None

    def test_str_includes_index(self):
        instr = parse_instruction_text("nop", index=4)
        assert str(instr).startswith("4:")


class TestBuildStats:
    def test_merge_sums_everything(self):
        a = BuildStats(comparisons=1, table_probes=2, alias_checks=3,
                       arcs_added=4, arcs_merged=5, arcs_suppressed=6,
                       bitmap_ops=7)
        b = BuildStats(comparisons=10, table_probes=20, alias_checks=30,
                       arcs_added=40, arcs_merged=50, arcs_suppressed=60,
                       bitmap_ops=70)
        a.merge(b)
        assert (a.comparisons, a.table_probes, a.alias_checks,
                a.arcs_added, a.arcs_merged, a.arcs_suppressed,
                a.bitmap_ops) == (11, 22, 33, 44, 55, 66, 77)


class TestAliasOracle:
    def test_memoizes_symmetric_pairs(self):
        stats = BuildStats()
        oracle = AliasOracle(AliasPolicy.BASE_OFFSET, stats)
        r1 = mem_resource(MemExpr(base="%o0", offset=0))
        r2 = mem_resource(MemExpr(base="%o1", offset=0))
        assert oracle.aliases(0, r1, 1, r2)
        assert oracle.aliases(1, r2, 0, r1)
        assert oracle.aliases(0, r1, 1, r2)
        assert stats.alias_checks == 1  # one real oracle call

    def test_same_id_short_circuits(self):
        stats = BuildStats()
        oracle = AliasOracle(AliasPolicy.EXPRESSION, stats)
        r = mem_resource(MemExpr(base="%o0"))
        assert oracle.aliases(3, r, 3, r)
        assert stats.alias_checks == 0


class TestSchedulerEdges:
    def test_units_ignored_when_disabled(self):
        machine = sparcstation2_like()
        blocks = partition_blocks(parse_asm(
            "fdivd %f0, %f2, %f4\nfdivd %f6, %f8, %f10"))
        dag = TableForwardBuilder(machine).build(blocks[0]).dag
        backward_pass(dag)
        with_units = schedule_forward(dag, machine,
                                      winnowing("max_delay_to_leaf"))
        without = schedule_forward(dag, machine,
                                   winnowing("max_delay_to_leaf"),
                                   consider_units=False)
        assert without.timing.issue_times[1] < \
            with_units.timing.issue_times[1] or \
            without.makespan <= with_units.makespan

    def test_backward_without_pinning(self):
        machine = generic_risc()
        blocks = partition_blocks(parse_asm("mov 1, %o0\nba out"))
        dag = TableForwardBuilder(machine).build(blocks[0]).dag
        result = schedule_backward(dag, machine,
                                   winnowing("execution_time"),
                                   pin_terminator=False)
        assert len(result.order) == 2

    def test_single_instruction_block(self):
        machine = generic_risc()
        blocks = partition_blocks(parse_asm("nop"))
        dag = TableForwardBuilder(machine).build(blocks[0]).dag
        result = schedule_forward(dag, machine,
                                  winnowing("execution_time"))
        assert [n.id for n in result.order] == [0]
        assert result.makespan == 1

    def test_all_independent_instructions(self):
        machine = generic_risc()
        source = "\n".join(f"mov {i}, %o{i}" for i in range(6))
        blocks = partition_blocks(parse_asm(source))
        dag = TableForwardBuilder(machine).build(blocks[0]).dag
        assert dag.n_arcs == 0
        result = schedule_forward(dag, machine,
                                  winnowing("execution_time"))
        assert result.makespan == 6  # scalar, one per cycle


class TestPipelineEdges:
    def test_empty_block_list(self):
        machine = generic_risc()
        result = run_pipeline([], machine,
                              lambda: TableForwardBuilder(machine))
        assert result.n_blocks == 0
        assert result.speedup == 1.0

    def test_blocks_with_empty_block_skipped(self):
        from repro.cfg.basic_block import BasicBlock
        machine = generic_risc()
        blocks = partition_blocks(parse_asm("nop")) + [BasicBlock(1, [])]
        result = run_pipeline(blocks, machine,
                              lambda: TableForwardBuilder(machine))
        assert result.n_blocks == 1


class TestWorkloadProfileEdges:
    def test_all_giant_profile(self):
        profile = WorkloadProfile(
            name="giants", n_blocks=2, total_insts=30, max_block=20,
            giant_blocks=(20, 10), typical_cap=20,
            mem_max_per_block=2, mem_avg_per_block=0.5, fp_fraction=0.5)
        from repro.workloads import generate_blocks
        blocks = generate_blocks(profile)
        assert sorted(b.size for b in blocks) == [10, 20]

    def test_scaled_without_giants(self):
        scaled = scaled_profile("tomcatv", 0.5, keep_giants=False)
        assert scaled.max_block < 326

    def test_scale_floor_consistency(self):
        # Extremely small factors still produce a consistent profile.
        scaled = scaled_profile("fpppp", 0.01)
        assert scaled.total_insts >= sum(scaled.giant_blocks)
        assert scaled.n_blocks > len(scaled.giant_blocks)
        from repro.workloads import generate_blocks
        blocks = generate_blocks(scaled)
        assert len(blocks) == scaled.n_blocks


class TestResourceEdges:
    def test_mem_resource_kind_and_payload(self):
        res = mem_resource(MemExpr(symbol="x"))
        assert res.kind is ResourceKind.MEM
        assert res.mem == MemExpr(symbol="x")
        assert res.name == "x"

    def test_memexpr_str(self):
        assert str(MemExpr(base="%o0", offset=4)) == "[%o0+4]"
