"""Tests for the DAG data structure and add_arc counter maintenance."""

import pytest

from repro.asm.parser import parse_instruction_text
from repro.dep import DepType
from repro.dag.graph import Dag
from repro.errors import DagError


def make_dag(n: int) -> Dag:
    dag = Dag()
    for i in range(n):
        dag.add_node(parse_instruction_text("nop", index=i),
                     execution_time=1)
    return dag


class TestAddArc:
    def test_arc_links_both_sides(self):
        dag = make_dag(2)
        arc = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 2)
        assert arc in dag.nodes[0].out_arcs
        assert arc in dag.nodes[1].in_arcs

    def test_counters_maintained(self):
        # Table 1 legend "a": determined when the arc is added.
        dag = make_dag(3)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 2)
        dag.add_arc(dag.nodes[0], dag.nodes[2], DepType.RAW, 5)
        n0 = dag.nodes[0]
        assert n0.n_children == 2
        assert n0.sum_delays_to_children == 7
        assert n0.max_delay_to_child == 5
        assert dag.nodes[2].n_parents == 1
        assert dag.nodes[2].sum_delays_from_parents == 5
        assert dag.nodes[2].max_delay_from_parent == 5

    def test_interlock_with_child_flag(self):
        # "initialized as false and then set to true whenever the
        # add_arc procedure is called with an arc delay greater than 1"
        dag = make_dag(3)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        assert not dag.nodes[0].interlock_with_child
        dag.add_arc(dag.nodes[0], dag.nodes[2], DepType.RAW, 2)
        assert dag.nodes[0].interlock_with_child

    def test_parallel_arcs_merge(self):
        dag = make_dag(2)
        first = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.WAR, 1)
        second = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 4)
        assert second is None
        assert dag.n_arcs == 1
        assert dag.n_merged_arcs == 1
        assert first.delay == 4
        assert first.dep is DepType.RAW

    def test_merge_keeps_larger_delay(self):
        dag = make_dag(2)
        arc = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 5)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.WAW, 1)
        assert arc.delay == 5
        assert arc.dep is DepType.RAW

    def test_merge_updates_aggregates(self):
        dag = make_dag(2)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.WAR, 1)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 4)
        assert dag.nodes[0].sum_delays_to_children == 4
        assert dag.nodes[0].n_children == 1

    def test_self_arc_raises(self):
        dag = make_dag(1)
        with pytest.raises(DagError):
            dag.add_arc(dag.nodes[0], dag.nodes[0], DepType.RAW, 1)

    def test_backward_arc_raises(self):
        dag = make_dag(2)
        with pytest.raises(DagError):
            dag.add_arc(dag.nodes[1], dag.nodes[0], DepType.RAW, 1)


class TestRemoveArc:
    def test_remove_reverses_counters(self):
        dag = make_dag(3)
        arc = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 5)
        dag.add_arc(dag.nodes[0], dag.nodes[2], DepType.RAW, 2)
        dag.remove_arc(arc)
        n0 = dag.nodes[0]
        assert n0.n_children == 1
        assert n0.sum_delays_to_children == 2
        assert n0.max_delay_to_child == 2
        assert dag.nodes[1].n_parents == 0

    def test_remove_updates_interlock(self):
        dag = make_dag(2)
        arc = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 4)
        assert dag.nodes[0].interlock_with_child
        dag.remove_arc(arc)
        assert not dag.nodes[0].interlock_with_child

    def test_remove_unknown_arc_raises(self):
        dag = make_dag(2)
        arc = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        dag.remove_arc(arc)
        with pytest.raises(DagError):
            dag.remove_arc(arc)

    def test_arc_can_be_readded_after_removal(self):
        dag = make_dag(2)
        arc = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        dag.remove_arc(arc)
        assert dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.WAW, 2) \
            is not None


class TestQueries:
    def test_roots_and_leaves(self):
        dag = make_dag(3)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        assert [n.id for n in dag.roots()] == [0, 2]
        assert [n.id for n in dag.leaves()] == [1, 2]

    def test_children_parents_lists(self):
        dag = make_dag(3)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        dag.add_arc(dag.nodes[0], dag.nodes[2], DepType.RAW, 1)
        assert [c.id for c in dag.nodes[0].children()] == [1, 2]
        assert [p.id for p in dag.nodes[1].parents()] == [0]

    def test_arc_to(self):
        dag = make_dag(2)
        arc = dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        assert dag.nodes[0].arc_to(dag.nodes[1]) is arc
        assert dag.nodes[1].arc_to(dag.nodes[0]) is None

    def test_arcs_listing(self):
        dag = make_dag(3)
        dag.add_arc(dag.nodes[0], dag.nodes[2], DepType.RAW, 1)
        dag.add_arc(dag.nodes[1], dag.nodes[2], DepType.RAW, 1)
        assert len(dag.arcs()) == 2

    def test_real_nodes_excludes_dummies(self):
        dag = make_dag(2)
        dag.add_node(None)
        assert len(dag.real_nodes()) == 2
        assert len(dag) == 3


class TestScheduleState:
    def test_reset_counts_real_neighbors_only(self):
        from repro.dag.forest import attach_dummy_root
        dag = make_dag(2)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        attach_dummy_root(dag)
        dag.reset_schedule_state()
        assert dag.nodes[0].unscheduled_parents == 0
        assert dag.nodes[1].unscheduled_parents == 1
        assert dag.nodes[0].unscheduled_children == 1

    def test_reset_clears_dynamic_state(self):
        dag = make_dag(1)
        node = dag.nodes[0]
        node.scheduled = True
        node.issue_time = 9
        node.earliest_exec_time = 4
        node.priority_bias = 2
        dag.reset_schedule_state()
        assert not node.scheduled
        assert node.issue_time == -1
        assert node.earliest_exec_time == 0
        assert node.priority_bias == 0

    def test_topological_order_places_dummies_at_boundaries(self):
        from repro.dag.forest import attach_dummy_leaf, attach_dummy_root
        dag = make_dag(2)
        dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
        attach_dummy_root(dag)
        attach_dummy_leaf(dag)
        order = dag.topological_order()
        assert order[0] is dag.dummy_root
        assert order[-1] is dag.dummy_leaf
        assert [n.id for n in order[1:-1]] == [0, 1]
