"""Tests for the section 6 end-to-end pipeline."""

import pytest

from repro.cfg import apply_window
from repro.dag.builders import (
    ALL_BUILDERS,
    CompareAllBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.machine import sparcstation2_like
from repro.pipeline import SECTION6_PRIORITY, run_pipeline
from repro.workloads import generate_blocks, scaled_profile


@pytest.fixture(scope="module")
def machine():
    return sparcstation2_like()


@pytest.fixture(scope="module")
def small_blocks():
    return generate_blocks(scaled_profile("linpack", 0.15))


class TestRunPipeline:
    def test_counts(self, machine, small_blocks):
        r = run_pipeline(small_blocks, machine,
                         lambda: TableForwardBuilder(machine))
        assert r.n_blocks == len(small_blocks)
        assert r.n_instructions == sum(b.size for b in small_blocks)

    def test_scheduling_improves_or_matches(self, machine, small_blocks):
        r = run_pipeline(small_blocks, machine,
                         lambda: TableForwardBuilder(machine))
        assert r.total_makespan <= r.total_original_makespan
        assert r.speedup >= 1.0

    def test_construction_only_mode(self, machine, small_blocks):
        r = run_pipeline(small_blocks, machine,
                         lambda: TableForwardBuilder(machine),
                         schedule=False)
        assert r.total_makespan == 0
        assert r.dag_stats.n_blocks == len(small_blocks)

    def test_all_builders_schedule_same_total(self, machine, small_blocks):
        # Paper conclusion 6 (reinterpreted for makespans): the three
        # approaches with the same heuristics produce comparable
        # schedules -- for table builders the DAGs are identical, so
        # makespans must be identical; n**2 keeps extra transitive
        # arcs but the same closure, so its schedule can differ only
        # through heuristic-value changes, not legality.
        fw = run_pipeline(small_blocks, machine,
                          lambda: TableForwardBuilder(machine))
        bw = run_pipeline(small_blocks, machine,
                          lambda: TableBackwardBuilder(machine))
        assert fw.total_makespan == bw.total_makespan

    def test_heuristic_driver_equivalence(self, machine, small_blocks):
        walk = run_pipeline(small_blocks, machine,
                            lambda: TableForwardBuilder(machine))
        levels = run_pipeline(small_blocks, machine,
                              lambda: TableForwardBuilder(machine),
                              heuristic_driver="levels")
        assert walk.total_makespan == levels.total_makespan

    def test_work_counters_accumulated(self, machine, small_blocks):
        n2 = run_pipeline(small_blocks, machine,
                          lambda: CompareAllBuilder(machine))
        tf = run_pipeline(small_blocks, machine,
                          lambda: TableForwardBuilder(machine))
        assert n2.build_stats.comparisons > 0
        assert tf.build_stats.comparisons == 0
        assert tf.build_stats.table_probes > 0

    def test_unique_mem_expr_max_tracked(self, machine, small_blocks):
        r = run_pipeline(small_blocks, machine,
                         lambda: TableForwardBuilder(machine),
                         schedule=False)
        expected = max(len(b.unique_memory_exprs()) for b in small_blocks)
        assert r.unique_memory_exprs_max == expected

    def test_windowing_reduces_n2_work(self, machine):
        blocks = generate_blocks(scaled_profile("tomcatv", 0.3))
        unwindowed = run_pipeline(blocks, machine,
                                  lambda: CompareAllBuilder(machine),
                                  schedule=False)
        windowed = run_pipeline(apply_window(blocks, 100), machine,
                                lambda: CompareAllBuilder(machine),
                                schedule=False)
        assert windowed.build_stats.comparisons \
            < unwindowed.build_stats.comparisons

    @pytest.mark.parametrize("builder_cls", ALL_BUILDERS,
                             ids=lambda c: c.name)
    def test_every_builder_runs_the_pipeline(self, machine, builder_cls):
        blocks = generate_blocks(scaled_profile("grep", 0.05))
        r = run_pipeline(blocks, machine, lambda: builder_cls(machine))
        assert r.n_blocks == len(blocks)
        assert r.speedup >= 1.0
