"""Tests for the pairwise-dependence cache (repro.dag.builders.cache)."""

import pytest

from repro.cfg import partition_blocks
from repro.dag.builders import (
    ALL_BUILDERS,
    BitmapBackwardBuilder,
    CompareAllBuilder,
    LandskovBuilder,
    PairwiseCache,
    TableForwardBuilder,
    block_fingerprint,
)
from repro.asm import parse_asm
from repro.errors import BlockTimeout
from repro.isa.memory import AliasPolicy
from repro.runner import (
    Budget,
    resolve_chain,
    schedule_block_resilient,
)
from repro.verify import check_builders_agree, verify_schedule
from repro.verify.checker import CompareAllBuilder as _RefBuilder
from tests.conftest import block_from

COUNTERS = ("comparisons", "table_probes", "alias_checks",
            "arcs_added", "arcs_merged", "arcs_suppressed",
            "bitmap_ops")


def arc_signature(dag):
    return sorted((a.parent.id, a.child.id, a.dep, a.delay,
                   str(a.resource)) for a in dag.arcs())


def counter_values(stats):
    return {c: getattr(stats, c) for c in COUNTERS}


class TestReplayEquivalence:
    @pytest.mark.parametrize("cls", ALL_BUILDERS)
    def test_replay_matches_fresh(self, cls, machine, daxpy_block):
        fresh = cls(machine).build(daxpy_block)
        cache = PairwiseCache()
        cold = cls(machine, cache=cache).build(daxpy_block)
        warm = cls(machine, cache=cache).build(daxpy_block)
        assert arc_signature(fresh.dag) == arc_signature(cold.dag) \
            == arc_signature(warm.dag)
        assert counter_values(fresh.stats) == counter_values(cold.stats) \
            == counter_values(warm.stats)

    def test_hit_and_miss_accounting(self, machine, daxpy_block):
        cache = PairwiseCache()
        for _ in range(3):
            CompareAllBuilder(machine, cache=cache).build(daxpy_block)
        info = cache.info()
        assert info["misses"] == 1
        assert info["hits"] == 2
        assert info["entries"] == 1
        assert info["recipes"] == 1

    def test_identical_bodies_share_an_entry(self, machine):
        # The fingerprint hashes rendered instructions, not labels, so
        # two textually identical loop bodies hit the same entry.
        a = block_from("one:\n    add %o0, 1, %o1\n    sub %o1, 2, %o2\n")
        b = block_from("two:\n    add %o0, 1, %o1\n    sub %o1, 2, %o2\n")
        policy = machine.alias_policy
        assert block_fingerprint(a, policy, machine) \
            == block_fingerprint(b, policy, machine)
        cache = PairwiseCache()
        CompareAllBuilder(machine, cache=cache).build(a)
        CompareAllBuilder(machine, cache=cache).build(b)
        assert cache.info() == {"hits": 1, "misses": 1,
                                "bundle_hits": 0,
                                "entries": 1, "max_entries": 512,
                                "recipes": 1}


class TestInvalidation:
    def test_block_text_change_misses(self, machine):
        a = block_from("    add %o0, 1, %o1\n    sub %o1, 2, %o2\n")
        b = block_from("    add %o0, 1, %o1\n    sub %o1, 3, %o2\n")
        cache = PairwiseCache()
        CompareAllBuilder(machine, cache=cache).build(a)
        CompareAllBuilder(machine, cache=cache).build(b)
        assert cache.info()["hits"] == 0
        assert cache.info()["entries"] == 2

    def test_alias_policy_change_misses(self, machine):
        block = block_from(
            "    ld [%l0], %o0\n    st %o0, [%l1]\n")
        cache = PairwiseCache()
        CompareAllBuilder(
            machine, AliasPolicy.STRICT, cache=cache).build(block)
        CompareAllBuilder(
            machine, AliasPolicy.EXPRESSION, cache=cache).build(block)
        assert cache.info()["hits"] == 0
        assert cache.info()["entries"] == 2

    def test_machine_change_misses(self, machine, sparc_machine,
                                   daxpy_block):
        cache = PairwiseCache()
        CompareAllBuilder(machine, cache=cache).build(daxpy_block)
        CompareAllBuilder(sparc_machine, cache=cache).build(daxpy_block)
        assert cache.info()["hits"] == 0
        assert cache.info()["entries"] == 2

    def test_lru_eviction_bound(self, machine):
        cache = PairwiseCache(max_entries=2)
        for k in range(4):
            block = block_from(f"    add %o0, {k}, %o1\n")
            CompareAllBuilder(machine, cache=cache).build(block)
        assert cache.info()["entries"] == 2
        # Oldest entry evicted: rebuilding block 0 misses again.
        block = block_from("    add %o0, 0, %o1\n")
        CompareAllBuilder(machine, cache=cache).build(block)
        assert cache.info()["hits"] == 0


class TestPairwiseSharing:
    def test_same_pairwise_object_across_builders(self, machine,
                                                  daxpy_block):
        cache = PairwiseCache()
        CompareAllBuilder(machine, cache=cache).build(daxpy_block)
        entry = cache.entry_for(daxpy_block, machine.alias_policy,
                                machine)
        assert entry.bundle is not None
        first = entry.bundle.pairwise
        # A later pairwise-family builder on the same block reuses the
        # *same* PairwiseData object instead of re-deriving it.
        LandskovBuilder(machine, cache=cache).build(daxpy_block)
        assert cache.entry_for(daxpy_block, machine.alias_policy,
                               machine).bundle.pairwise is first

    def test_bundle_reuse_counted_apart_from_cold_miss(self, machine,
                                                       daxpy_block):
        # A build that finds a shared pairwise bundle but no recipe
        # used to count as a plain miss; it is cheaper than a cold
        # build (the alias sweep is reused) and is now counted apart.
        cache = PairwiseCache()
        CompareAllBuilder(machine, cache=cache).build(daxpy_block)
        assert cache.info()["bundle_hits"] == 0  # cold: no bundle yet
        LandskovBuilder(machine, cache=cache).build(daxpy_block)
        info = cache.info()
        assert info["bundle_hits"] == 1
        assert info["misses"] == 2  # still a recipe miss both times
        assert info["hits"] == 0
        # A replay of a recorded recipe is a hit, not a bundle hit.
        LandskovBuilder(machine, cache=cache).build(daxpy_block)
        info = cache.info()
        assert info["hits"] == 1
        assert info["bundle_hits"] == 1
        # Non-pairwise builders never consume the bundle.
        TableForwardBuilder(machine, cache=cache).build(daxpy_block)
        assert cache.info()["bundle_hits"] == 1

    def test_shared_bundle_counters_match_uncached(self, machine,
                                                   daxpy_block):
        plain = LandskovBuilder(machine).build(daxpy_block)
        cache = PairwiseCache()
        CompareAllBuilder(machine, cache=cache).build(daxpy_block)
        shared = LandskovBuilder(machine, cache=cache).build(daxpy_block)
        assert counter_values(plain.stats) == counter_values(shared.stats)

    def test_same_pairwise_across_chain_attempts(self, machine,
                                                 daxpy_block):
        # A chain that fails its first pairwise builder and retries
        # with another must reuse the recorded pairwise work.
        cache = PairwiseCache()

        class FailingLandskov(LandskovBuilder):
            def _construct(self, dag, space, oracle, stats):
                super()._construct(dag, space, oracle, stats)
                raise BlockTimeout("injected", block="x")

        chain = [("landskov-bad",
                  lambda: FailingLandskov(machine, cache=cache)),
                 ("n2", lambda: CompareAllBuilder(machine, cache=cache))]
        outcome = schedule_block_resilient(daxpy_block, machine, chain)
        assert outcome.builder == "n2"
        entry = cache.entry_for(daxpy_block, machine.alias_policy,
                                machine)
        assert entry.bundle is not None
        # The failed attempt recorded the bundle; the succeeding one
        # consumed it rather than repeating the alias sweep.
        assert cache.hits + cache.misses >= 2


class TestBudgetInteraction:
    def test_budget_trip_does_not_poison_cache(self, machine,
                                               daxpy_block):
        cache = PairwiseCache()
        chain = resolve_chain(("n2",), machine, cache=cache)
        tripped = schedule_block_resilient(
            daxpy_block, machine, chain, budget=Budget(max_work=3))
        assert tripped.degraded
        entry = cache.entry_for(daxpy_block, machine.alias_policy,
                                machine)
        assert "CompareAllBuilder" not in entry.recipes
        # A later unbudgeted build succeeds and matches an uncached one.
        fresh = CompareAllBuilder(machine).build(daxpy_block)
        cached = CompareAllBuilder(machine, cache=cache).build(daxpy_block)
        assert arc_signature(fresh.dag) == arc_signature(cached.dag)

    def test_replay_trips_budget_like_fresh(self, machine, daxpy_block):
        # The replay charges the recorded counters, so a budget too
        # small for the fresh build also trips on the replayed one.
        cache = PairwiseCache()
        CompareAllBuilder(machine, cache=cache).build(daxpy_block)
        chain = resolve_chain(("n2",), machine, cache=cache)
        outcome = schedule_block_resilient(
            daxpy_block, machine, chain, budget=Budget(max_work=3))
        assert outcome.degraded
        assert outcome.attempts[0].stage == "timeout"


class TestVerifierIntegration:
    def test_builders_agree_with_cache(self, machine, daxpy_block):
        cache = PairwiseCache()
        check_builders_agree(daxpy_block, machine, cache=cache)
        # Second pass is pure replay and must still agree.
        check_builders_agree(daxpy_block, machine, cache=cache)
        assert cache.info()["hits"] >= len(ALL_BUILDERS)

    def test_verify_schedule_uses_cache(self, machine, daxpy_block):
        from repro.heuristics.passes import backward_pass
        from repro.pipeline import SECTION6_PRIORITY
        from repro.scheduling.list_scheduler import schedule_forward
        cache = PairwiseCache()
        outcome = TableForwardBuilder(machine, cache=cache).build(
            daxpy_block)
        backward_pass(outcome.dag, require_est=False)
        result = schedule_forward(outcome.dag, machine,
                                  SECTION6_PRIORITY)
        for _ in range(2):
            report = verify_schedule(
                daxpy_block, result.order, machine,
                claimed_issue_times=result.timing.issue_times,
                cache=cache)
            assert report.passed
        # Second verification replayed the reference build.
        assert cache.hits >= 1

    def test_bitmap_backward_reachability_none_after_replay(
            self, machine, daxpy_block):
        cache = PairwiseCache()
        BitmapBackwardBuilder(machine, cache=cache).build(daxpy_block)
        replayer = BitmapBackwardBuilder(machine, cache=cache)
        replayer.build(daxpy_block)
        assert replayer.reachability is None
