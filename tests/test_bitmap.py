"""Tests for reachability bitmaps."""

from repro.asm.parser import parse_instruction_text
from repro.dep import DepType
from repro.dag.bitmap import (
    ReachabilityMap,
    ancestor_maps,
    compute_reachability,
)
from repro.dag.graph import Dag


def chain_dag(n: int) -> Dag:
    """0 -> 1 -> ... -> n-1."""
    dag = Dag()
    for i in range(n):
        dag.add_node(parse_instruction_text("nop", index=i))
    for i in range(n - 1):
        dag.add_arc(dag.nodes[i], dag.nodes[i + 1], DepType.RAW, 1)
    return dag


def diamond_dag() -> Dag:
    """0 -> {1, 2} -> 3."""
    dag = Dag()
    for i in range(4):
        dag.add_node(parse_instruction_text("nop", index=i))
    dag.add_arc(dag.nodes[0], dag.nodes[1], DepType.RAW, 1)
    dag.add_arc(dag.nodes[0], dag.nodes[2], DepType.RAW, 1)
    dag.add_arc(dag.nodes[1], dag.nodes[3], DepType.RAW, 1)
    dag.add_arc(dag.nodes[2], dag.nodes[3], DepType.RAW, 1)
    return dag


class TestReachabilityMap:
    def test_initialized_to_self(self):
        # "Each node's map is initialized to indicate that a node can
        # reach itself."
        rmap = ReachabilityMap(4)
        for i in range(4):
            assert rmap.reaches(i, i)
            assert rmap.descendant_count(i) == 0

    def test_absorb(self):
        rmap = ReachabilityMap(3)
        rmap.absorb(1, 2)
        rmap.absorb(0, 1)
        assert rmap.reaches(0, 2)
        assert rmap.reaches(0, 1)
        assert not rmap.reaches(2, 0)

    def test_descendants_listing(self):
        rmap = ReachabilityMap(4)
        rmap.absorb(0, 2)
        rmap.absorb(0, 3)
        assert rmap.descendants(0) == [2, 3]

    def test_grow_to(self):
        rmap = ReachabilityMap(2)
        rmap.grow_to(5)
        assert len(rmap) == 5
        assert rmap.reaches(4, 4)

    def test_words_touched_counter(self):
        rmap = ReachabilityMap(3)
        assert rmap.words_touched == 3  # three one-word maps
        rmap.absorb(0, 1)
        rmap.absorb(0, 2)
        assert rmap.words_touched == 5

    def test_init_charges_span_per_map(self):
        # The map for node id i spans i // 64 + 1 words; init charges
        # exactly that span for every map.
        rmap = ReachabilityMap(130)
        assert rmap.words_touched == \
            sum(i // 64 + 1 for i in range(130))  # 64*1 + 64*2 + 2*3

    def test_wide_absorb_counts_actual_words(self):
        # A map spanning more than 64 bits costs one unit per machine
        # word the OR touches, not a flat 1.
        rmap = ReachabilityMap(130)
        init = rmap.words_touched
        rmap.absorb(0, 129)  # bit 129 set -> 3 words
        assert rmap.words_touched == init + 3
        rmap.absorb(1, 2)    # bits 1..2 -> 1 word
        assert rmap.words_touched == init + 4

    def test_grow_charges_appended_words(self):
        rmap = ReachabilityMap(2)
        rmap.grow_to(5)
        assert rmap.words_touched == 5  # 2 at init + ids 2, 3, 4
        rmap.grow_to(5)  # no-op growth is free
        assert rmap.words_touched == 5

    def test_wide_growth_matches_upfront_sizing(self):
        # Regression: growth past node id 64 used to charge a flat one
        # word per appended map, under-counting every multi-word map.
        # Sizing up front and growing incrementally must now agree.
        upfront = ReachabilityMap(130)
        grown = ReachabilityMap(2)
        grown.grow_to(130)
        assert grown.words_touched == upfront.words_touched
        # And a single appended map past the first word boundary is
        # charged its full span, not 1.
        edge = ReachabilityMap(64)
        before = edge.words_touched
        edge.grow_to(65)  # map for id 64 spans 2 words
        assert edge.words_touched - before == 2

    def test_weighted_descendant_sum(self):
        rmap = ReachabilityMap(130)
        rmap.absorb(0, 2)
        rmap.absorb(0, 129)
        weights = list(range(130))
        assert rmap.weighted_descendant_sum(0, weights) == 2 + 129
        assert rmap.weighted_descendant_sum(1, weights) == 0
        # Matches the per-bit enumeration it replaced.
        for a in (0, 1, 2, 129):
            assert rmap.weighted_descendant_sum(a, weights) == \
                sum(weights[d] for d in rmap.descendants(a))


class TestComputeReachability:
    def test_chain(self):
        dag = chain_dag(5)
        rmap = compute_reachability(dag)
        assert rmap.descendant_count(0) == 4
        assert rmap.descendant_count(4) == 0
        assert rmap.reaches(1, 4)
        assert not rmap.reaches(3, 1)

    def test_diamond_no_double_counting(self):
        # "#descendants ... its calculation must avoid double counting
        # when arcs converge on the same descendant node."
        dag = diamond_dag()
        rmap = compute_reachability(dag)
        assert rmap.descendant_count(0) == 3

    def test_matches_networkx(self):
        import networkx as nx
        dag = diamond_dag()
        g = nx.DiGraph()
        for node in dag.nodes:
            g.add_node(node.id)
            for arc in node.out_arcs:
                g.add_edge(node.id, arc.child.id)
        rmap = compute_reachability(dag)
        for node in dag.nodes:
            assert set(rmap.descendants(node.id)) == \
                nx.descendants(g, node.id)


class TestAncestorMaps:
    def test_chain(self):
        dag = chain_dag(4)
        maps = ancestor_maps(dag)
        assert maps[3] == 0b1111
        assert maps[0] == 0b0001

    def test_diamond(self):
        dag = diamond_dag()
        maps = ancestor_maps(dag)
        assert maps[3] == 0b1111
        assert maps[1] == 0b0011
        assert maps[2] == 0b0101
