"""Soundness tests for delay-slot filling in the whole-program transform."""

from repro.asm import parse_asm
from repro.machine import generic_risc
from repro.transform import schedule_program


class TestSlotFillingSoundness:
    def test_useful_slot_instruction_never_displaced(self):
        # The delay slot already holds REAL work (the add executes on
        # both branch paths).  Filling the slot would push the add out
        # of it; the transform must leave this branch alone.
        source = """
        entry:
            ld [%fp-8], %o0
            st %o0, [%fp-16]
            cmp %o0, 5
            bl entry
            add %o0, 1, %o1
            retl
            nop
        """
        program = parse_asm(source)
        scheduled, report = schedule_program(program, generic_risc())
        mnemonics = [i.opcode.mnemonic for i in scheduled]
        bl_position = mnemonics.index("bl")
        assert mnemonics[bl_position + 1] == "add"
        assert len(scheduled) == len(program) - report.nops_removed

    def test_nop_slot_is_filled_and_removed(self):
        source = """
        entry:
            ld [%fp-8], %o0
            st %o0, [%fp-16]
            cmp %o0, 5
            bl entry
            nop
            mov 0, %o0
            retl
            nop
        """
        program = parse_asm(source)
        scheduled, report = schedule_program(program, generic_risc())
        assert report.delay_slots_filled >= 1
        assert report.nops_removed == report.delay_slots_filled
        mnemonics = [i.opcode.mnemonic for i in scheduled]
        bl_position = mnemonics.index("bl")
        assert mnemonics[bl_position + 1] != "nop"

    def test_annulled_branch_slot_untouched(self):
        source = """
        entry:
            st %o0, [%fp-16]
            cmp %o0, 5
            be,a entry
            nop
            retl
            nop
        """
        program = parse_asm(source)
        scheduled, report = schedule_program(program, generic_risc())
        assert report.delay_slots_filled == 0
        assert len(scheduled) == len(program)

    def test_last_block_branch_with_no_successor(self):
        source = "st %o0, [%fp-8]\ncmp %o0, 1\nbl somewhere"
        program = parse_asm(source)
        scheduled, report = schedule_program(program, generic_risc())
        # No following block, hence no removable nop: no fill.
        assert report.delay_slots_filled == 0
        assert len(scheduled) == len(program)
