"""Consistency between the two Table 2 combination styles.

"Some algorithms combine the heuristic information into a single
priority value per node, while others apply heuristics in a given
order in a winnowing-like process."  With sufficiently separated
integer weights, the single-value combination must make exactly the
same choices as the lexicographic one — the check that validates the
weight ladders used by Krishnamurthy/Schlansker/Tiemann.
"""

import pytest

from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass, forward_pass
from repro.machine import generic_risc
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import weighted, winnowing
from repro.workloads import generate_blocks, minic_workload, scaled_profile

TERMS = ("max_path_to_leaf", "max_delay_to_leaf", "max_delay_to_child")
WINNOW = winnowing(*TERMS)
# Weight steps far above any realistic value span for these terms.
WEIGHTED = weighted((TERMS[0], 10**12), (TERMS[1], 10**6), (TERMS[2], 1))

MACHINE = generic_risc()


def _schedule_ids(block, priority):
    dag = TableForwardBuilder(MACHINE).build(block).dag
    forward_pass(dag)
    backward_pass(dag, require_est=False)
    return [n.id for n in schedule_forward(dag, MACHINE, priority).order]


class TestWeightedMatchesWinnowing:
    def test_on_synthetic_workload(self):
        blocks = [b for b in generate_blocks(scaled_profile("lloops", 0.15))
                  if b.size >= 2]
        for block in blocks:
            assert _schedule_ids(block, WINNOW) == \
                _schedule_ids(block, WEIGHTED), block.index

    def test_on_minic_workload(self):
        for block in minic_workload(n_programs=10, seed=3):
            assert _schedule_ids(block, WINNOW) == \
                _schedule_ids(block, WEIGHTED)

    def test_insufficient_separation_can_diverge(self):
        # Sanity check on the check: collapse the weight ladder and
        # the combined value starts mixing ranks; across a workload at
        # least one block must schedule differently.
        bad = weighted((TERMS[0], 4), (TERMS[1], 2), (TERMS[2], 1))
        blocks = [b for b in generate_blocks(scaled_profile("lloops", 0.15))
                  if b.size >= 4]
        diverged = any(_schedule_ids(b, WINNOW) != _schedule_ids(b, bad)
                       for b in blocks)
        assert diverged
