"""Exhaustive sweeps over the whole opcode table.

Every opcode must be constructible, render/parse round-trippable,
def/use extractable, timeable on every machine preset, and usable in a
one-instruction schedule.  These sweeps catch table entries that unit
tests (which pick representative opcodes) would miss.
"""

import pytest

from repro.asm.parser import parse_instruction_text
from repro.cfg.basic_block import BasicBlock
from repro.dag.builders import TableForwardBuilder
from repro.isa.opcodes import OPCODE_TABLE, OperandFormat
from repro.isa.resources import defs_and_uses
from repro.machine import (
    generic_risc,
    rs6000_like,
    sparcstation2_like,
    superscalar2,
)
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing

#: A syntactically valid example per operand format.
_EXAMPLE_OPERANDS = {
    OperandFormat.ALU3: "%o1, %o2, %o3",
    OperandFormat.ALU3_CC: "%o1, %o2, %o3",
    OperandFormat.ALU3_USE_CC: "%o1, %o2, %o3",
    OperandFormat.ALU3_USE_DEF_CC: "%o1, %o2, %o3",
    OperandFormat.MULSCC: "%o1, %o2, %o3",
    OperandFormat.LOADSTORE: "[%fp-8], %o0",
    OperandFormat.RDY: "%y, %o0",
    OperandFormat.WRY: "%o1, %y",
    OperandFormat.CMP: "%o1, %o2",
    OperandFormat.MOV: "%o1, %o2",
    OperandFormat.SETHI: "1024, %o2",
    OperandFormat.LOAD: "[%fp-8], %o0",
    OperandFormat.STORE: "%o0, [%fp-8]",
    OperandFormat.BRANCH: "target",
    OperandFormat.CALL: "target",
    OperandFormat.RETURN: "",
    OperandFormat.FPOP3: "%f0, %f2, %f4",
    OperandFormat.FPOP2: "%f0, %f2",
    OperandFormat.FCMP: "%f0, %f2",
    OperandFormat.MULDIV: "%o1, %o2, %o3",
    OperandFormat.NONE: "",
}

_SPECIAL_CASES = {
    "tst": "tst %o1",
    "ldd": "ldd [%fp-8], %f2",
    "std": "std %f2, [%fp-8]",
}

ALL_MNEMONICS = sorted(OPCODE_TABLE)


def example_text(mnemonic: str) -> str:
    if mnemonic in _SPECIAL_CASES:
        return _SPECIAL_CASES[mnemonic]
    op = OPCODE_TABLE[mnemonic]
    operands = _EXAMPLE_OPERANDS[op.fmt]
    return f"{mnemonic} {operands}".strip()


@pytest.mark.parametrize("mnemonic", ALL_MNEMONICS)
class TestOpcodeSweep:
    def test_parses(self, mnemonic):
        instr = parse_instruction_text(example_text(mnemonic))
        assert instr.opcode.mnemonic == mnemonic

    def test_render_parse_round_trip(self, mnemonic):
        instr = parse_instruction_text(example_text(mnemonic))
        again = parse_instruction_text(instr.render())
        assert again.render() == instr.render()

    def test_defs_uses_extractable(self, mnemonic):
        instr = parse_instruction_text(example_text(mnemonic))
        defs, uses = defs_and_uses(instr)
        assert isinstance(defs, list) and isinstance(uses, list)

    @pytest.mark.parametrize("machine_factory",
                             [generic_risc, sparcstation2_like,
                              rs6000_like, superscalar2],
                             ids=["generic", "sparc", "rs6000", "ss2"])
    def test_timeable_on_every_machine(self, mnemonic, machine_factory):
        machine = machine_factory()
        instr = parse_instruction_text(example_text(mnemonic))
        assert machine.execution_time(instr) >= 1
        pattern = machine.usage_pattern(instr)
        assert pattern.span >= 1

    def test_schedulable_as_singleton_block(self, mnemonic):
        machine = generic_risc()
        instr = parse_instruction_text(example_text(mnemonic))
        block = BasicBlock(0, [instr])
        dag = TableForwardBuilder(machine).build(block).dag
        result = schedule_forward(dag, machine,
                                  winnowing("execution_time"))
        assert len(result.order) == 1
